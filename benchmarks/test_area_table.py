"""Section III-B area table: probe-filter area vs coverage."""

from repro.analysis.figures import area_table, format_area_table
from repro.energy.area import PAPER_AREA_TABLE


def test_area_table(benchmark):
    rows = benchmark.pedantic(area_table, rounds=1, iterations=1)

    print("\nArea table — probe-filter area vs coverage")
    print(format_area_table(rows))
    by_size = {row.pf_size: row.area_mm2 for row in rows}
    # Calibrated points reproduce the paper's McPAT numbers exactly.
    for coverage, expected in PAPER_AREA_TABLE.items():
        assert abs(by_size[coverage] - expected) < 1e-6
    # Area must shrink monotonically with coverage.
    sizes = sorted(by_size)
    areas = [by_size[size] for size in sizes]
    assert areas == sorted(areas)
