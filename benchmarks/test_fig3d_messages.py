"""Figure 3d: average coherence messages per probe-filter eviction."""

from repro.analysis.figures import figure3_comparison


def test_fig3d_messages_per_eviction(benchmark, runner, fig3_subset):
    rows = benchmark.pedantic(
        figure3_comparison, args=(runner, fig3_subset), rounds=1, iterations=1
    )

    print("\nFigure 3d — messages per probe-filter eviction (baseline)")
    for row in rows:
        print(f"  {row.benchmark:<16} {row.messages_per_eviction:6.2f}")
    # Every eviction sends at least an invalidation and an acknowledgment
    # when any holder is recorded; the paper's range is roughly 2-16.
    populated = [r for r in rows if r.messages_per_eviction > 0]
    assert populated, "expected at least one benchmark with probe-filter evictions"
    assert all(2.0 <= r.messages_per_eviction <= 20.0 for r in populated)
