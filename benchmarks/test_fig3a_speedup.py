"""Figure 3a: speedup of ALLARM over the baseline (16 threads)."""

from repro.analysis.figures import figure3_comparison, format_figure3
from repro.stats.compare import geometric_mean


def test_fig3a_speedup(benchmark, runner, fig3_subset):
    rows = benchmark.pedantic(
        figure3_comparison, args=(runner, fig3_subset), rounds=1, iterations=1
    )

    print("\nFigure 3a — speedup (and companion ratios)")
    print(format_figure3(rows))
    geomean = geometric_mean([row.speedup for row in rows])
    print(f"geomean speedup: {geomean:.3f}")
    # Shape check: ALLARM must not collapse performance anywhere; the paper
    # reports gains on all benchmarks except fluidanimate.
    assert all(row.speedup > 0.9 for row in rows)
    assert geomean > 0.95
