"""Table I: the simulated system configuration.

Regenerates the configuration table and benchmarks machine construction,
verifying that the built machine matches every row of Table I.
"""

from repro.system.config import paper_config
from repro.system.machine import Machine


def test_table1_config(benchmark):
    config = paper_config("baseline")

    machine = benchmark.pedantic(Machine, args=(config,), rounds=1, iterations=1)

    table = config.describe()
    print("\nTable I — simulated system")
    for key, value in table.items():
        print(f"  {key:<24} {value}")
    assert len(machine.nodes) == 16
    assert machine.nodes[0].caches.l2.size_bytes == 256 * 1024
    assert machine.nodes[0].probe_filter.coverage_bytes == 512 * 1024
    assert machine.network.topology.width == 4 and machine.network.topology.height == 4
