"""Figures 4a-4f: two-process runs swept over probe-filter sizes."""

from collections import defaultdict

from repro.analysis.experiments import FIG4_PF_SIZES
from repro.analysis.figures import figure4_multiprocess, format_figure4
from repro.workloads.registry import MULTIPROCESS_BENCHMARKS


def test_fig4_multiprocess(benchmark, runner):
    rows = benchmark.pedantic(
        figure4_multiprocess,
        args=(runner, MULTIPROCESS_BENCHMARKS, FIG4_PF_SIZES),
        rounds=1,
        iterations=1,
    )

    print("\nFigure 4 — multi-process sweep (normalised to baseline @512kB)")
    print(format_figure4(rows))

    evictions = defaultdict(dict)
    for row in rows:
        evictions[(row.benchmark, row.policy)][row.pf_size] = row.normalized_evictions

    smallest = FIG4_PF_SIZES[-1]
    largest = FIG4_PF_SIZES[0]
    for bench in MULTIPROCESS_BENCHMARKS:
        baseline_series = evictions[(bench, "baseline")]
        allarm_series = evictions[(bench, "allarm")]
        # Baseline eviction counts must grow sharply as the probe filter
        # shrinks (Figure 4b shows growth of up to ~250x).
        assert baseline_series[smallest] >= baseline_series[largest]
        # ALLARM must stay far below the baseline at the smallest size
        # (Figure 4e: note the different y-axis scale in the paper).
        assert allarm_series[smallest] <= baseline_series[smallest]
