"""Binary trace format gate: size and replay-speed ratios over text.

Generates a workload stream (1M records by default), writes it in both
trace formats and asserts the v2 binary format's contract:

* the binary file is at least **5x smaller** than the text file, and
* replaying (reading back) the binary trace is at least **2x faster**
  than replaying the text trace.

Both assertions are ratios of quantities measured on the same machine in
the same process, so they are robust to host speed; the speed floor can
still be relaxed for noisy shared runners via an environment knob.

Replay timings are appended to ``BENCH_trace.json`` at the repo root
(one entry per format, with MB/s and the git sha) so the trace-replay
trajectory is visible across PRs; disable with ``REPRO_BENCH_LOG=0``.

A second gate covers the **blocked (v3) format + batched engine** as an
end-to-end pipeline: a hit-dominated stream stored as a v3 blocked trace
must *decode and simulate* at ``REPRO_TRACE_BATCHED_MIN_MBPS`` (default
50 MB/s of trace bytes) through the batched engine.  The v3 format
trades bytes for bandwidth (fixed-width columns, ~11 B/record vs v2's
~2), so the gated quantity is the full replay rate, not raw decode.

Knobs:

* ``REPRO_SKIP_PERF=1``            — skip the (timing-based) speed gate.
* ``REPRO_TRACE_PERF_RECORDS=N``   — approximate stream length
  (default 1,000,000; CI uses a shorter stream).
* ``REPRO_TRACE_MIN_SHRINK=F``     — size-ratio floor (default 5.0).
* ``REPRO_TRACE_MIN_SPEEDUP=F``    — replay-speed floor (default 2.0).
* ``REPRO_TRACE_BATCHED_MIN_MBPS=F`` — blocked-replay floor in MB/s of
  trace bytes through the batched engine (default 50.0).
"""

from __future__ import annotations

import gc
import importlib.util
import os
import time
from pathlib import Path

import pytest

from repro.analysis.benchlog import append_bench_entry
from repro.trace.io import FORMAT_BINARY, read_trace, write_trace
from repro.workloads.base import SyntheticWorkload
from repro.workloads.registry import build_spec

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_LOG = REPO_ROOT / "BENCH_trace.json"

DEFAULT_RECORDS = 1_000_000
DEFAULT_MIN_SHRINK = 5.0
DEFAULT_MIN_SPEEDUP = 2.0
DEFAULT_BATCHED_MIN_MBPS = 50.0


def _stream(record_target: int):
    # total_accesses excludes the init phase, so the stream is slightly
    # longer than the target; that only makes the gate more realistic.
    spec = build_spec("barnes", total_accesses=record_target, seed=11)
    return list(SyntheticWorkload(spec).generate())


@pytest.fixture(scope="module")
def trace_pair(tmp_path_factory):
    records = _stream(int(os.environ.get("REPRO_TRACE_PERF_RECORDS", DEFAULT_RECORDS)))
    root = tmp_path_factory.mktemp("trace-perf")
    text, binary = root / "trace.txt", root / "trace.rpt2"
    write_trace(text, records)
    write_trace(binary, records, format=FORMAT_BINARY)
    return records, text, binary


def test_binary_is_5x_smaller(trace_pair):
    records, text, binary = trace_pair
    min_shrink = float(os.environ.get("REPRO_TRACE_MIN_SHRINK", DEFAULT_MIN_SHRINK))
    shrink = text.stat().st_size / binary.stat().st_size
    print(
        f"\n{len(records)} records: text {text.stat().st_size} B, "
        f"binary {binary.stat().st_size} B — {shrink:.2f}x smaller"
    )
    assert shrink >= min_shrink


@pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF") == "1",
    reason="REPRO_SKIP_PERF=1 disables timing-based gates",
)
def test_binary_replays_2x_faster(trace_pair):
    records, text, binary = trace_pair
    min_speedup = float(os.environ.get("REPRO_TRACE_MIN_SPEEDUP", DEFAULT_MIN_SPEEDUP))

    def timed_read(path):
        # Measure decode speed, not the surrounding suite's heap: collect
        # garbage beforehand and keep the collector out of the timed loop
        # (a million fresh records otherwise trigger generational scans
        # whose cost depends on whatever earlier tests left alive).
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            decoded = list(read_trace(path))
            return decoded, time.perf_counter() - started
        finally:
            gc.enable()

    from_text, text_s = timed_read(text)
    # The comparison is only meaningful if decoding is faithful; check and
    # free before timing binary so both runs see the same live heap.
    assert from_text == records
    del from_text

    from_binary, binary_s = timed_read(binary)
    assert from_binary == records

    speedup = text_s / binary_s
    rate = len(records) / binary_s
    print(
        f"\nreplay of {len(records)} records: text {text_s:.2f}s, "
        f"binary {binary_s:.2f}s — {speedup:.2f}x faster ({rate:,.0f} rec/s)"
    )

    for fmt, path, elapsed in (("text", text, text_s), ("binary", binary, binary_s)):
        size = path.stat().st_size
        append_bench_entry(
            BENCH_LOG,
            {
                "bench": "trace_replay",
                "format": fmt,
                "records": len(records),
                "file_bytes": size,
                "elapsed_s": round(elapsed, 4),
                "records_per_s": round(len(records) / elapsed, 1),
                "mb_per_s": round(size / elapsed / 1_000_000, 3),
                "binary_over_text": round(speedup, 3),
            },
            repo_root=REPO_ROOT,
        )

    assert speedup >= min_speedup


@pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF") == "1",
    reason="REPRO_SKIP_PERF=1 disables timing-based gates",
)
@pytest.mark.skipif(
    importlib.util.find_spec("numpy") is None,
    reason="the blocked-replay gate measures the vector path ([fast] extra)",
)
def test_blocked_trace_batched_replay_bandwidth(tmp_path):
    """v3 blocked decode + batched simulation must sustain 50 MB/s.

    The stream is hit-dominated (a hot L1-resident line set) because the
    gated quantity is the columnar pipeline — block decode into chunks
    plus the vectorised hit path.  Miss-heavy streams replay at packed
    speed by design and are gated elsewhere.  The machine is built
    outside the timed region (construction is a fixed cost unrelated to
    trace bandwidth); the timed region is exactly decode + simulate.
    """
    from repro.system.config import experiment_config
    from repro.system.simulator import Simulator
    from repro.trace.binary import write_trace_v3
    from repro.trace.io import read_trace_chunks
    from repro.trace.record import AccessRecord, AccessType

    record_count = int(os.environ.get("REPRO_TRACE_PERF_RECORDS", DEFAULT_RECORDS))
    min_mbps = float(
        os.environ.get("REPRO_TRACE_BATCHED_MIN_MBPS", DEFAULT_BATCHED_MIN_MBPS)
    )
    read = AccessType.READ
    records = [
        AccessRecord(core=0, vaddr=0x2000_0000 + (i % 16) * 64, access_type=read)
        for i in range(record_count)
    ]
    path = tmp_path / "hot.rpt3"
    write_trace_v3(path, records)
    del records
    file_bytes = path.stat().st_size

    best_elapsed = float("inf")
    machine = None
    result = None
    for _ in range(3):
        simulator = Simulator(
            experiment_config("baseline", scale=16), engine="batched"
        )
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            result = simulator.run(read_trace_chunks(path), "blocked-replay")
            best_elapsed = min(best_elapsed, time.perf_counter() - started)
        finally:
            gc.enable()
        machine = simulator.machine

    assert result.accesses_simulated == record_count
    mbps = file_bytes / best_elapsed / 1_000_000
    rate = record_count / best_elapsed
    residue_ratio = machine.batched_residue_ratio
    print(
        f"\nblocked replay of {record_count} records ({file_bytes} B): "
        f"{best_elapsed:.2f}s — {mbps:.1f} MB/s, {rate:,.0f} rec/s "
        f"(residue {residue_ratio:.4f})"
    )

    append_bench_entry(
        BENCH_LOG,
        {
            "bench": "trace_replay",
            "format": "blocked",
            "engine": "batched",
            "records": record_count,
            "file_bytes": file_bytes,
            "elapsed_s": round(best_elapsed, 4),
            "records_per_s": round(rate, 1),
            "mb_per_s": round(mbps, 3),
            "chunk_records": machine.chunk_records,
            "batched_residue_ratio": round(residue_ratio, 6),
        },
        repo_root=REPO_ROOT,
    )

    assert mbps >= min_mbps, (
        f"blocked replay through the batched engine sustained {mbps:.1f} MB/s, "
        f"below the {min_mbps:.1f} MB/s gate"
    )
