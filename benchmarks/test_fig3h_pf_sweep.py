"""Figure 3h: ALLARM speedup as the probe filter shrinks (512/256/128 kB)."""

from collections import defaultdict

from repro.analysis.experiments import FIG3H_PF_SIZES
from repro.analysis.figures import figure3h_pf_size_sweep, format_figure3h


def test_fig3h_pf_size_sweep(benchmark, runner, fig3_subset):
    rows = benchmark.pedantic(
        figure3h_pf_size_sweep,
        args=(runner, fig3_subset, FIG3H_PF_SIZES),
        rounds=1,
        iterations=1,
    )

    print("\nFigure 3h — ALLARM speedup vs probe-filter size (vs 512kB baseline)")
    print(format_figure3h(rows))
    by_benchmark = defaultdict(dict)
    for row in rows:
        by_benchmark[row.benchmark][row.pf_size] = row.speedup
    for name, series in by_benchmark.items():
        # Shrinking the probe filter must never *improve* ALLARM by a large
        # margin, and performance should not collapse at 256 kB (the paper:
        # ALLARM maintains performance for the majority of benchmarks).
        assert series[256 * 1024] > 0.5 * series[512 * 1024]
        assert all(speedup > 0.3 for speedup in series.values())
