"""Figure 3b: probe-filter evictions normalised to the baseline."""

from repro.analysis.figures import figure3_comparison
from repro.stats.compare import geometric_mean


def test_fig3b_evictions(benchmark, runner, fig3_subset):
    rows = benchmark.pedantic(
        figure3_comparison, args=(runner, fig3_subset), rounds=1, iterations=1
    )

    print("\nFigure 3b — normalised probe-filter evictions (ALLARM / baseline)")
    for row in rows:
        print(f"  {row.benchmark:<16} {row.normalized_evictions:6.3f}")
    ratios = [row.normalized_evictions for row in rows]
    mean_ratio = sum(ratios) / len(ratios)
    print(f"  mean reduction: {(1 - mean_ratio) * 100:.1f}%")
    # The paper reports a 46% average reduction; require a substantial one.
    assert mean_ratio < 0.85
    assert all(ratio <= 1.05 for ratio in ratios)
