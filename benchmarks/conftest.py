"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's figures or tables.  The
underlying simulations are executed once per pytest session through the
shared :class:`~repro.analysis.experiments.ExperimentRunner`, so benchmark
targets that reuse the same runs (Figures 3a-3g) do not repeat them.

Run sizes are controlled by environment variables so the harness can be
scaled up for higher-fidelity numbers:

* ``REPRO_BENCH_ACCESSES``      — compute accesses per 16-thread run
* ``REPRO_BENCH_MP_ACCESSES``   — accesses per copy in the 2-process runs
* ``REPRO_BENCH_SCALE``         — machine/workload down-scaling factor
* ``REPRO_BENCH_SEED``          — base seed
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentRunner, ExperimentSettings


def _session_settings() -> ExperimentSettings:
    settings = ExperimentSettings.from_environment()
    return settings


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """Session-wide experiment runner with cached simulation results."""
    return ExperimentRunner(_session_settings())


@pytest.fixture(scope="session")
def fig3_subset() -> list:
    """Benchmarks used by the per-figure benches.

    The full eight-benchmark suite is used by default; set
    ``REPRO_BENCH_BENCHMARKS`` to a comma-separated subset to shorten runs.
    """
    import os

    from repro.workloads.registry import PAPER_BENCHMARKS

    override = os.environ.get("REPRO_BENCH_BENCHMARKS")
    if override:
        return [name.strip() for name in override.split(",") if name.strip()]
    return list(PAPER_BENCHMARKS)
