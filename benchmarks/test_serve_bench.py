"""Serve gate: the cache-front server under concurrent duplicate load.

Hosts one :class:`~repro.serve.server.SweepServer` on an ephemeral port
over a throwaway cache and drives it with the load generator in two
phases:

* **cold burst** — many concurrent clients all requesting the same few
  specs; the coalescer must collapse the duplicates so the server
  executes each distinct spec exactly **once**, and every response's
  snapshot must hash identically (the serve layer's bit-identity
  contract);
* **warm sweep** — the same requests again; everything must come from
  the cache tiers with **zero** further executions.

Both phases append a ``bench:"serve"`` entry (throughput, p50/p99
latency, coalesced/warm-hit counts) to ``BENCH_serve.json`` so the
service's performance trajectory is visible across PRs; disable with
``REPRO_BENCH_LOG=0``.

Knobs:

* ``REPRO_SKIP_PERF=1``           — skip this module (coverage/chaos runs
  would only pollute the latency trajectory).
* ``REPRO_SERVE_BENCH_REQUESTS=N`` — requests per phase (default 24).
* ``REPRO_SERVE_BENCH_CLIENTS=N``  — concurrent clients (default 8).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.benchlog import append_bench_entry
from repro.analysis.executor import SweepExecutor
from repro.analysis.plan import ExperimentSettings, RunSpec
from repro.serve import BackgroundServer, SweepServer, run_load
from repro.stats.compare import snapshot_diff
from repro.stats.snapshot import MachineSnapshot

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_LOG = REPO_ROOT / "BENCH_serve.json"

DEFAULT_REQUESTS = 24
DEFAULT_CLIENTS = 8

#: Small but not trivial: large enough that an execution visibly beats a
#: cache read, small enough that the bench stays seconds, not minutes.
SETTINGS = ExperimentSettings(scale=16, accesses=4000, multiprocess_accesses=2000)


def _specs():
    return [
        RunSpec("barnes", "allarm", settings=SETTINGS),
        RunSpec("hotspot", "baseline", settings=SETTINGS),
    ]


def _entry(phase, report):
    return {
        "bench": "serve",
        "phase": phase,
        "requests": report.requests,
        "concurrency": report.concurrency,
        "distinct_specs": report.distinct_specs,
        "executed": report.executed,
        "coalesced": report.coalesced,
        "warm_hits": report.warm_hits,
        "throughput_rps": round(report.throughput_rps, 2),
        "p50_ms": round(report.p50_ms, 3),
        "p99_ms": round(report.p99_ms, 3),
    }


@pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF") == "1",
    reason="REPRO_SKIP_PERF=1 disables timing-based gates",
)
def test_serve_coalescing_under_load(tmp_path):
    requests = int(os.environ.get("REPRO_SERVE_BENCH_REQUESTS", DEFAULT_REQUESTS))
    clients = int(os.environ.get("REPRO_SERVE_BENCH_CLIENTS", DEFAULT_CLIENTS))
    specs = _specs()
    direct = {spec.digest(): SweepExecutor().run(spec) for spec in specs}

    server = SweepServer(
        executor=SweepExecutor(cache_dir=tmp_path / "cache"), parallel=4
    )
    with BackgroundServer(server):
        cold = run_load(
            server.host, server.port, specs,
            requests=requests, concurrency=clients,
        )
        warm = run_load(
            server.host, server.port, specs,
            requests=requests, concurrency=clients,
        )

    print(
        f"\ncold: {cold.ok} ok @ {cold.throughput_rps:.1f} req/s "
        f"(p50 {cold.p50_ms:.1f}ms, p99 {cold.p99_ms:.1f}ms) — "
        f"{cold.executed} executed, {cold.coalesced} coalesced, "
        f"{cold.warm_hits} warm"
    )
    print(
        f"warm: {warm.ok} ok @ {warm.throughput_rps:.1f} req/s "
        f"(p50 {warm.p50_ms:.1f}ms, p99 {warm.p99_ms:.1f}ms) — "
        f"{warm.executed} executed, {warm.warm_hits} warm"
    )

    # Cold phase: exactly one execution per distinct spec; every
    # duplicate either coalesced onto the in-flight run or arrived
    # after completion and hit the warm tier.
    assert cold.ok == requests and cold.errors == 0
    assert cold.executed == len(specs)
    assert cold.coalesced + cold.warm_hits == requests - len(specs)
    assert cold.bit_identical()
    for digest, digests in cold.snapshot_digests.items():
        assert len(digests) == 1
    # Responses are bit-identical to direct executor runs (the server
    # adds transport, not noise).
    assert set(cold.snapshot_digests) == set(direct)

    # Warm phase: zero executions, everything from the cache tiers.
    assert warm.ok == requests and warm.errors == 0
    assert warm.executed == 0 and warm.coalesced == 0
    assert warm.warm_hits == requests
    assert warm.bit_identical()
    assert warm.snapshot_digests == cold.snapshot_digests

    append_bench_entry(BENCH_LOG, _entry("cold", cold), repo_root=REPO_ROOT)
    append_bench_entry(BENCH_LOG, _entry("warm", warm), repo_root=REPO_ROOT)


@pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF") == "1",
    reason="REPRO_SKIP_PERF=1 disables timing-based gates",
)
def test_serve_responses_match_direct_execution(tmp_path):
    """Transport-level bit-identity: wire snapshot == in-process snapshot."""
    from repro.serve import ServeClient

    spec = _specs()[0]
    direct = SweepExecutor().run(spec)
    server = SweepServer(executor=SweepExecutor(cache_dir=tmp_path / "cache"))
    with BackgroundServer(server):
        with ServeClient(server.host, server.port) as client:
            response = client.run(spec)
    rebuilt = MachineSnapshot.from_dict(response.snapshot)
    assert snapshot_diff(direct, rebuilt) == []
