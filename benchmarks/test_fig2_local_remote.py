"""Figure 2: ratio of local to remote requests at the directories."""

from repro.analysis.figures import figure2_local_remote, format_figure2


def test_fig2_local_remote(benchmark, runner, fig3_subset):
    rows = benchmark.pedantic(
        figure2_local_remote, args=(runner, fig3_subset), rounds=1, iterations=1
    )

    print("\nFigure 2 — local vs remote directory requests")
    print(format_figure2(rows))
    for row in rows:
        assert 0.0 <= row.local_fraction <= 1.0
        assert abs(row.local_fraction + row.remote_fraction - 1.0) < 1e-9
    # The paper deliberately picks workloads where remote accesses dominate
    # in aggregate; verify the suite-wide mix leans remote.
    average_local = sum(r.local_fraction for r in rows) / len(rows)
    assert average_local < 0.75
