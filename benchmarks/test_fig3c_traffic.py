"""Figure 3c: network traffic (bytes) normalised to the baseline."""

from repro.analysis.figures import figure3_comparison


def test_fig3c_traffic(benchmark, runner, fig3_subset):
    rows = benchmark.pedantic(
        figure3_comparison, args=(runner, fig3_subset), rounds=1, iterations=1
    )

    print("\nFigure 3c — normalised network traffic (bytes)")
    for row in rows:
        print(f"  {row.benchmark:<16} {row.normalized_traffic:6.3f}")
    mean_ratio = sum(row.normalized_traffic for row in rows) / len(rows)
    print(f"  mean reduction: {(1 - mean_ratio) * 100:.1f}%")
    # ALLARM removes coherence traffic for thread-local data; traffic must
    # not increase on average.
    assert mean_ratio <= 1.0
