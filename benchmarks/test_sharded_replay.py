"""Sharded-replay gate: epoch-parallel replay must beat single-process.

Replays one hit-dominated v3.1 blocked trace (seekable epoch index)
through the packed engine three ways — plain single-process, serial with
epoch checkpoints, and sharded over a process pool — and asserts the
sharding contract:

* every mode's final snapshot is **bit-identical** to the plain replay
  (``snapshot_diff == []``), and
* the 4-shard replay is at least **1.5x faster** than the single-process
  replay (wall-clock, same machine, same process tree).

The stream is hit-dominated because that is the regime where sharding
pays: replay throughput is compute-bound in the engine's hit path, so
splitting epochs across cores scales until trace decode or checkpoint
restore dominates.  The serial checkpoint-recording pass is a one-time
cost (like recording the trace itself) and is reported but not gated.

Measurements land in ``BENCH_sharded.json`` with ``bench: "sharded"``
(shards, epoch size and speedup per entry) so the sharded-replay
trajectory is visible across PRs; disable with ``REPRO_BENCH_LOG=0``.

Knobs:

* ``REPRO_SKIP_PERF=1``              — skip the timing-based speedup gate
  (bit-identity is still asserted).
* ``REPRO_SHARD_PERF_RECORDS=N``     — stream length (default 400,000;
  rounded down to a whole number of epochs).
* ``REPRO_SHARDED_MIN_SPEEDUP=F``    — 4-shard speedup floor
  (default 1.5; relax on 2-core shared runners).

The speedup gate needs hardware parallelism: on hosts with fewer than 4
CPUs the measurements and bit-identity checks still run and are logged,
but the floor assertion is waived unless ``REPRO_SHARDED_MIN_SPEEDUP``
is set explicitly — 4 workers cannot beat 1 on a single core.
"""

from __future__ import annotations

import gc
import os
import time
from pathlib import Path

import pytest

from repro.analysis.benchlog import append_bench_entry
from repro.analysis.shard import record_checkpoints, replay_sharded
from repro.stats.compare import snapshot_diff
from repro.system.config import experiment_config
from repro.system.simulator import Simulator
from repro.trace.binary import write_trace_v3
from repro.trace.io import read_trace
from repro.trace.record import AccessRecord, AccessType

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_LOG = REPO_ROOT / "BENCH_sharded.json"

DEFAULT_RECORDS = 400_000
DEFAULT_MIN_SPEEDUP = 1.5
BLOCK_RECORDS = 8192
EPOCHS = 8


def _timed(fn):
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        result = fn()
        return result, time.perf_counter() - started
    finally:
        gc.enable()


@pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF") == "1",
    reason="REPRO_SKIP_PERF=1 disables timing-based gates",
)
def test_sharded_replay_speedup(tmp_path):
    record_count = int(
        os.environ.get("REPRO_SHARD_PERF_RECORDS", DEFAULT_RECORDS)
    )
    min_speedup = float(
        os.environ.get("REPRO_SHARDED_MIN_SPEEDUP", DEFAULT_MIN_SPEEDUP)
    )
    # Epoch size: the stream split into EPOCHS whole-block epochs.
    blocks_per_epoch = max(1, record_count // (EPOCHS * BLOCK_RECORDS))
    epoch_records = blocks_per_epoch * BLOCK_RECORDS
    record_count = epoch_records * EPOCHS

    read = AccessType.READ
    records = [
        AccessRecord(core=0, vaddr=0x2000_0000 + (i % 16) * 64, access_type=read)
        for i in range(record_count)
    ]
    trace = tmp_path / "hot.rpt3"
    write_trace_v3(
        trace, records, block_records=BLOCK_RECORDS, epoch_records=epoch_records
    )
    del records

    config = experiment_config("baseline", scale=16)

    # Baseline: plain single-process replay (no checkpoints).
    def _plain():
        simulator = Simulator(config, engine="packed")
        return simulator.run(read_trace(trace), "sharded-baseline")

    base_result, base_elapsed = _timed(_plain)
    assert base_result.accesses_simulated == record_count

    # One-time cost: serial checkpoint recording (reported, not gated).
    checkpoint_dir = tmp_path / "ckpt"
    serial_result, record_elapsed = _timed(
        lambda: record_checkpoints(
            config, trace, epoch_records, checkpoint_dir, engine="packed"
        )
    )
    assert snapshot_diff(base_result.snapshot, serial_result.snapshot) == []

    print(
        f"\n{record_count} records, {EPOCHS} epochs x {epoch_records}: "
        f"plain {base_elapsed:.2f}s, checkpointed {record_elapsed:.2f}s"
    )

    speedups = {}
    for shards in (2, 4):
        sharded, elapsed = _timed(
            lambda shards=shards: replay_sharded(
                config, trace, shards, checkpoint_dir, engine="packed"
            )
        )
        assert snapshot_diff(base_result.snapshot, sharded.snapshot) == []
        speedup = base_elapsed / elapsed if elapsed > 0 else float("inf")
        speedups[shards] = speedup
        print(
            f"  {shards} shards: {elapsed:.2f}s — {speedup:.2f}x vs "
            f"single-process"
        )
        append_bench_entry(
            BENCH_LOG,
            {
                "bench": "sharded",
                "engine": "packed",
                "records": record_count,
                "shards": shards,
                "epoch_records": epoch_records,
                "epochs": EPOCHS,
                "baseline_s": round(base_elapsed, 4),
                "checkpoint_record_s": round(record_elapsed, 4),
                "elapsed_s": round(elapsed, 4),
                "records_per_s": round(record_count / elapsed, 1),
                "speedup": round(speedup, 3),
            },
            repo_root=REPO_ROOT,
        )

    cpus = os.cpu_count() or 1
    if cpus < 4 and "REPRO_SHARDED_MIN_SPEEDUP" not in os.environ:
        print(
            f"  speedup floor waived: host has {cpus} CPU(s); "
            f"set REPRO_SHARDED_MIN_SPEEDUP to enforce one anyway"
        )
        return
    assert speedups[4] >= min_speedup, (
        f"4-shard replay ran {speedups[4]:.2f}x the single-process speed, "
        f"below the {min_speedup:.1f}x gate"
    )
