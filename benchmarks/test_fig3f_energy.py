"""Figure 3f: dynamic energy of the NoC and probe filter, normalised."""

from repro.analysis.figures import figure3_comparison
from repro.stats.compare import geometric_mean


def test_fig3f_dynamic_energy(benchmark, runner, fig3_subset):
    rows = benchmark.pedantic(
        figure3_comparison, args=(runner, fig3_subset), rounds=1, iterations=1
    )

    print("\nFigure 3f — normalised dynamic energy (NoC, probe filter)")
    for row in rows:
        print(
            f"  {row.benchmark:<16} noc={row.normalized_noc_energy:6.3f} "
            f"pf={row.normalized_pf_energy:6.3f}"
        )
    noc_mean = geometric_mean([row.normalized_noc_energy for row in rows])
    pf_mean = geometric_mean([row.normalized_pf_energy for row in rows])
    print(f"  geomean: noc={noc_mean:.3f} pf={pf_mean:.3f}")
    # The paper reports 8-9% NoC and 14-15% probe-filter savings; require
    # savings (not growth) in both components.
    assert noc_mean <= 1.0
    assert pf_mean < 1.0
