"""Micro-benchmark regression guard for the access fast path.

Replays a hit-dominated trace (a handful of hot lines, all L1 hits after
warm-up) and asserts the simulator sustains a minimum accesses/second.
The floor is deliberately *generous* — the seed implementation reached
~225k accesses/s on the reference container and the fast path ~340k/s,
so the default floor of 100k only trips on a real regression (e.g. the
per-access fast path growing object churn or re-resolving config state),
not on machine-to-machine noise.

Knobs:

* ``REPRO_SKIP_PERF=1``       — skip entirely (for slow/shared CI hosts).
* ``REPRO_PERF_MIN_RATE=N``   — override the accesses/second floor.
* ``REPRO_PERF_ACCESSES=N``   — override the trace length.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.system.config import experiment_config
from repro.system.simulator import Simulator
from repro.trace.record import AccessRecord, AccessType

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF") == "1",
    reason="REPRO_SKIP_PERF=1 disables the hot-path perf guard",
)

#: Generous floor (accesses/second); well below the seed implementation.
DEFAULT_MIN_RATE = 100_000.0
#: Hot-set size in lines; fits the L1 so steady state is all hits.
HOT_LINES = 16
LINE_SIZE = 64
BASE_VADDR = 0x2000_0000


def _hit_dominated_trace(access_count: int):
    read = AccessType.READ
    return [
        AccessRecord(
            core=0,
            vaddr=BASE_VADDR + (index % HOT_LINES) * LINE_SIZE,
            access_type=read,
        )
        for index in range(access_count)
    ]


def test_hit_dominated_access_rate():
    access_count = int(os.environ.get("REPRO_PERF_ACCESSES", "200000"))
    min_rate = float(os.environ.get("REPRO_PERF_MIN_RATE", str(DEFAULT_MIN_RATE)))

    trace = _hit_dominated_trace(access_count)
    simulator = Simulator(experiment_config("baseline", scale=16))

    started = time.perf_counter()
    result = simulator.run(trace, "hot-path-guard")
    elapsed = time.perf_counter() - started

    assert result.accesses_simulated == access_count
    # Steady state must be hit-dominated, otherwise the rate measures the
    # coherence path rather than the fast path.
    assert result.snapshot.l2_misses < access_count // 100

    rate = access_count / elapsed
    assert rate >= min_rate, (
        f"hot path sustained {rate:,.0f} accesses/s, below the "
        f"{min_rate:,.0f}/s regression floor"
    )
