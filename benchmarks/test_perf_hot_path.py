"""Hot-path perf gates for both simulation engines, with a persisted trajectory.

Replays a hit-dominated trace (a handful of hot lines, all L1 hits after
warm-up) on the **reference** and the **packed** engine, then asserts:

* both engines produce the bit-identical snapshot (a free cross-engine
  check on exactly the workload shape the packed fast path optimises);
* the packed engine sustains at least ``REPRO_PERF_MIN_RATE`` accesses/s
  (an absolute regression floor, generous for machine noise); and
* the packed engine is at least ``REPRO_PERF_MIN_RATIO`` times faster
  than the reference engine measured in the same session — a pure
  ratio, robust to host speed, which is the CI perf-regression gate.

Every measurement is appended to ``BENCH_hotpath.json`` at the repo root
(see :mod:`repro.analysis.benchlog`), one entry per engine with the git
sha, so the accesses/s trajectory is visible across PRs and uploadable
as a CI artifact.

History: the seed implementation reached ~225k accesses/s on the
reference container, PR 1's fast path ~340k/s, and the packed engine of
PR 3 ~1.0M/s.

A second gate covers the **miss path**: the miss-heavy micro families
(false-sharing, migratory, hotspot) replay on both engines and the
packed engine must hold at least ``REPRO_PERF_MISS_MIN_RATIO`` (default
2.0x) on every family — the workloads that degenerated to reference
speed before the packed directory fast path existed.  Each family/engine
measurement is appended to the same trajectory with ``bench:
"miss_path"``.

A third gate covers the **structural path**: eviction-heavy
configurations (a starved probe filter under the baseline policy, so
almost every allocation evicts and fans out invalidations) replay on
both engines; the packed engine must hold
``REPRO_PERF_STRUCTURAL_MIN_RATIO`` (default 2.0x; measured ~3.5x) per
family **with zero deferred misses** — before the packed structural
path these runs deferred wholesale and sat at ~1x.  Entries land in the
trajectory with ``bench: "structural_path"``.

A fourth gate covers the **batched engine** (PR 6): the same
hit-dominated trace, pre-packed into columnar chunks outside the timed
region (the shape the blocked-trace decoder and the workload chunk
emitters deliver), must replay at least
``REPRO_PERF_BATCHED_MIN_RATIO`` (default 10x) faster than the
reference engine and ``REPRO_PERF_BATCHED_PACKED_MIN_RATIO`` (default
3x) faster than the packed engine, with a residue ratio under 10%.
Entries land in the trajectory with ``bench: "batched"`` carrying the
chunk size and residue ratio; a companion (ungated) sweep reports the
residue ratio of every micro family — the registered families are all
miss-heavy at experiment scale, so their ratios document where the
vector path cannot help rather than gate it.

Knobs:

* ``REPRO_SKIP_PERF=1``            — skip entirely (for slow/shared CI hosts).
* ``REPRO_PERF_MIN_RATE=N``        — packed accesses/second floor (default 100k).
* ``REPRO_PERF_MIN_RATIO=F``       — packed/reference hot-path ratio floor
  (default 2.5; the tentpole target is 3x).
* ``REPRO_PERF_MISS_MIN_RATIO=F``  — packed/reference miss-path ratio floor
  per miss-heavy family (default 2.0).
* ``REPRO_PERF_STRUCTURAL_MIN_RATIO=F`` — packed/reference ratio floor per
  eviction-heavy family (default 2.0).
* ``REPRO_PERF_BATCHED_MIN_RATIO=F`` — batched/reference hot-path ratio
  floor (default 10.0).
* ``REPRO_PERF_BATCHED_PACKED_MIN_RATIO=F`` — batched/packed hot-path
  ratio floor (default 3.0).
* ``REPRO_PERF_ACCESSES=N``        — override the hot-path trace length.
* ``REPRO_PERF_MISS_ACCESSES=N``   — override the per-family miss trace length.
* ``REPRO_PERF_STRUCTURAL_ACCESSES=N`` — override the per-family
  eviction-heavy trace length.
* ``REPRO_BENCH_LOG=0``            — do not append to BENCH_hotpath.json.
"""

from __future__ import annotations

import importlib.util
import os
import time
from pathlib import Path

import pytest

from repro.analysis.benchlog import append_bench_entry
from repro.stats.compare import assert_snapshots_identical
from repro.system.config import experiment_config
from repro.system.simulator import Simulator
from repro.trace.record import AccessRecord, AccessType

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF") == "1",
    reason="REPRO_SKIP_PERF=1 disables the hot-path perf guard",
)

#: Generous absolute floor (accesses/second) for the packed engine.
DEFAULT_MIN_RATE = 100_000.0
#: Packed/reference speed ratio floor (the CI perf-regression gate).
DEFAULT_MIN_RATIO = 2.5
#: Packed/reference ratio floor on each miss-heavy family.
DEFAULT_MISS_MIN_RATIO = 2.0
#: The families whose misses the packed directory fast path targets.
MISS_HEAVY_FAMILIES = ("false-sharing", "migratory", "hotspot")
#: Packed/reference ratio floor on each eviction-heavy configuration.
DEFAULT_STRUCTURAL_MIN_RATIO = 2.0
#: Families for the structural gate: run under the baseline policy with a
#: starved probe filter, so almost every allocation evicts and fans out.
STRUCTURAL_FAMILIES = ("stream-scan", "hotspot")
#: Nominal probe-filter coverage for the structural gate (scaled /16 at
#: run time: 2 kB of actual coverage — constant thrash).
STRUCTURAL_PF_SIZE = 32 * 1024
#: Hot-set size in lines; fits the L1 so steady state is all hits.
HOT_LINES = 16
LINE_SIZE = 64
BASE_VADDR = 0x2000_0000

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_LOG = REPO_ROOT / "BENCH_hotpath.json"


def _hit_dominated_trace(access_count: int):
    read = AccessType.READ
    return [
        AccessRecord(
            core=0,
            vaddr=BASE_VADDR + (index % HOT_LINES) * LINE_SIZE,
            access_type=read,
        )
        for index in range(access_count)
    ]


def _timed_run(engine: str, trace, repeats: int = 3):
    """Run *trace* on a fresh machine *repeats* times; keep the best time.

    Best-of-N suppresses one-off scheduler/frequency noise — the
    quantity being gated is the engine's attainable rate, not the
    host's worst moment.  Simulators are single-use, so each repeat
    rebuilds one (construction is outside the timed region).
    """
    best_elapsed = float("inf")
    result = None
    for _ in range(repeats):
        simulator = Simulator(experiment_config("baseline", scale=16), engine=engine)
        started = time.perf_counter()
        result = simulator.run(trace, "hot-path-guard")
        best_elapsed = min(best_elapsed, time.perf_counter() - started)
    return result, best_elapsed


def test_packed_hot_path_rate_and_ratio():
    access_count = int(os.environ.get("REPRO_PERF_ACCESSES", "200000"))
    min_rate = float(os.environ.get("REPRO_PERF_MIN_RATE", str(DEFAULT_MIN_RATE)))
    min_ratio = float(os.environ.get("REPRO_PERF_MIN_RATIO", str(DEFAULT_MIN_RATIO)))

    trace = _hit_dominated_trace(access_count)
    reference_result, reference_s = _timed_run("reference", trace)
    packed_result, packed_s = _timed_run("packed", trace)

    assert reference_result.accesses_simulated == access_count
    assert packed_result.accesses_simulated == access_count
    # Steady state must be hit-dominated, otherwise the rate measures the
    # coherence path rather than the fast path.
    assert packed_result.snapshot.l2_misses < access_count // 100
    # The engines must agree bit-for-bit on this trace.
    assert_snapshots_identical(
        reference_result.snapshot, packed_result.snapshot, context="hot-path"
    )

    reference_rate = access_count / reference_s
    packed_rate = access_count / packed_s
    ratio = packed_rate / reference_rate
    print(
        f"\nhot path: reference {reference_rate:,.0f}/s, "
        f"packed {packed_rate:,.0f}/s — {ratio:.2f}x"
    )

    for engine, rate, elapsed in (
        ("reference", reference_rate, reference_s),
        ("packed", packed_rate, packed_s),
    ):
        append_bench_entry(
            BENCH_LOG,
            {
                "bench": "hot_path",
                "engine": engine,
                "accesses": access_count,
                "elapsed_s": round(elapsed, 4),
                "accesses_per_s": round(rate, 1),
                "packed_over_reference": round(ratio, 3),
            },
            repo_root=REPO_ROOT,
        )

    assert packed_rate >= min_rate, (
        f"packed hot path sustained {packed_rate:,.0f} accesses/s, below the "
        f"{min_rate:,.0f}/s regression floor"
    )
    assert ratio >= min_ratio, (
        f"packed engine is only {ratio:.2f}x the reference engine on the "
        f"hot path, below the {min_ratio:.2f}x regression gate"
    )


#: Batched/reference hot-path ratio floor (the batched CI perf gate).
DEFAULT_BATCHED_MIN_RATIO = 10.0
#: Batched/packed hot-path ratio floor.
DEFAULT_BATCHED_PACKED_MIN_RATIO = 3.0


def _timed_batched_run(chunks, access_count: int, repeats: int = 3):
    """Best-of-N chunked replay; machine and chunks built outside timing.

    The chunk list is the ingestion contract of the columnar pipeline:
    a blocked (v3) trace decodes straight into these blocks and the
    workload generators emit them directly, so per-record Python work is
    not part of the replayed path being measured.
    """
    best_elapsed = float("inf")
    result = None
    machine = None
    for _ in range(repeats):
        simulator = Simulator(experiment_config("baseline", scale=16), engine="batched")
        started = time.perf_counter()
        result = simulator.run(chunks, "hot-path-guard")
        best_elapsed = min(best_elapsed, time.perf_counter() - started)
        machine = simulator.machine
    assert result.accesses_simulated == access_count
    return result, best_elapsed, machine


@pytest.mark.skipif(
    importlib.util.find_spec("numpy") is None,
    reason="the batched ratio gate measures the vector path ([fast] extra)",
)
def test_batched_hot_path_rate_and_ratio():
    """The batched kernel must carry the hit-dominated path 10x past reference.

    Chunks are pre-packed outside the timed region; the measured replay
    is classification + bulk commits + residue, exactly what a blocked
    trace or chunk-emitting workload pays.  Bit-identity with the packed
    engine rides along, as does the <10% residue requirement — if the
    classifier starts leaking hits into the residue the ratio gate may
    still pass on a fast host, but the residue gate will not.
    """
    from repro.system.batchcore import chunk_records

    access_count = int(os.environ.get("REPRO_PERF_ACCESSES", "200000"))
    min_ratio = float(
        os.environ.get("REPRO_PERF_BATCHED_MIN_RATIO", str(DEFAULT_BATCHED_MIN_RATIO))
    )
    min_packed_ratio = float(
        os.environ.get(
            "REPRO_PERF_BATCHED_PACKED_MIN_RATIO",
            str(DEFAULT_BATCHED_PACKED_MIN_RATIO),
        )
    )

    trace = _hit_dominated_trace(access_count)
    chunks = list(chunk_records(trace))
    reference_result, reference_s = _timed_run("reference", trace)
    packed_result, packed_s = _timed_run("packed", trace)
    batched_result, batched_s, machine = _timed_batched_run(chunks, access_count)

    assert_snapshots_identical(
        packed_result.snapshot, batched_result.snapshot, context="batched-hot-path"
    )
    assert_snapshots_identical(
        reference_result.snapshot, batched_result.snapshot, context="batched-hot-path"
    )
    residue_ratio = machine.batched_residue_ratio
    assert residue_ratio < 0.10, (
        f"batched residue ratio {residue_ratio:.3f} on the hit-dominated "
        f"trace; the vector path is leaking hits into per-access replay"
    )

    reference_rate = access_count / reference_s
    packed_rate = access_count / packed_s
    batched_rate = access_count / batched_s
    ratio = batched_rate / reference_rate
    packed_ratio = batched_rate / packed_rate
    print(
        f"\nbatched hot path: reference {reference_rate:,.0f}/s, "
        f"packed {packed_rate:,.0f}/s, batched {batched_rate:,.0f}/s — "
        f"{ratio:.1f}x reference, {packed_ratio:.1f}x packed "
        f"(residue {residue_ratio:.4f})"
    )

    append_bench_entry(
        BENCH_LOG,
        {
            "bench": "batched",
            "family": "hot-path",
            "engine": "batched",
            "accesses": access_count,
            "elapsed_s": round(batched_s, 4),
            "accesses_per_s": round(batched_rate, 1),
            "chunk_records": machine.chunk_records,
            "batched_residue_ratio": round(residue_ratio, 6),
            "batched_over_reference": round(ratio, 3),
            "batched_over_packed": round(packed_ratio, 3),
        },
        repo_root=REPO_ROOT,
    )

    assert ratio >= min_ratio, (
        f"batched engine is only {ratio:.2f}x the reference engine on the "
        f"hot path, below the {min_ratio:.2f}x regression gate"
    )
    assert packed_ratio >= min_packed_ratio, (
        f"batched engine is only {packed_ratio:.2f}x the packed engine on "
        f"the hot path, below the {min_packed_ratio:.2f}x regression gate"
    )


def test_batched_residue_ratio_per_family():
    """Report (not gate) the residue ratio of every micro family.

    At experiment scale every registered family is miss-heavy (50-70%
    L2 misses), so their residue ratios sit near 1.0 by design — the
    entries document that the kernel correctly recognises streams it
    cannot vectorise instead of thrashing on them.  The bulk-path claim
    is gated by the hit-dominated test above.
    """
    from repro.analysis.plan import ExperimentSettings, RunSpec

    settings = ExperimentSettings(
        scale=16, accesses=20000, multiprocess_accesses=10000, seed=0
    )
    for family in MISS_HEAVY_FAMILIES:
        spec = RunSpec(family, "allarm", settings=settings)
        chunks = list(spec.access_chunks())
        simulator = Simulator(spec.config(), engine="batched")
        started = time.perf_counter()
        result = simulator.run(chunks, family)
        elapsed = time.perf_counter() - started
        machine = simulator.machine
        ratio = machine.batched_residue_ratio
        assert 0.0 <= ratio <= 1.0
        rate = result.accesses_simulated / elapsed
        print(f"\nbatched [{family}]: {rate:,.0f}/s, residue {ratio:.3f}")
        append_bench_entry(
            BENCH_LOG,
            {
                "bench": "batched",
                "family": family,
                "engine": "batched",
                "accesses": result.accesses_simulated,
                "elapsed_s": round(elapsed, 4),
                "accesses_per_s": round(rate, 1),
                "chunk_records": machine.chunk_records,
                "batched_residue_ratio": round(ratio, 6),
            },
            repo_root=REPO_ROOT,
        )


def _timed_family_run(engine: str, config, records, repeats: int = 2):
    """Best-of-N replay of a materialised family stream on one engine."""
    best_elapsed = float("inf")
    result = None
    machine = None
    for _ in range(repeats):
        simulator = Simulator(config, engine=engine)
        started = time.perf_counter()
        result = simulator.run(records, "miss-path-guard")
        best_elapsed = min(best_elapsed, time.perf_counter() - started)
        machine = simulator.machine
    return result, best_elapsed, machine


def test_packed_miss_path_rate_and_ratio(monkeypatch):
    """Miss-heavy families: packed must beat reference on its miss path.

    Before the packed directory fast path these families fell back to
    the reference machinery on (almost) every access and the in-session
    ratio sat near 1x; the gate pins the recovered speedup per family
    and verifies the fast path actually carried the misses.
    """
    from repro.analysis.plan import ExperimentSettings, RunSpec

    # The gate pins fast/deferred counters and times the fast path, so
    # neutralise any ambient forced-deferral knob first.
    monkeypatch.delenv("REPRO_PACKED_DEFER", raising=False)
    access_count = int(os.environ.get("REPRO_PERF_MISS_ACCESSES", "30000"))
    min_ratio = float(
        os.environ.get("REPRO_PERF_MISS_MIN_RATIO", str(DEFAULT_MISS_MIN_RATIO))
    )
    settings = ExperimentSettings(
        scale=16, accesses=access_count, multiprocess_accesses=access_count, seed=0
    )

    ratios = {}
    for family in MISS_HEAVY_FAMILIES:
        spec = RunSpec(family, "allarm", settings=settings)
        records = list(spec.access_stream())
        config = spec.config()
        reference_result, reference_s, _ = _timed_family_run(
            "reference", config, records
        )
        packed_result, packed_s, machine = _timed_family_run(
            "packed", config, records
        )

        # The engines must agree bit-for-bit, the workload must really be
        # miss-heavy, and the packed engine must have serviced misses on
        # its fast path rather than deferring wholesale.
        assert_snapshots_identical(
            reference_result.snapshot,
            packed_result.snapshot,
            context=f"miss-path/{family}",
        )
        assert packed_result.snapshot.l2_misses > len(records) // 10
        assert machine.fast_misses > 0
        assert machine.fast_misses >= machine.deferred_misses

        reference_rate = len(records) / reference_s
        packed_rate = len(records) / packed_s
        ratio = packed_rate / reference_rate
        ratios[family] = ratio
        print(
            f"\nmiss path [{family}]: reference {reference_rate:,.0f}/s, "
            f"packed {packed_rate:,.0f}/s — {ratio:.2f}x "
            f"(fast={machine.fast_misses}, deferred={machine.deferred_misses})"
        )
        for engine, rate, elapsed in (
            ("reference", reference_rate, reference_s),
            ("packed", packed_rate, packed_s),
        ):
            append_bench_entry(
                BENCH_LOG,
                {
                    "bench": "miss_path",
                    "family": family,
                    "engine": engine,
                    "accesses": len(records),
                    "elapsed_s": round(elapsed, 4),
                    "accesses_per_s": round(rate, 1),
                    "packed_over_reference": round(ratio, 3),
                },
                repo_root=REPO_ROOT,
            )

    failing = {f: r for f, r in ratios.items() if r < min_ratio}
    assert not failing, (
        f"packed engine below the {min_ratio:.2f}x miss-path gate on: "
        + ", ".join(f"{f} ({r:.2f}x)" for f, r in failing.items())
    )


def test_packed_structural_path_rate_and_ratio(monkeypatch):
    """Eviction-heavy configs: the packed structural path must carry them.

    A starved probe filter under the baseline policy makes almost every
    allocation evict a victim and fan out invalidations — exactly the
    runs that deferred wholesale (and sat near 1x) before the packed
    structural path.  The gate pins the recovered speedup per family,
    requires genuinely eviction-heavy behaviour, and requires that not a
    single miss deferred.
    """
    from repro.analysis.plan import ExperimentSettings, RunSpec

    # deferred_misses == 0 is part of the gate: neutralise any ambient
    # forced-deferral knob (REPRO_PACKED_DEFER) before measuring.
    monkeypatch.delenv("REPRO_PACKED_DEFER", raising=False)
    access_count = int(os.environ.get("REPRO_PERF_STRUCTURAL_ACCESSES", "30000"))
    min_ratio = float(
        os.environ.get(
            "REPRO_PERF_STRUCTURAL_MIN_RATIO", str(DEFAULT_STRUCTURAL_MIN_RATIO)
        )
    )
    settings = ExperimentSettings(
        scale=16, accesses=access_count, multiprocess_accesses=access_count, seed=0
    )

    ratios = {}
    for family in STRUCTURAL_FAMILIES:
        spec = RunSpec(
            family, "baseline", pf_size=STRUCTURAL_PF_SIZE, settings=settings
        )
        records = list(spec.access_stream())
        config = spec.config()
        reference_result, reference_s, _ = _timed_family_run(
            "reference", config, records
        )
        packed_result, packed_s, machine = _timed_family_run(
            "packed", config, records
        )

        assert_snapshots_identical(
            reference_result.snapshot,
            packed_result.snapshot,
            context=f"structural-path/{family}",
        )
        # The run must really hammer the structural events, and the
        # packed engine must have serviced all of them in place.
        assert packed_result.snapshot.pf_evictions > len(records) // 100
        assert machine.deferred_misses == 0
        assert machine.fast_misses > 0

        reference_rate = len(records) / reference_s
        packed_rate = len(records) / packed_s
        ratio = packed_rate / reference_rate
        ratios[family] = ratio
        print(
            f"\nstructural path [{family}]: reference {reference_rate:,.0f}/s, "
            f"packed {packed_rate:,.0f}/s — {ratio:.2f}x "
            f"(pf_evictions={packed_result.snapshot.pf_evictions}, "
            f"deferred={machine.deferred_misses})"
        )
        for engine, rate, elapsed in (
            ("reference", reference_rate, reference_s),
            ("packed", packed_rate, packed_s),
        ):
            append_bench_entry(
                BENCH_LOG,
                {
                    "bench": "structural_path",
                    "family": family,
                    "engine": engine,
                    "accesses": len(records),
                    "elapsed_s": round(elapsed, 4),
                    "accesses_per_s": round(rate, 1),
                    "packed_over_reference": round(ratio, 3),
                },
                repo_root=REPO_ROOT,
            )

    failing = {f: r for f, r in ratios.items() if r < min_ratio}
    assert not failing, (
        f"packed engine below the {min_ratio:.2f}x structural-path gate on: "
        + ", ".join(f"{f} ({r:.2f}x)" for f, r in failing.items())
    )
