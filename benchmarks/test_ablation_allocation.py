"""Ablation: NUMA placement policy and eviction-notification sensitivity.

Not a paper figure: quantifies two design choices DESIGN.md calls out —
how much of ALLARM's eviction reduction survives under interleaved page
placement (where the private-data assumption breaks), and how the
directory pressure changes with the stronger eviction-notification
baseline.
"""

from repro.analysis.experiments import ExperimentSettings
from repro.system.config import experiment_config
from repro.system.simulator import simulate
from repro.workloads.base import SyntheticWorkload
from repro.workloads.registry import build_spec


def _run(policy, placement, settings):
    spec = build_spec("barnes", total_accesses=settings.accesses).with_footprint_scale(
        settings.scale
    )
    config = experiment_config(
        policy, scale=settings.scale, placement_policy=placement
    )
    return simulate(config, SyntheticWorkload(spec).generate(), "barnes").snapshot


def test_ablation_placement_policy(benchmark):
    settings = ExperimentSettings.from_environment()

    def run_all():
        results = {}
        for placement in ("first-touch", "interleaved"):
            base = _run("baseline", placement, settings)
            allarm = _run("allarm", placement, settings)
            results[placement] = (base, allarm)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\nAblation — ALLARM eviction reduction vs NUMA placement (barnes)")
    reductions = {}
    for placement, (base, allarm) in results.items():
        ratio = allarm.pf_evictions / max(base.pf_evictions, 1)
        reductions[placement] = ratio
        print(f"  {placement:<12} evictions ALLARM/baseline = {ratio:.3f} "
              f"(local fraction {base.local_fraction:.2f})")
    # First-touch placement is what makes local requests private; ALLARM's
    # advantage must shrink (or vanish) under interleaved placement.
    assert reductions["first-touch"] <= reductions["interleaved"] + 0.05
