"""Figure 3e: L2 misses normalised to the baseline."""

from repro.analysis.figures import figure3_comparison


def test_fig3e_l2_misses(benchmark, runner, fig3_subset):
    rows = benchmark.pedantic(
        figure3_comparison, args=(runner, fig3_subset), rounds=1, iterations=1
    )

    print("\nFigure 3e — normalised L2 misses")
    for row in rows:
        print(f"  {row.benchmark:<16} {row.normalized_l2_misses:6.3f}")
    # Fewer probe-filter evictions mean fewer invalidation-induced misses,
    # so ALLARM must never increase L2 misses materially.
    assert all(row.normalized_l2_misses <= 1.02 for row in rows)
