"""Figure 3g: fraction of remote misses with the local probe hidden."""

from repro.analysis.figures import figure3_comparison


def test_fig3g_latency_hiding(benchmark, runner, fig3_subset):
    rows = benchmark.pedantic(
        figure3_comparison, args=(runner, fig3_subset), rounds=1, iterations=1
    )

    print("\nFigure 3g — fraction of remote misses without the local probe on the critical path")
    for row in rows:
        print(f"  {row.benchmark:<16} {row.probe_hidden_fraction:6.3f}")
    average = sum(row.probe_hidden_fraction for row in rows) / len(rows)
    print(f"  average: {average:.3f}")
    # The paper reports 81% on average; require a clear majority hidden.
    assert average > 0.6
