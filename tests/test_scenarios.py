"""The scenario generator, the phase DSL, and the stream-reset regression.

Three contracts live here:

* **Stream re-entrancy** (the PR's bugfix): a ``SyntheticWorkload``
  re-seeds its RNG and per-thread cursors at the top of every
  ``generate()``/``generate_chunks()`` pass.  Before the fix a second
  pass on one instance matched through the RNG-free init phase and then
  drifted at the first compute access — the init→compute phase boundary
  — so chunked generation silently diverged from streamed generation
  whenever both touched the same instance.
* **Generator reproducibility**: ``scenario-*`` names are
  self-describing, re-sampling a generator seed reproduces names, specs
  and digests bit for bit, CRC-32 workload-seed collisions are salted
  away, and dynamic name resolution never perturbs the registry's
  deterministic ordering across processes.
* **End-to-end acceptance**: a sampled set sweeps through cache, pool
  workers and the serve layer with bit-identical snapshots on all three
  engines.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.analysis.executor import SweepExecutor
from repro.analysis.plan import ExperimentSettings, RunSpec, scenario_plan, seed_for
from repro.errors import WorkloadError
from repro.stats.compare import assert_snapshots_identical, snapshot_diff
from repro.system.simulator import Simulator
from repro.workloads import registry
from repro.workloads.base import SyntheticWorkload
from repro.workloads.generator import (
    DEFAULT_FAMILY_ACCESSES,
    MANIFEST_SCHEMA,
    ScenarioSet,
    assert_no_seed_collisions,
    build_family_spec,
    family_name,
    name_seed,
    parse_family_name,
    resolve_builder,
    sample_scenarios,
    spec_digest,
)
from repro.workloads.patterns import (
    DEFAULT_WRITE_FRACTIONS,
    PHASE_PATTERNS,
    PhaseSpec,
    phase_counts,
)

TINY = ExperimentSettings(scale=16, accesses=2500, multiprocess_accesses=1200, seed=1)

#: The chunk sizes ISSUE names for the cross-path parity gate: degenerate,
#: odd, one-off-the-default and the default emission size.
PARITY_CHUNK_SIZES = (1, 7, 8191, 8192)


def scenario_workload(generator_seed=11, index=0, total_accesses=4000):
    return SyntheticWorkload(
        build_family_spec(generator_seed, index, total_accesses=total_accesses)
    )


def phased_scenario_workload(generator_seed=11, count=8, total_accesses=4000):
    """A sampled family that actually carries phases (skip-proof: the
    default config makes one in 4**8 sets phase-free)."""
    for index in range(count):
        spec = build_family_spec(generator_seed, index, total_accesses=total_accesses)
        if spec.phases:
            return SyntheticWorkload(spec)
    raise AssertionError(f"no phased family in scenario set {generator_seed}")


# ----------------------------------------------------------------------
# The bugfix: generate()/generate_chunks() re-entrancy and parity
# ----------------------------------------------------------------------
class TestStreamResetRegression:
    """Chunked generation must never drift from streamed generation."""

    def test_second_generate_pass_is_identical(self):
        # The original failure: pass two matched the RNG-free init phase
        # then diverged at the first compute access (the init→compute
        # boundary), because the RNG carried state from pass one.
        workload = registry.build_workload("migratory", total_accesses=2000)
        first = list(workload.generate())
        second = list(workload.generate())
        assert first == second

    def test_streamed_then_chunked_same_instance(self):
        # The exact shape the executor hits: one workload instance,
        # streamed once (say, to record a trace) and then chunked for
        # the batched engine.
        workload = registry.build_workload("migratory", total_accesses=2000)
        streamed = list(workload.generate())
        chunked = [
            record
            for chunk in workload.generate_chunks(chunk_size=8192)
            for record in chunk.records()
        ]
        assert streamed == chunked

    @pytest.mark.parametrize("chunk_size", PARITY_CHUNK_SIZES)
    def test_chunk_size_parity_plain_family(self, chunk_size):
        workload = registry.build_workload("false-sharing", total_accesses=3000)
        streamed = list(workload.generate())
        chunked = [
            record
            for chunk in workload.generate_chunks(chunk_size=chunk_size)
            for record in chunk.records()
        ]
        assert streamed == chunked

    @pytest.mark.parametrize("chunk_size", PARITY_CHUNK_SIZES)
    def test_chunk_size_parity_phased_family(self, chunk_size):
        # Phase boundaries land mid-chunk for every one of these sizes;
        # the record sequence must not care.
        workload = phased_scenario_workload()
        streamed = list(workload.generate())
        chunked = [
            record
            for chunk in workload.generate_chunks(chunk_size=chunk_size)
            for record in chunk.records()
        ]
        assert streamed == chunked

    def test_fresh_instances_agree_with_reused_instance(self):
        # Reset semantics, not just self-consistency: a reused instance
        # must produce what a fresh instance produces.
        spec = build_family_spec(11, 0, total_accesses=3000)
        reused = SyntheticWorkload(spec)
        list(reused.generate())  # dirty the instance
        assert list(reused.generate()) == list(SyntheticWorkload(spec).generate())


# ----------------------------------------------------------------------
# The phase DSL
# ----------------------------------------------------------------------
class TestPhaseSpecValidation:
    def test_unknown_pattern_rejected(self):
        with pytest.raises(WorkloadError, match="unknown pattern"):
            PhaseSpec("warmup", "sequential-write")

    def test_mix_may_not_target_a_region(self):
        with pytest.raises(WorkloadError, match="may not target"):
            PhaseSpec("steady", "mix", region="shared0")

    @pytest.mark.parametrize(
        "pattern", [p for p in PHASE_PATTERNS if p != "mix"]
    )
    def test_non_mix_patterns_need_a_region(self, pattern):
        with pytest.raises(WorkloadError, match="needs a region"):
            PhaseSpec("thrash", pattern)

    def test_weight_and_stride_must_be_positive(self):
        with pytest.raises(WorkloadError, match="weight"):
            PhaseSpec("steady", "mix", weight=0)
        with pytest.raises(WorkloadError, match="stride_lines"):
            PhaseSpec("thrash", "stride", region="shared0", stride_lines=0)

    def test_spec_rejects_duplicate_phase_names(self):
        base = build_family_spec(11, 0)
        phase = PhaseSpec("steady", "mix")
        from dataclasses import replace

        with pytest.raises(WorkloadError, match="duplicate phase names"):
            replace(base, phases=(phase, phase))

    def test_spec_rejects_unknown_phase_region(self):
        base = build_family_spec(11, 0)
        from dataclasses import replace

        with pytest.raises(WorkloadError, match="nonesuch"):
            replace(
                base,
                phases=(PhaseSpec("warmup", "snake", region="nonesuch"),),
            )


class TestPhaseCounts:
    def test_counts_sum_exactly(self):
        phases = (
            PhaseSpec("warmup", "mix", weight=0.1),
            PhaseSpec("steady", "mix", weight=0.63),
            PhaseSpec("thrash", "mix", weight=0.27),
        )
        for total in (1, 7, 100, 4001, 199_999):
            counts = phase_counts(total, phases)
            assert sum(counts) == total
            assert all(count >= 0 for count in counts)

    def test_remainder_lands_in_phase_order(self):
        phases = tuple(PhaseSpec(f"p{i}", "mix") for i in range(3))
        assert phase_counts(5, phases) == [2, 2, 1]

    def test_no_phases_no_counts(self):
        assert phase_counts(100, ()) == []

    def test_write_fraction_defaults_cover_all_targeted_patterns(self):
        targeted = [p for p in PHASE_PATTERNS if p != "mix"]
        assert sorted(DEFAULT_WRITE_FRACTIONS) == sorted(targeted)


class TestPhasedStream:
    def test_phased_stream_is_deterministic(self):
        workload = phased_scenario_workload()
        again = SyntheticWorkload(workload.spec)
        assert list(workload.generate()) == list(again.generate())

    def test_phased_stream_honours_access_budget(self):
        workload = phased_scenario_workload(total_accesses=4000)
        records = list(workload.generate())
        # init phase (first-touch page writes) + exactly the compute budget
        init = sum(instance.page_count for region in workload._instances.values()
                   for instance in region)
        assert len(records) == init + workload.spec.total_accesses

    def test_sequential_fill_phase_writes_the_target_region(self):
        # A pure fill phase must emit stores (write fraction 1.0).
        from dataclasses import replace

        base = build_family_spec(11, 0, total_accesses=800)
        target = next(r.name for r in base.regions if r.kind == "shared")
        spec = replace(
            base, phases=(PhaseSpec("warmup", "sequential-fill", region=target),)
        )
        records = list(SyntheticWorkload(spec).generate())
        compute = records[-spec.total_accesses:]
        from repro.trace.record import AccessType

        assert all(r.access_type is AccessType.WRITE for r in compute)


# ----------------------------------------------------------------------
# Names, seeds and collision salting
# ----------------------------------------------------------------------
class TestFamilyNames:
    def test_name_round_trip(self):
        assert parse_family_name(family_name(11, 3)) == (11, 3, 0)
        assert parse_family_name(family_name(11, 3, salt=2)) == (11, 3, 2)

    @pytest.mark.parametrize(
        "bad",
        ["barnes", "scenario-", "scenario-11", "scenario-11-3-s0",
         "scenario-11-3-s", "scenario-x-1", "scenario-11-3x"],
    )
    def test_non_scenario_names_do_not_parse(self, bad):
        assert parse_family_name(bad) is None

    def test_name_seed_is_the_seed_for_crc(self):
        # The contract that makes salting meaningful: seed_for is an
        # affine function of name_seed, so distinct name_seeds mean
        # distinct workload seeds at every base seed.
        for name in ("scenario-11-0", "scenario-11-1-s2", "migratory"):
            for base in (0, 1, 42):
                assert seed_for(name, base) == base * 1_000_003 + name_seed(name)

    def test_audit_passes_on_a_large_sampled_set(self):
        assert_no_seed_collisions(sample_scenarios(5, 64).names)

    def test_audit_raises_on_a_real_collision(self):
        # A genuine CRC-32 collision, found by birthday search over the
        # scenario name shape — both names hash to 4156442666.
        colliding = ["scenario-126834292-87", "scenario-673419381-56"]
        assert name_seed(colliding[0]) == name_seed(colliding[1])
        with pytest.raises(WorkloadError, match="collision"):
            assert_no_seed_collisions(colliding)

    def test_duplicate_name_is_not_a_collision(self):
        assert_no_seed_collisions(["scenario-1-0", "scenario-1-0"]) is None


class TestCollisionSalting:
    def test_injected_collision_is_salted_away(self):
        # Map every unsalted name of index 1 onto index 0's seed: the
        # sampler must bump index 1's salt until the seed is unique.
        def colliding(name):
            if name == "scenario-9-1":
                return colliding("scenario-9-0")
            return name_seed(name)

        sampled = sample_scenarios(9, 3, _seed_of=colliding)
        assert sampled.names == ["scenario-9-0", "scenario-9-1-s1", "scenario-9-2"]
        seeds = [colliding(name) for name in sampled.names]
        assert len(set(seeds)) == len(seeds)

    def test_salt_renames_without_resampling(self):
        plain = build_family_spec(9, 1, salt=0)
        salted = build_family_spec(9, 1, salt=1)
        assert salted.name == "scenario-9-1-s1"
        assert salted.seed == name_seed(salted.name) != plain.seed
        from dataclasses import replace

        # Same draw: only the name (and with it the default seed) moved.
        assert replace(salted, name=plain.name, seed=plain.seed) == plain

    def test_persistent_collision_keeps_bumping(self):
        taken = name_seed("scenario-9-0")

        def stubborn(name):
            _, _, salt = parse_family_name(name)
            if name.startswith("scenario-9-1") and salt < 3:
                return taken
            return name_seed(name)

        sampled = sample_scenarios(9, 2, _seed_of=stubborn)
        assert sampled.names[1] == "scenario-9-1-s3"


# ----------------------------------------------------------------------
# Sampling reproducibility
# ----------------------------------------------------------------------
class TestSamplingReproducibility:
    def test_resampling_reproduces_names_specs_and_digests(self):
        first = sample_scenarios(11, 8)
        second = sample_scenarios(11, 8)
        assert first.names == second.names
        for a, b in zip(first, second):
            assert a.spec == b.spec
            assert spec_digest(a.spec) == spec_digest(b.spec)
        assert first.manifest() == second.manifest()
        assert first.manifest()["schema"] == MANIFEST_SCHEMA

    def test_different_generator_seeds_sample_differently(self):
        a = sample_scenarios(11, 8)
        b = sample_scenarios(12, 8)
        assert [f.spec.regions for f in a] != [f.spec.regions for f in b]

    def test_family_is_a_pure_function_of_seed_and_index(self):
        # Resolving family 5 alone equals family 5 of the sampled set:
        # no cross-family RNG coupling.
        sampled = sample_scenarios(11, 8)
        lone = build_family_spec(11, 5)
        assert lone == sampled.families[5].spec

    def test_resolve_builder_matches_the_sampled_family(self):
        sampled = sample_scenarios(11, 4)
        for family in sampled:
            builder = resolve_builder(family.name)
            assert builder is not None
            assert builder() == family.spec
            scaled = builder(total_accesses=1000)
            assert scaled.total_accesses <= 1000
        assert resolve_builder("barnes") is None

    def test_invalid_sampling_arguments_rejected(self):
        with pytest.raises(WorkloadError, match="seed"):
            sample_scenarios(-1, 4)
        with pytest.raises(WorkloadError, match="count"):
            sample_scenarios(1, 0)

    def test_utilization_scales_the_access_budget(self):
        sampled = sample_scenarios(11, 16)
        budgets = {family.spec.total_accesses for family in sampled}
        assert len(budgets) > 1  # utilization/threads actually bite
        assert all(b >= 256 for b in budgets)
        assert all(
            family.spec.total_accesses <= DEFAULT_FAMILY_ACCESSES
            for family in sampled
        )


# ----------------------------------------------------------------------
# Registry determinism (satellite: cross-process name ordering)
# ----------------------------------------------------------------------
class TestRegistryDeterminism:
    @pytest.fixture
    def sampled(self):
        sampled = sample_scenarios(21, 4)
        yield sampled
        sampled.unregister()

    def test_dynamic_resolution_does_not_mutate_the_registry(self, sampled):
        before = registry.all_benchmark_names()
        spec = registry.build_spec(sampled.names[0], total_accesses=1000)
        assert spec.name == sampled.names[0]
        assert registry.is_registered(sampled.names[0])
        assert registry.all_benchmark_names() == before
        assert sampled.names[0] not in before

    def test_registration_order_does_not_change_the_name_set(self, sampled):
        for family in reversed(list(sampled)):
            registry.register(family.name, family.builder)
        reversed_order = registry.all_benchmark_names()
        sampled.unregister()
        sampled.register()
        assert registry.all_benchmark_names() == reversed_order
        assert set(sampled.names) <= set(reversed_order)

    def test_register_is_idempotent(self, sampled):
        sampled.register()
        sampled.register()  # second call must not raise "already registered"
        assert set(sampled.names) <= set(registry.all_benchmark_names())

    def test_explicit_registration_wins_over_dynamic(self, sampled):
        name = sampled.names[0]
        pinned = build_family_spec(21, 0, total_accesses=123, seed=7)
        registry.register(name, lambda **kwargs: pinned)
        try:
            assert registry.build_spec(name) == pinned
        finally:
            registry.unregister(name)
        assert registry.build_spec(name, total_accesses=123, seed=7) == pinned

    def test_two_processes_agree_on_the_name_set(self):
        # Satellite 2's cross-process pin: a sweep worker and a serve
        # shard that register the same sampled set in opposite orders
        # must print the identical all_benchmark_names() list.
        script = (
            "import json, sys\n"
            "from repro.workloads import registry\n"
            "from repro.workloads.generator import sample_scenarios\n"
            "families = list(sample_scenarios(33, 5))\n"
            "if sys.argv[1] == 'reversed':\n"
            "    families.reverse()\n"
            "for family in families:\n"
            "    registry.register(family.name, family.builder)\n"
            "print(json.dumps(registry.all_benchmark_names()))\n"
        )
        src = str(Path(repro.__file__).resolve().parents[1])
        env = {**os.environ, "PYTHONPATH": src}
        outputs = []
        for order in ("forward", "reversed"):
            result = subprocess.run(
                [sys.executable, "-c", script, order],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.append(json.loads(result.stdout))
        assert outputs[0] == outputs[1]
        assert "scenario-33-0" in outputs[0]


# ----------------------------------------------------------------------
# Plans and end-to-end acceptance
# ----------------------------------------------------------------------
class TestScenarioPlan:
    def test_plan_covers_the_full_grid(self):
        plan = scenario_plan(TINY, generator_seed=11, count=3)
        assert plan.name == "scenarios"
        assert len(plan) == 3 * 2 * 2  # families x policies x pf sizes
        assert all(spec.benchmark.startswith("scenario-") for spec in plan)

    def test_env_overrides_steer_sampling(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCENARIO_SEED", "77")
        monkeypatch.setenv("REPRO_SCENARIO_COUNT", "2")
        plan = scenario_plan(TINY)
        assert sorted({spec.benchmark for spec in plan}) == [
            "scenario-77-0", "scenario-77-1",
        ]

    def test_explicit_benchmarks_bypass_sampling(self):
        plan = scenario_plan(TINY, benchmarks=["scenario-11-0"], pf_sizes=(1024,),
                             policies=("allarm",))
        assert [spec.benchmark for spec in plan] == ["scenario-11-0"]


class TestAcceptanceRoundTrip:
    """ISSUE acceptance: >=8 sampled families through sweep + cache +
    serve, bit-identical across reference, packed and batched."""

    SETTINGS = ExperimentSettings(
        scale=16, accesses=2500, multiprocess_accesses=1200, seed=1
    )

    def specs(self, names, engine):
        return [
            RunSpec(name, "allarm", settings=self.SETTINGS, engine=engine)
            for name in names
        ]

    def test_three_engines_bit_identical_through_the_cache(self, tmp_path):
        names = sample_scenarios(11, 8).names
        executor = SweepExecutor(cache_dir=tmp_path / "cache")
        digests = {}
        for engine in ("reference", "packed", "batched"):
            for spec in self.specs(names, engine):
                snapshot = executor.run(spec)
                digests.setdefault(spec.benchmark, []).append(snapshot)
        for name, snapshots in digests.items():
            for other in snapshots[1:]:
                assert snapshot_diff(snapshots[0], other) == [], name

        # A fresh executor over the same cache dir resolves every spec
        # from disk: generated families hit the cache like any other.
        rebuilt = SweepExecutor(cache_dir=tmp_path / "cache")
        for spec in self.specs(names, "packed"):
            cached = rebuilt.lookup(spec)
            assert cached is not None and cached[1] == "disk"
            assert snapshot_diff(digests[spec.benchmark][0], cached[0]) == []

    def test_pool_workers_rebuild_streams_from_names(self, tmp_path):
        # Satellite 2's execution half: pool workers receive only the
        # spec (with its scenario- name) and must rebuild the identical
        # stream via dynamic resolution — no registration hand-off.
        plan = scenario_plan(
            self.SETTINGS, generator_seed=11, count=2,
            pf_sizes=(512 * 1024,), policies=("allarm",),
        )
        inline = SweepExecutor().run_plan(plan)
        pooled = SweepExecutor(workers=2).run_plan(plan)
        assert inline.ok and pooled.ok
        for mine, theirs in zip(inline.results, pooled.results):
            assert mine.spec == theirs.spec
            assert_snapshots_identical(
                mine.snapshot, theirs.snapshot, context=mine.spec.benchmark
            )

    def test_serve_round_trip_matches_direct_execution(self, tmp_path):
        from repro.serve import BackgroundServer, ServeClient, SweepServer
        from repro.serve.protocol import spec_from_wire, spec_to_wire
        from repro.stats.snapshot import MachineSnapshot

        spec = RunSpec(
            "scenario-11-0", "allarm", settings=self.SETTINGS, engine="batched"
        )
        assert spec_from_wire(spec_to_wire(spec)) == spec

        direct = SweepExecutor().run(spec)
        instance = SweepServer(
            executor=SweepExecutor(cache_dir=tmp_path / "cache"), parallel=2
        )
        with BackgroundServer(instance):
            with ServeClient(instance.host, instance.port) as client:
                cold = client.run(spec)
                warm = client.run(spec)
        assert cold.source == "executed"
        assert warm.source == "memory"
        rebuilt = MachineSnapshot.from_dict(cold.snapshot)
        assert snapshot_diff(direct, rebuilt) == []

    def test_resampled_set_reproduces_snapshot_digests(self, tmp_path):
        # The manifest claim, end to end: same generator seed, two
        # independent samplings, identical snapshot digests.
        from repro.analysis.executor import _snapshot_digest

        digests = []
        for _ in range(2):
            names = sample_scenarios(11, 2).names
            batch = {}
            for spec in self.specs(names, "packed"):
                snapshot = SweepExecutor().run(spec)
                batch[spec.benchmark] = _snapshot_digest(snapshot.to_dict())
            digests.append(batch)
        assert digests[0] == digests[1]
