"""Integration tests asserting the paper's qualitative claims end-to-end.

These are the "does the reproduction behave like the paper says" checks,
run on reduced-size configurations so they stay test-suite fast.  The full
sized runs live in benchmarks/.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentRunner, ExperimentSettings
from repro.stats.compare import RunComparison


@pytest.fixture(scope="module")
def runner() -> ExperimentRunner:
    settings = ExperimentSettings(scale=16, accesses=10_000, multiprocess_accesses=4_000)
    return ExperimentRunner(settings)


class TestAllarmCoreClaims:
    def test_allarm_never_allocates_for_local_requests(self, runner):
        """ALLARM requires no directory entries for thread-private data."""
        for benchmark in ("barnes", "ocean-cont"):
            baseline, allarm = runner.run_pair(benchmark)
            assert allarm.pf_allocations < baseline.pf_allocations
            # Allocation reduction should roughly track the local fraction.
            local = baseline.local_fraction
            reduction = 1 - allarm.pf_allocations / baseline.pf_allocations
            assert reduction >= 0.5 * local

    def test_eviction_reduction_across_suite(self, runner):
        """Probe-filter evictions drop substantially (paper: 46% average)."""
        ratios = []
        for benchmark in ("barnes", "cholesky", "ocean-cont", "x264"):
            baseline, allarm = runner.run_pair(benchmark)
            if baseline.pf_evictions:
                ratios.append(allarm.pf_evictions / baseline.pf_evictions)
        assert ratios, "expected baseline probe-filter evictions"
        assert sum(ratios) / len(ratios) < 0.9

    def test_network_traffic_does_not_grow(self, runner):
        """ALLARM creates no coherence traffic for thread-local data."""
        for benchmark in ("barnes", "dedup"):
            baseline, allarm = runner.run_pair(benchmark)
            assert allarm.network_bytes <= baseline.network_bytes * 1.02

    def test_latency_hiding_majority(self, runner):
        """Most remote probe-filter misses hide the local probe (Fig. 3g)."""
        fractions = []
        for benchmark in ("barnes", "cholesky", "x264"):
            _, allarm = runner.run_pair(benchmark)
            if allarm.local_probes_sent:
                fractions.append(allarm.probe_hidden_fraction)
        assert fractions
        assert sum(fractions) / len(fractions) > 0.6

    def test_execution_time_not_degraded_materially(self, runner):
        """ALLARM must not slow the suite down (paper: 13% average gain)."""
        speedups = []
        for benchmark in ("barnes", "blackscholes", "dedup"):
            baseline, allarm = runner.run_pair(benchmark)
            speedups.append(RunComparison(baseline, allarm).speedup)
        assert all(speedup > 0.9 for speedup in speedups)

    def test_correctness_is_policy_independent(self, runner):
        """ALLARM is a performance policy: the same accesses are serviced."""
        baseline, allarm = runner.run_pair("cholesky")
        assert baseline.total_accesses == allarm.total_accesses
        assert baseline.directory_requests > 0
        assert allarm.directory_requests > 0


class TestMultiProcessClaims:
    def test_baseline_evictions_grow_as_pf_shrinks(self, runner):
        """Figure 4b: baseline eviction growth under a shrinking PF."""
        large = runner.run_multiprocess("barnes", "baseline", 512 * 1024)
        small = runner.run_multiprocess("barnes", "baseline", 32 * 1024)
        assert small.pf_evictions >= large.pf_evictions

    def test_allarm_insensitive_to_pf_size(self, runner):
        """Figures 4d-4f: ALLARM barely notices the probe-filter size."""
        large = runner.run_multiprocess("barnes", "allarm", 512 * 1024)
        small = runner.run_multiprocess("barnes", "allarm", 32 * 1024)
        baseline_small = runner.run_multiprocess("barnes", "baseline", 32 * 1024)
        assert small.pf_evictions <= baseline_small.pf_evictions
        # Execution time under ALLARM stays within a few percent across sizes.
        assert small.execution_time_ns <= large.execution_time_ns * 1.1

    def test_multiprocess_requests_are_overwhelmingly_local(self, runner):
        """Two independent single-threaded processes share almost nothing."""
        snapshot = runner.run_multiprocess("ocean-cont", "baseline", 512 * 1024)
        assert snapshot.local_fraction > 0.8
