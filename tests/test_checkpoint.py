"""Checkpoint/restore bit-identity and envelope validation tests.

The checkpoint contract: running N accesses, checkpointing, restoring
the blob onto a freshly built machine and running the remaining M
accesses must produce a snapshot bit-identical (``snapshot_diff == []``)
to one uninterrupted N+M run — on every engine, every workload family
and every replacement policy (PLRU tree bits and per-set RNG streams are
part of the state).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis.plan import ExperimentSettings, RunSpec
from repro.errors import SimulationError
from repro.stats.compare import snapshot_diff
from repro.system.checkpoint import (
    CHECKPOINT_MAGIC,
    checkpoint_file_name,
    decode_checkpoint,
    encode_checkpoint,
    parse_checkpoint_epoch,
)
from repro.system.config import experiment_config
from repro.system.simulator import Simulator, simulate
from repro.workloads.registry import MICROBENCH_FAMILIES

TINY = ExperimentSettings(
    scale=16, accesses=1200, multiprocess_accesses=800, seed=3
)

ENGINES = ("reference", "packed", "batched")


def _spec(family: str, layout: str = "16t") -> RunSpec:
    # The starved 32 kB filter keeps the eviction/invalidation paths hot,
    # so the checkpoint covers directory state that actually changes.
    return RunSpec(family, "allarm", pf_size=32 * 1024, layout=layout, settings=TINY)


def _split_run(config, records, engine: str, split: int):
    """Run with a checkpoint/restore seam at *split*; return the snapshot."""
    first = Simulator(config, engine=engine)
    first.run(records[:split])
    blob = first.machine.checkpoint()
    second = Simulator(config, engine=engine)
    second.restore(blob)
    return second.run(records[split:]).snapshot


class TestRoundTripBitIdentity:
    @pytest.mark.parametrize("family", MICROBENCH_FAMILIES)
    @pytest.mark.parametrize("engine", ENGINES)
    def test_every_family_every_engine(self, family, engine):
        spec = _spec(family)
        config = spec.config()
        records = list(spec.access_stream())
        full = simulate(config, records, engine=engine).snapshot
        # An odd split keeps the seam off any chunk/block boundary.
        seam = _split_run(config, records, engine, len(records) // 2 + 1)
        assert snapshot_diff(full, seam) == []

    @pytest.mark.parametrize("engine", ENGINES)
    def test_multiprocess_layout(self, engine):
        spec = _spec("barnes", layout="2p")
        config = spec.config()
        records = list(spec.access_stream())
        full = simulate(config, records, engine=engine).snapshot
        seam = _split_run(config, records, engine, len(records) // 3)
        assert snapshot_diff(full, seam) == []

    @pytest.mark.parametrize("engine", ("reference", "packed"))
    @pytest.mark.parametrize("replacement", ("random", "plru"))
    def test_replacement_policy_state_survives(self, engine, replacement):
        # Random replacement draws from per-set RNG streams and PLRU from
        # tree bits; both must continue, not restart, after a restore.
        spec = _spec("stream-scan")
        base = spec.config()
        config = replace(
            base,
            core=replace(base.core, replacement=replacement),
            directory=replace(
                base.directory, probe_filter_replacement=replacement
            ),
        )
        records = list(spec.access_stream())
        full = simulate(config, records, engine=engine).snapshot
        seam = _split_run(config, records, engine, len(records) // 2)
        assert snapshot_diff(full, seam) == []

    def test_checkpoint_is_deterministic(self):
        spec = _spec("hotspot")
        records = list(spec.access_stream())

        def _blob():
            simulator = Simulator(spec.config(), engine="packed")
            simulator.run(records)
            return simulator.machine.checkpoint()

        assert _blob() == _blob()


class TestEnvelope:
    def _machine(self):
        simulator = Simulator(experiment_config("baseline", scale=16))
        return simulator.machine

    def test_encode_decode_round_trip(self):
        state = {"nested": [1, 2, {"k": "v"}]}
        assert decode_checkpoint(encode_checkpoint(state)) == state

    def test_short_blob_rejected(self):
        with pytest.raises(SimulationError, match="truncated"):
            decode_checkpoint(b"\x00" * 8)

    def test_bad_magic_rejected(self):
        blob = bytearray(encode_checkpoint({}))
        blob[0] ^= 0xFF
        with pytest.raises(SimulationError, match="magic"):
            decode_checkpoint(bytes(blob))

    def test_version_mismatch_rejected(self):
        blob = bytearray(encode_checkpoint({}))
        blob[len(CHECKPOINT_MAGIC)] ^= 0xFF
        with pytest.raises(SimulationError, match="version"):
            decode_checkpoint(bytes(blob))

    def test_digest_mismatch_names_the_fix(self):
        blob = bytearray(self._machine().checkpoint())
        blob[-1] ^= 0x01  # flip one payload bit
        with pytest.raises(SimulationError, match="re-record"):
            decode_checkpoint(bytes(blob))

    def test_restore_rejects_other_configuration(self):
        blob = self._machine().checkpoint()
        other = Simulator(
            experiment_config("allarm", scale=16), engine="packed"
        )
        with pytest.raises(SimulationError, match="config"):
            other.machine.restore(blob)

    def test_restore_rejects_other_engine(self):
        config = experiment_config("baseline", scale=16)
        blob = Simulator(config, engine="reference").machine.checkpoint()
        packed = Simulator(config, engine="packed")
        with pytest.raises(SimulationError, match="same engine"):
            packed.machine.restore(blob)


class TestCheckpointedRun:
    def test_epoch_files_written_atomically(self, tmp_path):
        spec = _spec("false-sharing")
        records = list(spec.access_stream())
        simulator = Simulator(spec.config(), engine="packed")
        result = simulator.run(
            records,
            checkpoint_every=400,
            checkpoint_dir=tmp_path,
        )
        assert result.accesses_simulated == len(records)
        names = sorted(p.name for p in tmp_path.iterdir())
        # One file per whole epoch; the mid-epoch tail is not checkpointed.
        expected = [
            checkpoint_file_name(k) for k in range(1, len(records) // 400 + 1)
        ]
        assert names == expected
        assert not list(tmp_path.glob("*.tmp*"))
        for name in names:
            assert parse_checkpoint_epoch(name) >= 1

    def test_checkpointed_run_matches_plain_run(self, tmp_path):
        spec = _spec("migratory")
        config = spec.config()
        records = list(spec.access_stream())
        for engine in ENGINES:
            plain = simulate(config, records, engine=engine).snapshot
            simulator = Simulator(config, engine=engine)
            ticked = simulator.run(
                records,
                checkpoint_every=333,  # never a chunk/block multiple
                checkpoint_dir=tmp_path / engine,
            ).snapshot
            assert snapshot_diff(plain, ticked) == []

    def test_run_validates_checkpoint_arguments(self, tmp_path):
        simulator = Simulator(experiment_config("baseline", scale=16))
        with pytest.raises(SimulationError, match="positive"):
            simulator.run([], checkpoint_every=0, checkpoint_dir=tmp_path)
        with pytest.raises(SimulationError, match="checkpoint_dir"):
            simulator.run([], checkpoint_every=10)
        with pytest.raises(SimulationError, match="epoch boundaries"):
            simulator.run(
                [],
                checkpoint_every=10,
                checkpoint_dir=tmp_path,
                checkpoint_start=5,
            )

    def test_parse_checkpoint_epoch_rejects_other_names(self):
        assert parse_checkpoint_epoch("manifest.json") == -1
        assert parse_checkpoint_epoch("epoch-abc.ckpt") == -1
        assert parse_checkpoint_epoch(checkpoint_file_name(17)) == 17
