"""Packed-layout parity: PackedCache/PackedHierarchy vs the reference.

The packed engine's contract is *bit-identical behaviour*, not just
identical snapshots: for any op sequence, a :class:`PackedCache` must
make the same replacement decisions (same victim **ways**, under the
same tie-breaking quirks), count the same stats and report the same
resident state as a :class:`Cache` built with the same parameters.
These tests drive both implementations op-for-op and compare after
every step, for every replacement policy — including the documented
reference subtleties:

* LRU prefers an occupied-but-never-touched way, scanning occupied ways
  in ascending order;
* tree-PLRU walks bits toward the pseudo-LRU half, with untouched
  internal nodes defaulting left;
* random replacement draws from a per-set RNG seeded
  ``seed + set_index + 1``, consuming exactly one ``choice`` per
  eviction.

MSHR merge/full semantics are exercised through the packed hierarchy to
pin that the packed layout did not change miss-tracking behaviour.
"""

from __future__ import annotations

import random

import pytest

from repro.cache.cache import Cache
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.packed import PackedCache, PackedHierarchy
from repro.coherence.states import LineState
from repro.coherence.transactions import RequestKind
from repro.errors import ConfigurationError

POLICIES = ("lru", "plru", "random")
VALID_STATES = (
    LineState.MODIFIED,
    LineState.OWNED,
    LineState.EXCLUSIVE,
    LineState.SHARED,
)


def make_pair(policy: str, seed: int = 5, associativity: int = 4):
    """A (reference, packed) cache pair with identical parameters."""
    kwargs = dict(
        size_bytes=2048,
        associativity=associativity,
        line_size=64,
        replacement=policy,
        seed=seed,
    )
    return Cache("ref", **kwargs), PackedCache("ref", **kwargs)


def resident_view(cache) -> dict:
    """Address -> (state, way) for every resident line."""
    return {
        line.line_address: (line.state, line.way)
        for line in cache.resident_lines()
    }


def assert_same_state(reference: Cache, packed: PackedCache) -> None:
    assert resident_view(reference) == resident_view(packed)
    assert reference.stats.as_dict() == packed.stats.as_dict()
    assert reference.occupancy() == packed.occupancy()


class TestPackedCacheParity:
    """Randomized op-for-op equivalence, checked after every operation."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_random_op_sequences(self, policy, seed):
        reference, packed = make_pair(policy, seed=seed)
        rng = random.Random(1000 + seed)
        # A small address pool over few sets forces constant conflicts.
        addresses = [line * 64 for line in range(24)]

        for _ in range(600):
            op = rng.randrange(6)
            address = rng.choice(addresses)
            if op <= 1:
                state = rng.choice(VALID_STATES)
                left = reference.fill(address, state)
                right = packed.fill(address, state)
                if left is None:
                    assert right is None
                else:
                    assert (left.line_address, left.state, left.way) == (
                        right.line_address,
                        right.state,
                        right.way,
                    )
            elif op == 2:
                left = reference.lookup(address)
                right = packed.lookup(address)
                assert (left is None) == (right is None)
                if left is not None:
                    assert (left.state, left.way) == (right.state, right.way)
            elif op == 3:
                left = reference.invalidate(address)
                right = packed.invalidate(address)
                assert (left is None) == (right is None)
                if left is not None:
                    assert (left.state, left.way) == (right.state, right.way)
            elif op == 4:
                if reference.contains(address):
                    state = rng.choice(VALID_STATES)
                    left = reference.set_state(address, state)
                    right = packed.set_state(address, state)
                    assert (left.state, left.way) == (right.state, right.way)
                else:
                    assert not packed.contains(address)
            else:
                left = reference.probe(address)
                right = packed.probe(address)
                assert (left is None) == (right is None)
            assert_same_state(reference, packed)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_flush_parity(self, policy):
        reference, packed = make_pair(policy)
        rng = random.Random(3)
        for _ in range(40):
            address = rng.randrange(32) * 64
            state = rng.choice(VALID_STATES)
            reference.fill(address, state)
            packed.fill(address, state)
        left = {(l.line_address, l.state) for l in reference.flush()}
        right = {(l.line_address, l.state) for l in packed.flush()}
        assert left == right
        assert reference.occupancy() == packed.occupancy() == 0
        # Post-flush behaviour must continue in lock-step (policy state
        # was reset identically).
        for _ in range(40):
            address = rng.randrange(32) * 64
            state = rng.choice(VALID_STATES)
            lv, rv = reference.fill(address, state), packed.fill(address, state)
            assert (lv is None) == (rv is None)
            assert_same_state(reference, packed)


class TestReplacementTieBreaking:
    """The reference tie-break quirks, pinned explicitly on both engines."""

    def _caches(self, policy, associativity=4):
        return make_pair(policy, seed=9, associativity=associativity)

    def test_lru_oldest_fill_evicted_from_way_zero(self):
        for cache in self._caches("lru"):
            set0 = [line * 64 * (2048 // (4 * 64)) for line in range(5)]
            for address in set0[:4]:
                cache.fill(address, LineState.EXCLUSIVE)
            victim = cache.fill(set0[4], LineState.EXCLUSIVE)
            # Pure LRU: the first-filled line is the victim, in way 0.
            assert victim.line_address == set0[0]
            assert victim.way == 0

    def test_lru_victim_is_least_recent_after_touches(self):
        reference, packed = self._caches("lru")
        step = 2048 // (4 * 64) * 64  # one set's stride
        lines = [index * step for index in range(4)]
        for cache in (reference, packed):
            for address in lines:
                cache.fill(address, LineState.SHARED)
            # Touch way 0 and 1 again: way 2's line becomes LRU.
            cache.lookup(lines[0])
            cache.lookup(lines[1])
        lv = reference.fill(5 * step, LineState.SHARED)
        rv = packed.fill(5 * step, LineState.SHARED)
        assert lv.way == rv.way == 2
        assert lv.line_address == rv.line_address == lines[2]

    def test_plru_victim_sequence_parity(self):
        reference, packed = self._caches("plru")
        step = 2048 // (4 * 64) * 64
        rng = random.Random(11)
        for index in range(4):
            reference.fill(index * step, LineState.SHARED)
            packed.fill(index * step, LineState.SHARED)
        for round_number in range(4, 40):
            # Random touches perturb the tree identically on both sides.
            touched = rng.randrange(round_number - 4, round_number)
            reference.lookup(touched * step)
            packed.lookup(touched * step)
            lv = reference.fill(round_number * step, LineState.SHARED)
            rv = packed.fill(round_number * step, LineState.SHARED)
            assert (lv.line_address, lv.way) == (rv.line_address, rv.way)

    @pytest.mark.parametrize("seed", [0, 3, 17])
    def test_random_policy_same_seed_same_victims(self, seed):
        reference, packed = make_pair("random", seed=seed)
        step = 2048 // (4 * 64) * 64
        left_victims, right_victims = [], []
        for index in range(40):
            lv = reference.fill(index * step, LineState.SHARED)
            rv = packed.fill(index * step, LineState.SHARED)
            left_victims.append((lv.line_address, lv.way) if lv else None)
            right_victims.append((rv.line_address, rv.way) if rv else None)
        assert left_victims == right_victims
        # Different seeds must (with overwhelming likelihood) diverge —
        # guards against a packed RNG that ignores its seed.
        other_ref, other_packed = make_pair("random", seed=seed + 100)
        other = [
            (v.line_address, v.way) if v else None
            for v in (other_ref.fill(i * step, LineState.SHARED) for i in range(40))
        ]
        assert other != left_victims
        del other_packed


class TestPackedHierarchyParity:
    def make_hierarchies(self, policy="lru"):
        kwargs = dict(
            core_id=2,
            l1i_size=1024,
            l1d_size=1024,
            l1_assoc=4,
            l2_size=2048,
            l2_assoc=4,
            line_size=64,
            replacement=policy,
        )
        return CacheHierarchy(**kwargs), PackedHierarchy(**kwargs)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_access_fill_invalidate_streams(self, policy):
        reference, packed = self.make_hierarchies(policy)
        rng = random.Random(42)
        addresses = [line * 64 for line in range(48)]
        for _ in range(800):
            op = rng.randrange(10)
            address = rng.choice(addresses)
            if op < 6:
                is_write = rng.random() < 0.3
                is_instruction = rng.random() < 0.1
                left = reference.access(address, is_write, is_instruction)
                right = packed.access(address, is_write, is_instruction)
                assert left == right
                if left.needs_coherence and not left.needs_upgrade:
                    state = (
                        LineState.MODIFIED if is_write else rng.choice(VALID_STATES)
                    )
                    lv = reference.fill(address, state, is_instruction)
                    rv = packed.fill(address, state, is_instruction)
                    assert lv == rv
            elif op < 8:
                assert reference.handle_invalidate(
                    address
                ) == packed.handle_invalidate(address)
            else:
                assert reference.handle_downgrade(
                    address
                ) == packed.handle_downgrade(address)
            assert reference.coherence_state(address) is packed.coherence_state(
                address
            )
        for left_cache, right_cache in (
            (reference.l1i, packed.l1i),
            (reference.l1d, packed.l1d),
            (reference.l2, packed.l2),
        ):
            assert left_cache.stats.as_dict() == right_cache.stats.as_dict()
            assert resident_view(left_cache) == resident_view(right_cache)
        assert reference.total_accesses() == packed.total_accesses()
        assert reference.l2_misses() == packed.l2_misses()

    def test_inclusion_violation_raises_on_l1_write_hit(self):
        _, packed = self.make_hierarchies()
        packed.access(0x100, False)
        packed.fill(0x100, LineState.EXCLUSIVE)
        # Corrupt the hierarchy: drop the line from L2 only.
        packed.l2.invalidate(0x100)
        with pytest.raises(ConfigurationError, match="inclusion violated"):
            packed.access(0x100, True)


class TestMshrUnderPackedLayout:
    """MSHR merge/full semantics are layout-independent."""

    def test_merge_and_full_behaviour_matches_reference(self):
        reference = CacheHierarchy(core_id=0, mshr_capacity=2).mshrs
        packed = PackedHierarchy(core_id=0, mshr_capacity=2).mshrs
        for mshrs in (reference, packed):
            first = mshrs.allocate(0x100, RequestKind.READ)
            merged = mshrs.allocate(0x100, RequestKind.WRITE)
            assert merged is first
            assert merged.merged_count == 2
            assert merged.needs_write
            mshrs.allocate(0x140, RequestKind.READ)
            assert mshrs.is_full
            with pytest.raises(ConfigurationError, match="MSHR file full"):
                mshrs.allocate(0x180, RequestKind.READ)
        assert reference.stats.__dict__ == packed.stats.__dict__

    def test_release_and_drain_parity(self):
        reference = CacheHierarchy(core_id=1).mshrs
        packed = PackedHierarchy(core_id=1).mshrs
        for mshrs in (reference, packed):
            mshrs.allocate(0x200, RequestKind.READ)
            mshrs.allocate(0x240, RequestKind.WRITE)
            released = mshrs.release(0x200)
            assert released.line_address == 0x200
            drained = mshrs.drain()
            assert [entry.line_address for entry in drained] == [0x240]
            assert mshrs.occupancy == 0
        assert reference.stats.__dict__ == packed.stats.__dict__


class TestPackedMissPath:
    """Regression tests for the packed directory fast path itself.

    Each scenario pins one miss flavour — probe-filter hit, no-allocate
    miss, allocating miss, PF eviction, MSHR merge, eviction-notification
    corner modes — by driving a packed and a reference machine through
    the identical access sequence and comparing full snapshots, while the
    packed machine's ``fast_misses`` / ``deferred_misses`` counters prove
    the scenario ran on the fast path (or deferred exactly when a
    structural event demanded it), not via wholesale fallback.
    """

    BASE = 0x4000_0000

    def make_machines(self, policy="baseline", pf_coverage=2048, mode="dirty"):
        from repro.stats.compare import snapshot_diff
        from repro.stats.snapshot import collect
        from repro.system.config import (
            CoreConfig,
            DirectoryConfig,
            NetworkConfig,
            SystemConfig,
        )
        from repro.system.fastcore import PackedMachine, build_machine

        config = SystemConfig(
            core_count=4,
            core=CoreConfig(l1i_size=1024, l1d_size=1024, l2_size=2048),
            directory=DirectoryConfig(
                probe_filter_coverage=pf_coverage,
                memory_bytes=64 * 1024 * 1024,
                eviction_notification=mode,
            ),
            network=NetworkConfig(mesh_width=2, mesh_height=2),
            directory_policy=policy,
        )
        # The scenarios pin fast/deferred counters, so the packed machine
        # is built with deferral explicitly off (immune to an ambient
        # REPRO_PACKED_DEFER).
        packed = PackedMachine(config, structural_defer=())
        reference = build_machine(config, "reference")

        def assert_identical():
            assert snapshot_diff(collect(reference), collect(packed)) == []

        return packed, reference, assert_identical

    def drive(self, machines, accesses):
        for core, vaddr, is_write in accesses:
            for machine in machines:
                machine.perform_access(core, 0, vaddr, is_write)

    def test_pf_hit_read_and_write_run_fast(self):
        packed, reference, assert_identical = self.make_machines()
        base = self.BASE
        # Core 0 homes the lines; remote reads then a remote write hit the
        # probe filter (supplier forward, sharer fan-out, invalidations).
        accesses = [(0, base + line * 64, False) for line in range(4)]
        accesses += [(core, base + line * 64, False) for core in (1, 2) for line in range(4)]
        accesses += [(3, base + line * 64, True) for line in range(4)]
        self.drive((packed, reference), accesses)
        assert packed.fast_misses > 0
        assert packed.deferred_misses == 0
        assert packed.nodes[0].probe_filter.hits > 0
        assert_identical()

    def test_allarm_local_miss_allocates_nothing_and_runs_fast(self):
        packed, reference, assert_identical = self.make_machines(policy="allarm")
        base = self.BASE
        self.drive(
            (packed, reference),
            [(0, base + line * 64, line % 3 == 0) for line in range(8)],
        )
        # ALLARM local misses: serviced fast, no directory state at all.
        assert packed.fast_misses == 8
        assert packed.deferred_misses == 0
        assert packed.nodes[0].probe_filter.allocations == 0
        assert packed.nodes[0].probe_filter.occupancy() == 0
        assert_identical()

    def test_pf_eviction_runs_fast(self):
        # pf_coverage=1024 -> 4 sets of 4 ways; stride-256 lines all hash
        # to set 0, so the fifth remote allocation must evict — on the
        # fast path, with the full invalidation fan-out packed.
        packed, reference, assert_identical = self.make_machines(pf_coverage=1024)
        base = self.BASE
        self.drive((packed, reference), [(0, base, False)])  # home the page
        self.drive(
            (packed, reference),
            [(1, base + line * 256, False) for line in range(6)],
        )
        assert packed.deferred_misses == 0
        assert packed.fast_misses > 0
        assert packed.nodes[0].probe_filter.evictions > 0
        assert packed.nodes[0].probe_filter.eviction_invalidations > 0
        assert_identical()

    def test_forced_pf_eviction_deferral_is_counted_and_identical(self):
        from repro.stats.compare import snapshot_diff
        from repro.stats.snapshot import collect
        from repro.system.fastcore import PackedMachine

        packed, reference, _ = self.make_machines(pf_coverage=1024)
        forced = PackedMachine(packed.config, structural_defer="pf_eviction")
        base = self.BASE
        accesses = [(0, base, False)]
        accesses += [(1, base + line * 256, False) for line in range(6)]
        self.drive((packed, reference, forced), accesses)
        # The forced machine took the reference slow path for every
        # eviction-causing allocation, counted it per cause, and still
        # produced the bit-identical snapshot.
        assert forced.deferred_misses > 0
        assert forced.deferred_miss_causes["pf_eviction"] == forced.deferred_misses
        assert forced.deferred_miss_causes["l2_notification"] == 0
        assert packed.deferred_misses == 0
        assert snapshot_diff(collect(packed), collect(forced)) == []
        assert snapshot_diff(collect(reference), collect(forced)) == []

    def test_forced_l2_notification_deferral_is_counted_and_identical(self):
        from repro.stats.compare import snapshot_diff
        from repro.stats.snapshot import collect
        from repro.system.fastcore import PackedMachine

        packed, reference, _ = self.make_machines(pf_coverage=8192, mode="owned")
        forced = PackedMachine(packed.config, structural_defer=["l2_notification"])
        base = self.BASE
        # Dirty lines, then enough conflicting fills to evict them from
        # the tiny L2: every notification crosses the deferral point.
        accesses = [(0, base + line * 64, True) for line in range(8)]
        accesses += [(0, base + 2048 + line * 64, False) for line in range(32)]
        self.drive((packed, reference, forced), accesses)
        assert forced.deferred_miss_causes["l2_notification"] > 0
        assert forced.deferred_misses == forced.deferred_miss_causes["l2_notification"]
        assert forced.miss_path_summary()["deferred_by_cause"] == (
            forced.deferred_miss_causes
        )
        assert packed.deferred_misses == 0
        assert snapshot_diff(collect(packed), collect(forced)) == []
        assert snapshot_diff(collect(reference), collect(forced)) == []

    def test_unknown_structural_defer_cause_rejected(self, monkeypatch):
        from repro.system.fastcore import (
            STRUCTURAL_DEFER_CAUSES,
            resolve_structural_defer,
        )

        with pytest.raises(ConfigurationError, match="deferral cause"):
            resolve_structural_defer("pf_evictoin")
        assert resolve_structural_defer("all") == frozenset(STRUCTURAL_DEFER_CAUSES)
        monkeypatch.delenv("REPRO_PACKED_DEFER", raising=False)
        assert resolve_structural_defer(None) == frozenset()
        monkeypatch.setenv("REPRO_PACKED_DEFER", "l2_notification")
        assert resolve_structural_defer(None) == {"l2_notification"}

    def test_mshr_merge_on_inflight_miss(self):
        from repro.coherence.transactions import RequestKind

        packed, reference, assert_identical = self.make_machines()
        vaddr = self.BASE + 0x40
        for machine in (packed, reference):
            # Pre-register the line as an in-flight miss (what a bursty
            # trace-replay harness would do), then let the miss complete:
            # the service must merge into the existing entry and retire it.
            paddr = machine.allocator.translate(0, 0, vaddr)
            line = paddr & ~(machine.config.line_size - 1)
            mshrs = machine.nodes[0].caches.mshrs
            mshrs.allocate(line, RequestKind.READ)
            machine.perform_access(0, 0, vaddr, True)
            assert mshrs.stats.merges == 1
            assert mshrs.stats.allocations == 1
            assert mshrs.stats.releases == 1
            assert mshrs.occupancy == 0
        assert packed.fast_misses == 1
        assert (
            packed.nodes[0].caches.mshrs.stats.__dict__
            == reference.nodes[0].caches.mshrs.stats.__dict__
        )
        assert_identical()

    def test_mshr_slot_held_for_exactly_the_miss_duration(self):
        packed, _, _ = self.make_machines()
        mshrs = packed.nodes[1].caches.mshrs
        packed.perform_access(1, 0, self.BASE, False)
        assert mshrs.stats.allocations == 1
        assert mshrs.stats.releases == 1
        assert mshrs.stats.peak_occupancy == 1
        assert mshrs.occupancy == 0

    @pytest.mark.parametrize("mode", ["none", "dirty", "owned"])
    def test_eviction_notification_corner_modes_run_fast(self, mode):
        # Dirty the lines, then stream enough conflicting lines through
        # the tiny L2 to evict them — every notification flavour (silent
        # drop, writeback-only, owned notice) crosses the fast-path fill.
        packed, reference, assert_identical = self.make_machines(
            pf_coverage=8192, mode=mode
        )
        base = self.BASE
        accesses = [(0, base + line * 64, True) for line in range(8)]
        accesses += [(0, base + 2048 + line * 64, False) for line in range(32)]
        accesses += [(0, base + line * 64, False) for line in range(8)]
        self.drive((packed, reference), accesses)
        assert packed.deferred_misses == 0
        assert packed.fast_misses > 0
        assert packed.nodes[0].caches.l2.evictions > 0
        assert_identical()


class TestPackedCacheConstruction:
    def test_validation_matches_reference(self):
        for bad in (
            dict(size_bytes=0, associativity=4),
            dict(size_bytes=2048, associativity=0),
            dict(size_bytes=2048, associativity=4, line_size=48),
            dict(size_bytes=2000, associativity=4),
            dict(size_bytes=3 * 64 * 4, associativity=4),
        ):
            kwargs = dict(line_size=64, replacement="lru")
            kwargs.update(bad)
            with pytest.raises(ConfigurationError):
                Cache("bad", **kwargs)
            with pytest.raises(ConfigurationError):
                PackedCache("bad", **kwargs)

    def test_plru_requires_power_of_two_associativity(self):
        with pytest.raises(ConfigurationError):
            PackedCache("bad", 64 * 3 * 8, 3, replacement="plru")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            PackedCache("bad", 2048, 4, replacement="mru")

    def test_layout_contract_attributes_match_reference(self):
        # The memoized decomposition attributes are the layout contract
        # both engines share.
        reference, packed = make_pair("lru")
        assert reference.line_shift == packed.line_shift
        assert reference.set_mask == packed.set_mask
        for address in (0x0, 0x1240, 0xFFFF40):
            assert reference.set_index(address) == packed.set_index(address)
