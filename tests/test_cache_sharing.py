"""Concurrent multi-process sharing of one snapshot-cache directory.

The serve layer's shard deployment has N server processes (plus any
direct :class:`SweepExecutor` users) pointed at one ``cache_dir``.  The
contract that makes that safe: cache writes are atomic and digest-
stamped, so a racing reader sees either a complete verified entry or a
miss — never a torn one — and damaged entries are quarantined by
whichever process trips over them first, without disturbing the rest.

These tests race real processes at one directory and assert every
returned snapshot is bit-identical to a serial fault-free run.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from pathlib import Path

import pytest

from repro.analysis.executor import SnapshotCache, SweepExecutor
from repro.analysis.plan import ExperimentSettings, RunSpec
from repro.serve import shard_of
from repro.stats.compare import snapshot_diff
from repro.stats.snapshot import MachineSnapshot

TINY = ExperimentSettings(scale=16, accesses=1500, multiprocess_accesses=800)


def _specs():
    return [
        RunSpec(benchmark, policy, settings=TINY)
        for benchmark in ("barnes", "hotspot")
        for policy in ("baseline", "allarm")
    ]


def _run_all(args):
    """Worker: resolve every spec through a private executor on the
    shared cache; return ``{digest: snapshot_dict}``."""
    cache_dir, specs = args
    executor = SweepExecutor(cache_dir=cache_dir)
    return {
        spec.digest(): executor.run(spec).to_dict() for spec in specs
    }


def _run_owned_shard(args):
    """Worker: execute only the specs this shard owns, then read back
    the full set (warm reads cross shard boundaries)."""
    cache_dir, specs, shard_index, shard_count = args
    executor = SweepExecutor(cache_dir=cache_dir)
    for spec in specs:
        if shard_of(spec, shard_count) == shard_index:
            executor.run(spec)
    # Every spec is eventually readable here, whoever executed it.
    observed = {}
    for spec in specs:
        found = executor.lookup(spec)
        if found is not None:
            observed[spec.digest()] = found[0].to_dict()
    return observed


def _baseline(specs):
    executor = SweepExecutor()
    return {spec.digest(): executor.run(spec) for spec in specs}


def _assert_identical(baseline, observed):
    for digest, snapshot_dict in observed.items():
        rebuilt = MachineSnapshot.from_dict(snapshot_dict)
        assert snapshot_diff(baseline[digest], rebuilt) == []


def _no_torn_entries(cache_dir: Path) -> bool:
    """Every .json entry in the cache parses and carries a digest."""
    cache = SnapshotCache(cache_dir)
    for path in Path(cache_dir).glob("*/*.json"):
        data = json.loads(path.read_text())
        if "sha256" not in data or "snapshot" not in data:
            return False
    return True


@pytest.mark.parametrize("processes", [2, 4])
def test_racing_executors_stay_bit_identical(tmp_path, processes):
    """N processes race store/load on one cold cache; all agree."""
    specs = _specs()
    baseline = _baseline(specs)
    cache_dir = tmp_path / "shared"

    with multiprocessing.Pool(processes) as pool:
        results = pool.map(
            _run_all, [(str(cache_dir), specs)] * processes
        )

    assert len(results) == processes
    for observed in results:
        assert len(observed) == len(specs)
        _assert_identical(baseline, observed)
    assert _no_torn_entries(cache_dir)
    # The racing writers may each have executed some specs (last atomic
    # write wins, all writes identical) but the cache holds exactly one
    # entry per spec, never duplicates or partials.
    assert SnapshotCache(cache_dir).entry_count() == len(specs)


def test_sharded_executors_partition_work_and_share_results(tmp_path):
    """Two shard processes split executions yet read the whole grid."""
    specs = _specs()
    baseline = _baseline(specs)
    shard_count = 2
    cache_dir = tmp_path / "shared"
    assert {shard_of(spec, shard_count) for spec in specs} == {0, 1}, \
        "spec set must cover both shards for this test to bite"

    with multiprocessing.Pool(shard_count) as pool:
        results = pool.map(
            _run_owned_shard,
            [
                (str(cache_dir), specs, index, shard_count)
                for index in range(shard_count)
            ],
        )

    # Each shard certainly resolved its own specs; between the two of
    # them the full grid exists exactly once on disk, bit-identical.
    for observed in results:
        _assert_identical(baseline, observed)
    cache = SnapshotCache(cache_dir)
    assert cache.entry_count() == len(specs)
    for spec in specs:
        loaded = cache.load(spec)
        assert loaded is not None
        assert snapshot_diff(baseline[spec.digest()], loaded) == []


def test_racing_loaders_quarantine_a_torn_entry_once(tmp_path):
    """A torn entry is healed under concurrency: one quarantine, no
    process ever serves the damaged bytes."""
    specs = _specs()[:1]
    baseline = _baseline(specs)
    cache_dir = tmp_path / "shared"

    # Seed the cache, then tear the entry the way a cut-short write
    # would have (truncated JSON).
    seeder = SweepExecutor(cache_dir=cache_dir)
    seeder.run(specs[0])
    entry = SnapshotCache(cache_dir).path_for(specs[0])
    entry.write_text(entry.read_text()[: entry.stat().st_size // 2])

    with multiprocessing.Pool(4) as pool:
        results = pool.map(_run_all, [(str(cache_dir), specs)] * 4)

    for observed in results:
        _assert_identical(baseline, observed)
    # Exactly one process won the quarantine race; the forensic copy
    # exists and the healed entry parses and verifies.
    corrupt = list(Path(cache_dir).glob("*/*.corrupt"))
    assert len(corrupt) == 1
    healed = SnapshotCache(cache_dir).load(specs[0])
    assert healed is not None
    assert snapshot_diff(baseline[specs[0].digest()], healed) == []


def test_atomic_store_never_exposes_partial_files(tmp_path):
    """A reader polling during a store sees only absent-or-complete."""
    spec = _specs()[0]
    snapshot = SweepExecutor().run(spec)
    cache_dir = tmp_path / "shared"
    cache = SnapshotCache(cache_dir)

    # Store repeatedly while scanning the directory for temp files that
    # a non-atomic writer would leak into the reader's glob.
    for _ in range(5):
        cache.store(spec, snapshot)
        visible = list(Path(cache_dir).glob("*/*.json"))
        assert len(visible) == 1
        data = json.loads(visible[0].read_text())
        assert MachineSnapshot.from_dict(data["snapshot"]) is not None
    reread = cache.load(spec)
    assert reread is not None and snapshot_diff(snapshot, reread) == []
