"""Cross-engine verification: packed and reference snapshots are bit-identical.

The packed engine (:mod:`repro.system.fastcore`) replaces the per-access
object-graph walk with flat-array arithmetic; its correctness contract
is that a :class:`~repro.stats.snapshot.MachineSnapshot` collected after
any run is **bit-identical** to the reference engine's — every counter,
every per-node statistic, every message-type count, byte for byte in
the serialized JSON.

Three layers enforce it here:

* hypothesis property tests drive random access streams through both
  engines across the policy × probe-filter-size × eviction-mode grid on
  a deliberately tiny (constantly thrashing) machine;
* a workload-family smoke runs every registered benchmark family under
  both policies on both engines via the real ``RunSpec`` path;
* cache-identity tests pin that the two engines can never alias each
  other in the snapshot cache.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.executor import cache_key, execute_run_spec
from repro.analysis.plan import ExperimentSettings, RunSpec
from repro.errors import ConfigurationError, SimulationError
from repro.stats.compare import assert_snapshots_identical, snapshot_diff
from repro.system.config import (
    CoreConfig,
    DirectoryConfig,
    NetworkConfig,
    SystemConfig,
)
from repro.system.fastcore import (
    DEFAULT_ENGINE,
    ENGINES,
    PackedMachine,
    build_machine,
    resolve_engine,
)
from repro.system.machine import Machine
from repro.system.simulator import Simulator, simulate
from repro.trace.record import AccessRecord, AccessType
from repro.workloads.registry import MICROBENCH_FAMILIES, PAPER_BENCHMARKS

CORES = 4
PAGES = 6
LINES_PER_PAGE = 4


def tiny_config(
    policy: str,
    eviction_notification: str = "dirty",
    pf_coverage: int = 2048,
    replacement: str = "lru",
) -> SystemConfig:
    """A 4-node machine small enough that every structure thrashes."""
    return SystemConfig(
        core_count=CORES,
        core=CoreConfig(l1i_size=1024, l1d_size=1024, l2_size=2048, replacement=replacement),
        directory=DirectoryConfig(
            probe_filter_coverage=pf_coverage,
            memory_bytes=64 * 1024 * 1024,
            eviction_notification=eviction_notification,
        ),
        network=NetworkConfig(mesh_width=2, mesh_height=2),
        directory_policy=policy,
    )


def stream_records(stream):
    """Materialise a hypothesis access tuple stream as AccessRecords."""
    base = 0x4000_0000
    records = []
    for core, page, line, kind in stream:
        records.append(
            AccessRecord(
                core=core,
                vaddr=base + page * 4096 + line * 64,
                access_type=kind,
                process_id=0,
            )
        )
    return records


def run_both_engines(config: SystemConfig, records):
    reference = Simulator(config, engine="reference").run(records, "x").snapshot
    packed = Simulator(config, engine="packed").run(records, "x").snapshot
    return reference, packed


access_strategy = st.tuples(
    st.integers(min_value=0, max_value=CORES - 1),
    st.integers(min_value=0, max_value=PAGES - 1),
    st.integers(min_value=0, max_value=LINES_PER_PAGE - 1),
    st.sampled_from(
        [AccessType.READ, AccessType.READ, AccessType.WRITE, AccessType.INSTRUCTION]
    ),
)

stream_strategy = st.lists(access_strategy, min_size=1, max_size=150)


class TestRandomStreamsAreBitIdentical:
    @settings(max_examples=30, deadline=None)
    @given(stream=stream_strategy)
    @pytest.mark.parametrize("policy", ["baseline", "allarm"])
    def test_policy_grid(self, policy, stream):
        reference, packed = run_both_engines(
            tiny_config(policy), stream_records(stream)
        )
        assert snapshot_diff(reference, packed) == []
        assert reference.to_json() == packed.to_json()

    @settings(max_examples=12, deadline=None)
    @given(stream=stream_strategy)
    @pytest.mark.parametrize("mode", ["none", "dirty", "owned"])
    @pytest.mark.parametrize("policy", ["baseline", "allarm"])
    def test_eviction_mode_grid(self, policy, mode, stream):
        config = tiny_config(policy, eviction_notification=mode)
        reference, packed = run_both_engines(config, stream_records(stream))
        assert snapshot_diff(reference, packed) == []

    @settings(max_examples=12, deadline=None)
    @given(stream=stream_strategy)
    @pytest.mark.parametrize("pf_coverage", [1024, 2048, 8192])
    def test_probe_filter_size_grid(self, pf_coverage, stream):
        config = tiny_config("allarm", pf_coverage=pf_coverage)
        reference, packed = run_both_engines(config, stream_records(stream))
        assert snapshot_diff(reference, packed) == []

    @settings(max_examples=12, deadline=None)
    @given(stream=stream_strategy)
    @pytest.mark.parametrize("replacement", ["plru", "random"])
    def test_replacement_policy_grid(self, replacement, stream):
        config = tiny_config("baseline", replacement=replacement)
        reference, packed = run_both_engines(config, stream_records(stream))
        assert snapshot_diff(reference, packed) == []

    @settings(max_examples=10, deadline=None)
    @given(stream=stream_strategy)
    def test_multiprocess_streams(self, stream):
        # Distinct processes map the same virtual pages to distinct
        # frames; exercises the NUMA remap path under both engines.
        base = 0x4000_0000
        records = [
            AccessRecord(
                core=core,
                vaddr=base + page * 4096 + line * 64,
                access_type=kind,
                process_id=index % 2,
            )
            for index, (core, page, line, kind) in enumerate(stream)
        ]
        reference, packed = run_both_engines(tiny_config("allarm"), records)
        assert snapshot_diff(reference, packed) == []


#: Small settings for the family smoke: enough accesses to overflow the
#: scaled-down caches, small enough to keep the full grid fast.
SMOKE = ExperimentSettings(scale=16, accesses=2500, multiprocess_accesses=1500, seed=0)


class TestWorkloadFamilySmoke:
    """One run per registered family × policy, both engines, via RunSpec."""

    # Note: the parametrize argument is named "family" (not "benchmark")
    # because pytest-benchmark reserves the latter as a fixture name.
    @pytest.mark.parametrize("family", PAPER_BENCHMARKS + MICROBENCH_FAMILIES)
    @pytest.mark.parametrize("policy", ["baseline", "allarm"])
    def test_family_is_bit_identical(self, family, policy):
        spec = RunSpec(family, policy, settings=SMOKE)
        packed = execute_run_spec(spec.with_engine("packed"))
        reference = execute_run_spec(spec.with_engine("reference"))
        assert_snapshots_identical(
            reference, packed, context=f"{family}/{policy}"
        )

    def test_multiprocess_layout_is_bit_identical(self):
        spec = RunSpec("barnes", "allarm", layout="2p", settings=SMOKE)
        packed = execute_run_spec(spec.with_engine("packed"))
        reference = execute_run_spec(spec.with_engine("reference"))
        assert_snapshots_identical(reference, packed, context="barnes-2p")


class TestEngineSelection:
    def test_resolve_engine_defaults_and_validates(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine(None) == DEFAULT_ENGINE
        assert resolve_engine("reference") == "reference"
        with pytest.raises(ConfigurationError, match="unknown simulation engine"):
            resolve_engine("warp")
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        assert resolve_engine(None) == "reference"
        monkeypatch.setenv("REPRO_ENGINE", "bogus")
        with pytest.raises(ConfigurationError):
            resolve_engine(None)

    def test_build_machine_returns_expected_types(self):
        config = tiny_config("baseline")
        assert type(build_machine(config, "reference")) is Machine
        assert type(build_machine(config, "packed")) is PackedMachine

    def test_simulator_records_engine(self):
        records = stream_records([(0, 0, 0, AccessType.READ)])
        result = simulate(tiny_config("baseline"), records, engine="reference")
        assert result.engine == "reference"
        result = simulate(tiny_config("baseline"), records)
        assert result.engine == DEFAULT_ENGINE

    def test_runspec_rejects_unknown_engine(self):
        with pytest.raises(ConfigurationError, match="unknown simulation engine"):
            RunSpec("barnes", "allarm", settings=SMOKE, engine="turbo")

    def test_runspec_default_engine_honours_environment(self, monkeypatch):
        # The default must resolve at construction time, not import time,
        # so REPRO_ENGINE steers plans built without an explicit --engine.
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert RunSpec("barnes", "allarm", settings=SMOKE).engine == DEFAULT_ENGINE
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        assert RunSpec("barnes", "allarm", settings=SMOKE).engine == "reference"
        monkeypatch.setenv("REPRO_ENGINE", "bogus")
        with pytest.raises(ConfigurationError, match="unknown simulation engine"):
            RunSpec("barnes", "allarm", settings=SMOKE)


class TestEngineCacheIdentity:
    """Fast and reference snapshots must never collide in the caches."""

    def test_cache_keys_differ_by_engine(self):
        spec = RunSpec("barnes", "allarm", settings=SMOKE)
        keys = {cache_key(spec.with_engine(engine)) for engine in ENGINES}
        assert len(keys) == len(ENGINES)

    def test_engine_is_part_of_spec_identity(self):
        spec = RunSpec("barnes", "allarm", settings=SMOKE)
        other = spec.with_engine("reference")
        assert spec != other
        assert spec.digest() != other.digest()
        assert json.loads(spec.cache_token())["engine"] == DEFAULT_ENGINE
        assert spec.describe()["engine"] == DEFAULT_ENGINE
        # The workload stream identity must NOT depend on the engine:
        # both engines replay the identical recorded trace.
        assert spec.stream_digest() == other.stream_digest()

    def test_disk_cache_isolates_engines(self, tmp_path):
        from repro.analysis.executor import SnapshotCache

        spec = RunSpec("barnes", "allarm", settings=SMOKE)
        cache = SnapshotCache(tmp_path)
        snapshot = execute_run_spec(spec)
        cache.store(spec, snapshot)
        assert cache.load(spec) is not None
        assert cache.load(spec.with_engine("reference")) is None


class TestDifferStrength:
    """snapshot_diff must actually catch divergences, not pass vacuously."""

    def test_detects_scalar_and_node_divergence(self):
        records = stream_records(
            [(0, 0, 0, AccessType.READ), (1, 0, 0, AccessType.WRITE)] * 30
        )
        reference, packed = run_both_engines(tiny_config("baseline"), records)
        assert snapshot_diff(reference, packed) == []
        packed.l2_misses += 1
        assert any("l2_misses" in diff for diff in snapshot_diff(reference, packed))
        packed.l2_misses -= 1
        packed.nodes[2].dram_reads += 5
        diffs = snapshot_diff(reference, packed)
        assert any(diff.startswith("nodes[2].dram_reads") for diff in diffs)
        with pytest.raises(SimulationError, match="snapshots differ"):
            assert_snapshots_identical(reference, packed, context="strength")
