"""The sweep service: wire protocol, coalescing, and the server itself.

The load-bearing claims under test:

- K concurrent requests for one cold spec cause exactly **one**
  execution (``coalescer.started == 1``), and every response carries a
  snapshot **bit-identical** (``snapshot_diff == []``) to a direct
  :class:`SweepExecutor` run of the same spec;
- warm requests are answered from the memory/disk cache tiers without
  executing;
- cold requests for a spec owned by another shard are refused with a
  421 while warm ones are served regardless of ownership;
- a fault injected at the ``serve.request`` site turns into a 500 for
  that request and the server keeps serving.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro import faults
from repro.analysis.executor import SweepExecutor
from repro.analysis.plan import ExperimentSettings, RunSpec
from repro.errors import ConfigurationError, ServeError
from repro.serve import (
    STATUS_WRONG_SHARD,
    BackgroundServer,
    RunCoalescer,
    ServeClient,
    SweepServer,
    run_load,
    shard_of,
    spec_from_wire,
    spec_to_wire,
    specs_from_wire,
)
from repro.serve.protocol import decode_events, encode_event
from repro.stats.compare import snapshot_diff
from repro.stats.snapshot import MachineSnapshot

#: Deliberately tiny settings so service tests stay fast.
TINY = ExperimentSettings(scale=16, accesses=1500, multiprocess_accesses=800)


@pytest.fixture(autouse=True)
def _isolated_faults():
    faults.clear()
    yield
    faults.clear()


def _spec(benchmark="barnes", policy="allarm", **kwargs):
    return RunSpec(benchmark, policy, settings=TINY, **kwargs)


@pytest.fixture
def server(tmp_path):
    """One background server over a fresh cache; yields the running server."""
    instance = SweepServer(
        executor=SweepExecutor(cache_dir=tmp_path / "cache"), parallel=4
    )
    with BackgroundServer(instance):
        yield instance


@pytest.fixture
def client(server):
    with ServeClient(server.host, server.port) as connected:
        yield connected


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
class TestWireProtocol:
    def test_spec_round_trips(self):
        spec = _spec(pf_size=256 * 1024, layout="2p", engine="batched")
        assert spec_from_wire(spec_to_wire(spec)) == spec
        assert spec_from_wire(spec_to_wire(spec)).digest() == spec.digest()

    def test_settings_survive_the_wire(self):
        wire = spec_to_wire(_spec())
        rebuilt = spec_from_wire(wire)
        assert rebuilt.settings == TINY

    def test_defaults_apply_when_fields_are_omitted(self):
        rebuilt = spec_from_wire({"benchmark": "barnes", "policy": "allarm"})
        assert rebuilt == RunSpec("barnes", "allarm")

    def test_trace_source_is_rejected(self):
        wire = spec_to_wire(_spec())
        wire["trace_source"] = "/etc/passwd"
        with pytest.raises(ServeError, match="trace_source"):
            spec_from_wire(wire)

    def test_unknown_fields_are_rejected(self):
        wire = spec_to_wire(_spec())
        wire["pf_sise"] = 1024  # the typo must 400, not silently default
        with pytest.raises(ServeError, match="pf_sise"):
            spec_from_wire(wire)

    def test_unknown_settings_fields_are_rejected(self):
        wire = spec_to_wire(_spec())
        wire["settings"]["sede"] = 1
        with pytest.raises(ServeError, match="sede"):
            spec_from_wire(wire)

    def test_unknown_benchmark_maps_to_serve_error(self):
        with pytest.raises(ServeError, match="unknown benchmark"):
            spec_from_wire({"benchmark": "nope", "policy": "allarm"})

    @pytest.mark.parametrize("bad", [None, [], "spec", 7])
    def test_non_object_specs_are_rejected(self, bad):
        with pytest.raises(ServeError):
            spec_from_wire(bad)

    def test_specs_from_wire_requires_a_non_empty_list(self):
        with pytest.raises(ServeError):
            specs_from_wire([])
        with pytest.raises(ServeError):
            specs_from_wire({"benchmark": "barnes"})

    def test_events_round_trip(self):
        events = [{"event": "accepted", "runs": 2}, {"event": "summary"}]
        lines = [encode_event(event) for event in events]
        assert list(decode_events(lines)) == events

    def test_malformed_event_lines_fail_loudly(self):
        with pytest.raises(ServeError):
            list(decode_events([b"not json\n"]))
        with pytest.raises(ServeError):
            list(decode_events([b'{"no": "event-field"}\n']))

    def test_shard_of_is_stable_and_in_range(self):
        spec = _spec()
        owner = shard_of(spec, 4)
        assert 0 <= owner < 4
        assert shard_of(spec, 4) == owner  # pure function of the digest
        assert shard_of(spec, 1) == 0
        with pytest.raises(ConfigurationError):
            shard_of(spec, 0)

    def test_shard_routing_derives_from_spec_identity(self):
        # Routing must survive redeploys: it hashes digest() — a pure
        # function of the spec's content — so every process (and every
        # code version) computes the same owner for the same spec.
        spec = _spec()
        assert shard_of(spec, 8) == int(spec.digest()[:16], 16) % 8


# ----------------------------------------------------------------------
# Coalescer
# ----------------------------------------------------------------------
class TestRunCoalescer:
    def test_identical_specs_share_one_execution(self):
        async def scenario():
            coalescer = RunCoalescer()
            launched = 0
            release = asyncio.Event()

            async def runner():
                nonlocal launched
                launched += 1
                await release.wait()
                return "snapshot"

            spec = _spec()
            futures = [coalescer.submit(spec, runner) for _ in range(5)]
            assert coalescer.in_flight == 1
            assert [started for _f, started in futures] == [True] + [False] * 4
            release.set()
            results = await asyncio.gather(
                *[coalescer.wait(f) for f, _s in futures]
            )
            assert results == ["snapshot"] * 5
            assert coalescer.started == 1 and coalescer.coalesced == 4
            assert coalescer.in_flight == 0

        asyncio.run(scenario())

    def test_distinct_specs_do_not_coalesce(self):
        async def scenario():
            coalescer = RunCoalescer()

            async def runner():
                return "done"

            _f1, started1 = coalescer.submit(_spec("barnes"), runner)
            _f2, started2 = coalescer.submit(_spec("hotspot"), runner)
            assert started1 and started2
            assert coalescer.started == 2 and coalescer.coalesced == 0

        asyncio.run(scenario())

    def test_completion_clears_the_inflight_slot(self):
        async def scenario():
            coalescer = RunCoalescer()

            async def runner():
                return 1

            spec = _spec()
            future, _started = coalescer.submit(spec, runner)
            assert coalescer.is_inflight(spec)
            await coalescer.wait(future)
            assert not coalescer.is_inflight(spec)
            # A later request is a fresh execution, not a stale join.
            _f, started = coalescer.submit(spec, runner)
            assert started and coalescer.started == 2

        asyncio.run(scenario())

    def test_failures_propagate_to_every_waiter(self):
        async def scenario():
            coalescer = RunCoalescer()

            async def runner():
                raise RuntimeError("boom")

            spec = _spec()
            first, _ = coalescer.submit(spec, runner)
            second, _ = coalescer.submit(spec, runner)
            for future in (first, second):
                with pytest.raises(RuntimeError, match="boom"):
                    await coalescer.wait(future)
            assert not coalescer.is_inflight(spec)

        asyncio.run(scenario())

    def test_cancelled_waiter_does_not_cancel_the_execution(self):
        async def scenario():
            coalescer = RunCoalescer()
            release = asyncio.Event()

            async def runner():
                await release.wait()
                return "survived"

            spec = _spec()
            future, _ = coalescer.submit(spec, runner)
            waiter = asyncio.ensure_future(coalescer.wait(future))
            await asyncio.sleep(0)
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            # The shared execution is still alive; a new waiter gets it.
            release.set()
            assert await coalescer.wait(future) == "survived"

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Server integration (real sockets, background event loop)
# ----------------------------------------------------------------------
class TestServerBasics:
    def test_health(self, server, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["shard_index"] == 0 and health["shard_count"] == 1

    def test_cold_run_executes_then_serves_warm(self, server, client):
        spec = _spec()
        direct = SweepExecutor().run(spec)

        cold = client.run(spec)
        assert cold.source == "executed"
        rebuilt = MachineSnapshot.from_dict(cold.snapshot)
        assert snapshot_diff(direct, rebuilt) == []

        warm = client.run(spec)
        assert warm.source == "memory"
        assert warm.snapshot_digest() == cold.snapshot_digest()

        stats = client.stats()
        assert stats["executed"] == 1 and stats["warm_memory"] == 1

    def test_disk_tier_serves_other_processes_work(self, tmp_path):
        spec = _spec()
        cache_dir = tmp_path / "shared-cache"
        direct = SweepExecutor(cache_dir=cache_dir).run(spec)

        # A fresh server over the same cache dir: the entry is on disk,
        # not in its memory tier — served warm without executing.
        instance = SweepServer(executor=SweepExecutor(cache_dir=cache_dir))
        with BackgroundServer(instance):
            with ServeClient(instance.host, instance.port) as client:
                response = client.run(spec)
        assert response.source == "disk"
        assert instance.stats.executed == 0
        rebuilt = MachineSnapshot.from_dict(response.snapshot)
        assert snapshot_diff(direct, rebuilt) == []

    def test_unknown_route_is_404_and_connection_survives(self, server, client):
        with pytest.raises(ServeError) as info:
            client._json("GET", "/nope")
        assert info.value.status == 404
        assert client.health()["status"] == "ok"  # same connection still up

    def test_bad_wire_spec_is_400(self, server, client):
        with pytest.raises(ServeError) as info:
            client._json("POST", "/run", {"spec": {"benchmark": "barnes"}})
        assert info.value.status == 400
        assert client.stats()["bad_requests"] == 1

    def test_wire_schema_mismatch_is_refused(self, server, client):
        with pytest.raises(ServeError, match="wire schema"):
            client._json("POST", "/run", {
                "wire_schema": 99, "spec": spec_to_wire(_spec()),
            })


class TestCoalescingOverHttp:
    def test_concurrent_duplicates_execute_once_bit_identical(self, server):
        """The tentpole claim: K requests, one execution, one snapshot."""
        spec = _spec()
        direct = SweepExecutor().run(spec)
        duplicates = 6

        responses = []
        errors = []
        barrier = threading.Barrier(duplicates)

        def issue():
            try:
                with ServeClient(server.host, server.port) as client:
                    barrier.wait(timeout=10)
                    responses.append(client.run(spec))
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=issue) for _ in range(duplicates)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(responses) == duplicates

        # Exactly one execution; every duplicate coalesced or (if it
        # arrived after completion) hit the warm tier.
        assert server.coalescer.started == 1
        assert server.stats.executed == 1
        assert server.stats.coalesced + server.stats.warm_memory \
            == duplicates - 1

        # Every response is bit-identical to the direct executor run.
        for response in responses:
            rebuilt = MachineSnapshot.from_dict(response.snapshot)
            assert snapshot_diff(direct, rebuilt) == []

    def test_run_load_reports_the_same_invariant(self, server):
        report = run_load(
            server.host, server.port, [_spec()], requests=5, concurrency=5
        )
        assert report.ok == 5 and report.errors == 0
        assert report.executed == 1
        assert report.coalesced + report.warm_hits == 4
        assert report.bit_identical()
        assert report.throughput_rps > 0
        assert report.p99_ms >= report.p50_ms >= 0


class TestStreaming:
    def test_cold_stream_event_sequence(self, server, client):
        events = client.run_streaming(_spec())
        kinds = [event["event"] for event in events]
        assert kinds == ["accepted", "scheduled", "completed"]
        assert events[0]["digest"] == _spec().digest()
        assert events[-1]["source"] == "executed"
        assert "snapshot" in events[-1]

    def test_warm_stream_event_sequence(self, server, client):
        client.run(_spec())
        events = client.run_streaming(_spec())
        kinds = [event["event"] for event in events]
        assert kinds == ["accepted", "warm", "completed"]
        assert events[1]["source"] == "memory"

    def test_sweep_streams_per_run_completions(self, server, client):
        specs = [_spec("barnes"), _spec("hotspot")]
        events = client.sweep(specs)
        kinds = [event["event"] for event in events]
        assert kinds[0] == "accepted" and kinds[-1] == "summary"
        assert kinds[1:-1].count("completed") == 2
        summary = events[-1]
        assert summary["runs"] == 2
        assert summary["completed"] == 2 and summary["failed"] == 0
        digests = {event["digest"] for event in events[1:-1]}
        assert digests == {spec.digest() for spec in specs}

    def test_sweep_rejects_empty_spec_list(self, server, client):
        with pytest.raises(ServeError, match="non-empty"):
            client.sweep([])


class TestSharding:
    def _specs_by_owner(self, shard_count, want_each=1):
        """One spec owned by shard 0 and one by a different shard."""
        owned, foreign = [], []
        for seed in range(64):
            spec = RunSpec(
                "barnes", "allarm",
                settings=ExperimentSettings(
                    scale=16, accesses=1500,
                    multiprocess_accesses=800, seed=seed,
                ),
            )
            bucket = owned if shard_of(spec, shard_count) == 0 else foreign
            if len(bucket) < want_each:
                bucket.append(spec)
            if len(owned) >= want_each and len(foreign) >= want_each:
                return owned, foreign
        raise AssertionError("could not find specs for both shards")

    def test_cold_foreign_spec_is_421_warm_is_served(self, tmp_path):
        owned, foreign = self._specs_by_owner(shard_count=2)
        cache_dir = tmp_path / "cache"
        instance = SweepServer(
            executor=SweepExecutor(cache_dir=cache_dir),
            shard_index=0, shard_count=2,
        )
        with BackgroundServer(instance):
            with ServeClient(instance.host, instance.port) as client:
                # Owned spec executes here.
                assert client.run(owned[0]).source == "executed"
                # Cold foreign spec: refused, with the owner named.
                with pytest.raises(ServeError) as info:
                    client.run(foreign[0])
                assert info.value.status == STATUS_WRONG_SHARD
                assert instance.stats.rejected_shard == 1
                # Another process (stand-in: a direct executor on the
                # shared cache) completes it; now this shard serves it
                # warm despite not owning it.
                SweepExecutor(cache_dir=cache_dir).run(foreign[0])
                assert client.run(foreign[0]).source == "disk"
        assert instance.stats.executed == 1

    def test_shard_validation(self):
        with pytest.raises(ConfigurationError):
            SweepServer(shard_count=0)
        with pytest.raises(ConfigurationError):
            SweepServer(shard_index=2, shard_count=2)


class TestServeFaults:
    def test_request_fault_is_500_and_server_survives(self, server, client):
        with faults.injected("serve.request crash key=/run fires=1"):
            with pytest.raises(ServeError) as info:
                client.run(_spec())
            assert info.value.status == 500
            # The very next request on a fresh connection succeeds.
            with ServeClient(server.host, server.port) as second:
                assert second.run(_spec()).source == "executed"
        assert server.stats.failures == 1

    def test_execution_failure_is_500_with_digest(self, server, client):
        with faults.injected("sweep.run crash key=#0: attempts=99"):
            with pytest.raises(ServeError) as info:
                client.run(_spec())
        assert info.value.status == 500
        assert server.stats.failures == 1
        # The failed run does not poison the server: clear the faults
        # and the same spec executes cleanly.
        faults.clear()
        assert client.run(_spec()).source == "executed"

    def test_streamed_failure_emits_failed_event(self, server, client):
        with faults.injected("sweep.run crash key=#0: attempts=99"):
            events = client.run_streaming(_spec())
        kinds = [event["event"] for event in events]
        assert kinds == ["accepted", "scheduled", "failed"]
        assert events[-1]["status"] == 500
