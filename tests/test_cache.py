"""Tests for replacement policies, the set-associative cache and MSHRs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.cache import Cache
from repro.cache.mshr import MshrFile
from repro.cache.replacement import (
    LruPolicy,
    RandomPolicy,
    ReplacementPolicyFactory,
    TreePlruPolicy,
    available_policies,
    make_policy,
    validate_policy_name,
)
from repro.coherence.states import LineState
from repro.coherence.transactions import RequestKind
from repro.errors import ConfigurationError


class TestLruPolicy:
    def test_untouched_way_is_preferred_victim(self):
        policy = LruPolicy(4)
        policy.touch(0)
        policy.touch(1)
        assert policy.victim([0, 1, 2, 3]) == 2

    def test_least_recently_touched_evicted(self):
        policy = LruPolicy(4)
        for way in (0, 1, 2, 3):
            policy.touch(way)
        policy.touch(0)
        assert policy.victim([0, 1, 2, 3]) == 1

    def test_reset_forgets_recency(self):
        policy = LruPolicy(2)
        policy.touch(0)
        policy.touch(1)
        policy.reset(0)
        # Way 0 now looks untouched, making it the victim again.
        assert policy.victim([0, 1]) == 0

    def test_recency_order_exposed(self):
        policy = LruPolicy(4)
        policy.touch(2)
        policy.touch(0)
        assert policy.recency_order() == [2, 0]

    def test_victim_requires_occupancy(self):
        policy = LruPolicy(4)
        with pytest.raises(ConfigurationError):
            policy.victim([])

    def test_way_bounds_checked(self):
        policy = LruPolicy(4)
        with pytest.raises(ConfigurationError):
            policy.touch(4)


class TestTreePlruPolicy:
    def test_requires_power_of_two(self):
        with pytest.raises(ConfigurationError):
            TreePlruPolicy(3)

    def test_victim_avoids_recent_way(self):
        policy = TreePlruPolicy(4)
        policy.touch(0)
        victim = policy.victim([0, 1, 2, 3])
        assert victim != 0

    def test_full_rotation(self):
        policy = TreePlruPolicy(4)
        victims = set()
        for _ in range(8):
            victim = policy.victim([0, 1, 2, 3])
            victims.add(victim)
            policy.touch(victim)
        assert victims == {0, 1, 2, 3}


class TestRandomPolicy:
    def test_deterministic_for_seed(self):
        a = RandomPolicy(8, seed=3)
        b = RandomPolicy(8, seed=3)
        occupied = list(range(8))
        assert [a.victim(occupied) for _ in range(20)] == [
            b.victim(occupied) for _ in range(20)
        ]

    def test_victim_is_occupied(self):
        policy = RandomPolicy(8, seed=1)
        for _ in range(50):
            assert policy.victim([1, 5, 7]) in (1, 5, 7)


class TestReplacementFactory:
    def test_known_policies(self):
        assert set(available_policies()) == {"lru", "plru", "random"}

    def test_factory_builds_each(self):
        for name in available_policies():
            policy = make_policy(name, 4)
            policy.touch(1)
            assert policy.victim([0, 1, 2, 3]) in (0, 1, 2, 3)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplacementPolicyFactory("fifo")
        with pytest.raises(ConfigurationError):
            validate_policy_name("clock")

    def test_validate_defaults_to_lru(self):
        assert validate_policy_name(None) == "lru"


class TestCacheBasics:
    def make_cache(self, **kwargs) -> Cache:
        defaults = dict(name="test", size_bytes=4096, associativity=4, line_size=64)
        defaults.update(kwargs)
        return Cache(**defaults)

    def test_geometry(self):
        cache = self.make_cache()
        assert cache.set_count == 16
        assert cache.capacity_lines == 64

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make_cache(size_bytes=4000)
        with pytest.raises(ConfigurationError):
            self.make_cache(associativity=0)
        with pytest.raises(ConfigurationError):
            self.make_cache(line_size=100)

    def test_miss_then_hit(self):
        cache = self.make_cache()
        assert cache.lookup(0x100) is None
        cache.fill(0x100, LineState.EXCLUSIVE)
        line = cache.lookup(0x100)
        assert line is not None
        assert line.state is LineState.EXCLUSIVE
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_probe_does_not_touch_stats(self):
        cache = self.make_cache()
        cache.fill(0x100, LineState.SHARED)
        before = (cache.stats.hits, cache.stats.misses)
        assert cache.probe(0x100) is not None
        assert cache.probe(0x140) is None
        assert (cache.stats.hits, cache.stats.misses) == before

    def test_fill_rejects_invalid_state(self):
        cache = self.make_cache()
        with pytest.raises(ConfigurationError):
            cache.fill(0x100, LineState.INVALID)

    def test_eviction_on_conflict(self):
        cache = self.make_cache(size_bytes=1024, associativity=2)
        # 8 sets; addresses 64*8 apart share a set.
        stride = 64 * 8
        cache.fill(0 * stride, LineState.EXCLUSIVE)
        cache.fill(1 * stride, LineState.EXCLUSIVE)
        victim = cache.fill(2 * stride, LineState.EXCLUSIVE)
        assert victim is not None
        assert cache.stats.evictions == 1
        assert not cache.contains(victim.line_address)

    def test_dirty_eviction_counted(self):
        cache = self.make_cache(size_bytes=1024, associativity=2)
        stride = 64 * 8
        cache.fill(0 * stride, LineState.MODIFIED)
        cache.fill(1 * stride, LineState.EXCLUSIVE)
        victim = cache.fill(2 * stride, LineState.SHARED)
        assert victim is not None and victim.dirty
        assert cache.stats.dirty_evictions == 1

    def test_invalidate_returns_prior_state(self):
        cache = self.make_cache()
        cache.fill(0x200, LineState.MODIFIED)
        line = cache.invalidate(0x200)
        assert line is not None and line.state is LineState.MODIFIED
        assert not cache.contains(0x200)
        assert cache.invalidate(0x200) is None

    def test_set_state_upgrade_counted(self):
        cache = self.make_cache()
        cache.fill(0x200, LineState.SHARED)
        cache.set_state(0x200, LineState.MODIFIED)
        assert cache.stats.upgrades == 1

    def test_set_state_rejects_missing_line(self):
        cache = self.make_cache()
        with pytest.raises(ConfigurationError):
            cache.set_state(0x200, LineState.SHARED)

    def test_set_state_rejects_invalid(self):
        cache = self.make_cache()
        cache.fill(0x200, LineState.SHARED)
        with pytest.raises(ConfigurationError):
            cache.set_state(0x200, LineState.INVALID)

    def test_flush_returns_dirty_lines(self):
        cache = self.make_cache()
        cache.fill(0x100, LineState.MODIFIED)
        cache.fill(0x140, LineState.SHARED)
        dirty = cache.flush()
        assert [line.line_address for line in dirty] == [0x100]
        assert cache.occupancy() == 0

    def test_refill_updates_state_without_eviction(self):
        cache = self.make_cache()
        cache.fill(0x100, LineState.SHARED)
        victim = cache.fill(0x100, LineState.MODIFIED)
        assert victim is None
        assert cache.probe(0x100).state is LineState.MODIFIED
        assert cache.occupancy() == 1

    def test_miss_rate(self):
        cache = self.make_cache()
        cache.lookup(0x100)
        cache.fill(0x100, LineState.SHARED)
        cache.lookup(0x100)
        assert cache.stats.miss_rate == pytest.approx(0.5)
        assert cache.stats.summary()["miss_rate"] == pytest.approx(0.5)

    def test_as_dict_is_pure_int_counters(self):
        # Regression: as_dict() used to mix int counters with the derived
        # float miss_rate under a Dict[str, float] annotation, so snapshot
        # JSON round-trips silently coerced counter types.  Counters and
        # derived rates are now split between as_dict() and summary().
        import json

        cache = self.make_cache()
        cache.lookup(0x100)
        cache.fill(0x100, LineState.SHARED)
        cache.lookup(0x100)

        counters = cache.stats.as_dict()
        assert "miss_rate" not in counters
        assert all(type(value) is int for value in counters.values())
        round_tripped = json.loads(json.dumps(counters))
        assert round_tripped == counters
        assert all(type(value) is int for value in round_tripped.values())

        summary = cache.stats.summary()
        assert set(summary) == set(counters) | {"miss_rate"}


class TestCacheProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=300))
    def test_occupancy_never_exceeds_capacity(self, line_indices):
        cache = Cache("prop", size_bytes=2048, associativity=2, line_size=64)
        for index in line_indices:
            cache.fill(index * 64, LineState.EXCLUSIVE)
        assert cache.occupancy() <= cache.capacity_lines

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=300))
    def test_most_recent_fill_always_resident(self, line_indices):
        cache = Cache("prop", size_bytes=2048, associativity=2, line_size=64)
        for index in line_indices:
            address = index * 64
            cache.fill(address, LineState.EXCLUSIVE)
            assert cache.contains(address)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=127), st.booleans()),
            min_size=1,
            max_size=200,
        )
    )
    def test_fills_plus_evictions_balance_occupancy(self, operations):
        cache = Cache("prop", size_bytes=1024, associativity=4, line_size=64)
        for index, invalidate in operations:
            address = index * 64
            if invalidate:
                cache.invalidate(address)
            else:
                cache.fill(address, LineState.SHARED)
        expected = (
            cache.stats.fills
            - cache.stats.evictions
            - cache.stats.invalidations_received
        )
        assert cache.occupancy() == expected


class TestMshrFile:
    def test_allocate_and_release(self):
        mshrs = MshrFile(capacity=2)
        entry = mshrs.allocate(0x100, RequestKind.READ)
        assert entry.merged_count == 1
        assert mshrs.occupancy == 1
        mshrs.release(0x100)
        assert mshrs.occupancy == 0

    def test_merge_same_line(self):
        mshrs = MshrFile(capacity=2)
        mshrs.allocate(0x100, RequestKind.READ)
        entry = mshrs.allocate(0x100, RequestKind.WRITE)
        assert entry.merged_count == 2
        assert entry.needs_write
        assert mshrs.stats.merges == 1

    def test_full_file_stalls(self):
        mshrs = MshrFile(capacity=1)
        mshrs.allocate(0x100, RequestKind.READ)
        with pytest.raises(ConfigurationError):
            mshrs.allocate(0x200, RequestKind.READ)
        assert mshrs.stats.full_stalls == 1

    def test_release_unknown_rejected(self):
        mshrs = MshrFile()
        with pytest.raises(ConfigurationError):
            mshrs.release(0x100)

    def test_drain(self):
        mshrs = MshrFile()
        mshrs.allocate(0x100, RequestKind.READ)
        mshrs.allocate(0x200, RequestKind.WRITE)
        drained = mshrs.drain()
        assert len(drained) == 2
        assert mshrs.occupancy == 0

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            MshrFile(capacity=0)
