"""Property-based coherence validation: litmus-style randomized streams.

Hypothesis generates arbitrary interleavings of reads and writes from
every core over a small page pool, drives them through a deliberately
tiny machine (so caches and probe filters overflow constantly), and
asserts the protocol safety invariants of
:mod:`repro.coherence.invariants` after every single access — under both
directory policies and every eviction-notification mode.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.coherence.invariants import (
    cached_line_states,
    check_directory_tracking,
    check_machine_invariants,
    check_mshr_quiescence,
    check_probe_filter_structure,
    check_single_writer,
)
from repro.coherence.states import LineState
from repro.coherence.transactions import RequestKind
from repro.errors import ProtocolError
from repro.system.config import (
    CoreConfig,
    DirectoryConfig,
    NetworkConfig,
    SystemConfig,
)
from repro.system.machine import Machine

#: Number of cores/nodes in the litmus machine (2x2 mesh).
CORES = 4

#: Virtual pages the random streams touch.  Small enough that cores
#: collide on lines constantly, large enough to overflow the tiny caches.
PAGES = 6

#: Lines probed within each page.
LINES_PER_PAGE = 4


def tiny_config(policy: str, eviction_notification: str = "dirty") -> SystemConfig:
    """A 4-node machine with caches small enough to thrash immediately."""
    return SystemConfig(
        core_count=CORES,
        core=CoreConfig(l1i_size=1024, l1d_size=1024, l2_size=2048),
        directory=DirectoryConfig(
            probe_filter_coverage=2048,
            memory_bytes=64 * 1024 * 1024,
            eviction_notification=eviction_notification,
        ),
        network=NetworkConfig(mesh_width=2, mesh_height=2),
        directory_policy=policy,
    )


#: One random access: (core, page, line-in-page, is_write).
access_strategy = st.tuples(
    st.integers(min_value=0, max_value=CORES - 1),
    st.integers(min_value=0, max_value=PAGES - 1),
    st.integers(min_value=0, max_value=LINES_PER_PAGE - 1),
    st.booleans(),
)

stream_strategy = st.lists(access_strategy, min_size=1, max_size=120)


def drive(machine: Machine, stream) -> None:
    """Replay a random stream, checking every invariant after each step."""
    base = 0x4000_0000
    for core, page, line, is_write in stream:
        vaddr = base + page * 4096 + line * 64
        machine.perform_access(core, 0, vaddr, is_write)
        check_machine_invariants(machine)


class TestRandomStreamsKeepInvariants:
    @settings(max_examples=40, deadline=None)
    @given(stream=stream_strategy)
    def test_baseline(self, stream):
        drive(Machine(tiny_config("baseline")), stream)

    @settings(max_examples=40, deadline=None)
    @given(stream=stream_strategy)
    def test_allarm(self, stream):
        drive(Machine(tiny_config("allarm")), stream)

    @settings(max_examples=15, deadline=None)
    @given(stream=stream_strategy)
    @pytest.mark.parametrize("mode", ["none", "owned"])
    def test_eviction_notification_modes(self, stream, mode):
        drive(Machine(tiny_config("baseline", eviction_notification=mode)), stream)

    @settings(max_examples=15, deadline=None)
    @given(stream=stream_strategy)
    def test_allarm_with_multiple_processes(self, stream):
        # Distinct processes map the same virtual pages to distinct
        # physical frames; interleave two of them on alternating cores.
        machine = Machine(tiny_config("allarm"))
        base = 0x4000_0000
        for index, (core, page, line, is_write) in enumerate(stream):
            vaddr = base + page * 4096 + line * 64
            machine.perform_access(core, index % 2, vaddr, is_write)
            check_machine_invariants(machine)


class TestInvariantStrength:
    """The checks must actually catch broken states, not pass vacuously."""

    def warmed_machine(self, policy: str = "baseline") -> Machine:
        machine = Machine(tiny_config(policy))
        for core in range(CORES):
            for page in range(PAGES):
                machine.perform_access(core, 0, 0x4000_0000 + page * 4096, False)
        check_machine_invariants(machine)
        return machine

    def test_detects_double_writer(self):
        machine = self.warmed_machine()
        lines = cached_line_states(machine)
        # Find a line somewhere and force a second node to hold it MODIFIED.
        line_address, holders = next(iter(lines.items()))
        other = next(n for n in range(CORES) if n not in holders)
        machine.node(other).caches.l2.fill(line_address, LineState.MODIFIED)
        with pytest.raises(ProtocolError, match="writable"):
            check_single_writer(machine)

    def test_detects_untracked_remote_holder(self):
        machine = self.warmed_machine()
        line_address, holders = next(iter(cached_line_states(machine).items()))
        home = machine.address_map.home_node(line_address)
        entry = machine.node(home).probe_filter.peek(line_address)
        if entry is None:
            pytest.skip("picked an untracked line; stream too short")
        # Forge a holder the directory does not know about.
        forged = next(n for n in range(CORES) if n not in entry.holders)
        machine.node(forged).caches.l2.fill(line_address, LineState.SHARED)
        with pytest.raises(ProtocolError):
            check_directory_tracking(machine)

    def test_detects_duplicate_probe_filter_entries(self):
        machine = self.warmed_machine()
        probe_filter = machine.node(0).probe_filter
        entry = next(iter(probe_filter.entries()), None)
        if entry is None:
            pytest.skip("probe filter empty")
        # Clone the entry into another way of its set, bypassing the
        # allocate() guard (making room first if the set is full).
        fset = probe_filter._sets[probe_filter.set_index(entry.line_address)]
        free = next(
            (w for w in range(probe_filter.associativity) if w not in fset.entries),
            None,
        )
        if free is None:
            free = next(w for w in fset.entries if w != entry.way)
            del fset.entries[free]
        import copy

        clone = copy.copy(entry)
        clone.way = free
        fset.entries[free] = clone
        with pytest.raises(ProtocolError, match="duplicate"):
            check_probe_filter_structure(machine)

    def test_detects_entry_in_wrong_set(self):
        machine = self.warmed_machine()
        probe_filter = machine.node(0).probe_filter
        entry = next(iter(probe_filter.entries()), None)
        if entry is None:
            pytest.skip("probe filter empty")
        # Move the entry to a set its address does not hash to; peek()
        # would silently miss it there.
        home = probe_filter._sets[probe_filter.set_index(entry.line_address)]
        wrong = probe_filter._sets[
            (probe_filter.set_index(entry.line_address) + 1) % probe_filter.set_count
        ]
        del home.entries[entry.way]
        wrong.entries.pop(entry.way, None)
        wrong.entries[entry.way] = entry
        with pytest.raises(ProtocolError, match="hashes to set"):
            check_probe_filter_structure(machine)


class TestPackedMutationStrength:
    """Targeted corruptions of the packed PF/L2 arrays must all be caught.

    Each test injects one corruption class into a healthy packed machine
    and asserts the invariant checker (or, for pure counter damage,
    ``snapshot_diff``) detects it — guarding against a checker that only
    understands the reference object graph and stays silent on the
    arrays the default engine actually runs on.
    """

    def warmed_packed(self, policy: str = "baseline"):
        from repro.system.fastcore import build_machine

        machine = build_machine(tiny_config(policy), "packed")
        base = 0x4000_0000
        # Core 0 first-touches one page (homing it on node 0), then the
        # other cores read distinct lines of it — page-internal lines land
        # in distinct probe-filter sets, so node 0's filter ends up with
        # stable entries carrying a live owner and a remote sharer set.
        for line in range(PAGES):
            machine.perform_access(0, 0, base + line * 64, False)
        for core in range(1, CORES):
            for line in range(PAGES):
                machine.perform_access(core, 0, base + line * 64, False)
        check_machine_invariants(machine)
        return machine

    def tracked_slot(self, machine):
        """(node, pf, slot) of an entry with an owner and remote sharers."""
        for node in machine.nodes:
            pf = node.probe_filter
            for slot in range(pf.entry_count):
                if pf.tags[slot] >= 0 and pf.owners[slot] >= 0 and pf.sharer_bits[slot]:
                    return node, pf, slot
        pytest.fail("warm-up produced no owner+sharers entry")

    def test_detects_out_of_range_sharer_bit(self):
        machine = self.warmed_packed()
        _, pf, slot = self.tracked_slot(machine)
        pf.sharer_bits[slot] |= 1 << CORES  # bit beyond the mesh
        with pytest.raises(ProtocolError, match="outside"):
            check_probe_filter_structure(machine)

    def test_detects_cleared_holder_bit(self):
        machine = self.warmed_packed()
        _, pf, slot = self.tracked_slot(machine)
        # Drop one real sharer from the mask: the directory now
        # under-approximates the holders, which would let a stale copy
        # survive an invalidation.
        mask = pf.sharer_bits[slot]
        pf.sharer_bits[slot] = mask & (mask - 1)
        with pytest.raises(ProtocolError, match="actually hold"):
            check_directory_tracking(machine)

    def test_detects_stale_owner(self):
        machine = self.warmed_packed()
        _, pf, slot = self.tracked_slot(machine)
        # Repoint the owner at a node that holds nothing and erase the
        # sharers: every real holder goes untracked.
        real_owner = pf.owners[slot]
        pf.owners[slot] = (real_owner + 1) % CORES
        pf.sharer_bits[slot] = 0
        with pytest.raises(ProtocolError, match="actually hold"):
            check_directory_tracking(machine)

    def test_detects_dangling_mshr(self):
        machine = self.warmed_packed()
        machine.nodes[2].caches.mshrs.allocate(0x9990_0040, RequestKind.READ)
        with pytest.raises(ProtocolError, match="dangling MSHR"):
            check_mshr_quiescence(machine)
        machine.nodes[2].caches.mshrs.release(0x9990_0040)
        check_machine_invariants(machine)

    def test_detects_residual_holders_on_free_way(self):
        machine = self.warmed_packed()
        _, pf, slot = self.tracked_slot(machine)
        pf.tags[slot] = -1  # free the way but leave the holder fields
        with pytest.raises(ProtocolError, match="still records holders"):
            check_probe_filter_structure(machine)

    def test_detects_duplicate_and_wrong_set_tags(self):
        machine = self.warmed_packed()
        _, pf, slot = self.tracked_slot(machine)
        tag = pf.tags[slot]
        assoc = pf.associativity
        base = (slot // assoc) * assoc
        free = next(
            (s for s in range(base, base + assoc) if pf.tags[s] < 0), None
        )
        if free is not None:
            pf.tags[free] = tag  # duplicate within the right set
            with pytest.raises(ProtocolError, match="duplicate"):
                check_probe_filter_structure(machine)
            pf.tags[free] = -1
        other_set = (slot // assoc + 1) % pf.set_count
        moved = other_set * assoc + slot % assoc
        displaced = pf.tags[moved]
        pf.tags[slot], pf.tags[moved] = -1, tag
        pf.owners[moved], pf.owners[slot] = pf.owners[slot], -1
        pf.sharer_bits[moved], pf.sharer_bits[slot] = pf.sharer_bits[slot], 0
        del displaced
        with pytest.raises(ProtocolError, match="hashes to set"):
            check_probe_filter_structure(machine)

    def test_detects_second_writer_in_packed_l2(self):
        machine = self.warmed_packed()
        line_address, holders = next(
            (item for item in cached_line_states(machine).items() if len(item[1]) > 1),
            (None, None),
        )
        assert line_address is not None, "warm-up produced no shared line"
        # Flip one holder's packed L2 state byte to MODIFIED.
        from repro.cache.packed import STATE_MODIFIED

        node_id = next(iter(holders))
        l2 = machine.nodes[node_id].caches.l2
        l2.states[l2.find(line_address)] = STATE_MODIFIED
        with pytest.raises(ProtocolError, match="writable"):
            check_single_writer(machine)

    def test_snapshot_diff_catches_counter_and_occupancy_damage(self):
        from repro.stats.compare import snapshot_diff
        from repro.stats.snapshot import collect

        machine = self.warmed_packed()
        clean = collect(machine)
        pf = machine.nodes[0].probe_filter
        pf.reads += 1  # silent counter corruption: invisible to invariants
        diffs = snapshot_diff(clean, collect(machine))
        assert any("pf_reads" in diff for diff in diffs)
        pf.reads -= 1
        slot = next(s for s in range(pf.entry_count) if pf.tags[s] >= 0)
        tag = pf.tags[slot]
        pf.tags[slot] = -1
        pf.owners[slot] = -1
        pf.sharer_bits[slot] = 0
        diffs = snapshot_diff(clean, collect(machine))
        assert any("pf_occupancy" in diff for diff in diffs)
        pf.tags[slot] = tag


class TestSimulatedWorkloadsKeepInvariants:
    """End-state invariant check after real workload runs (both policies)."""

    @pytest.mark.parametrize("policy", ["baseline", "allarm"])
    @pytest.mark.parametrize("workload", ["barnes", "false-sharing", "migratory"])
    def test_workload_end_state(self, policy, workload):
        from repro.system.config import experiment_config
        from repro.system.simulator import Simulator
        from repro.workloads.registry import build_spec
        from repro.workloads.base import SyntheticWorkload

        spec = build_spec(workload, total_accesses=2000).with_footprint_scale(32)
        simulator = Simulator(experiment_config(policy, scale=32))
        simulator.run(SyntheticWorkload(spec).generate(), workload)
        check_machine_invariants(simulator.machine)
