"""Property-based coherence validation: litmus-style randomized streams.

Hypothesis generates arbitrary interleavings of reads and writes from
every core over a small page pool, drives them through a deliberately
tiny machine (so caches and probe filters overflow constantly), and
asserts the protocol safety invariants of
:mod:`repro.coherence.invariants` after every single access — under both
directory policies and every eviction-notification mode.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.coherence.invariants import (
    cached_line_states,
    check_directory_tracking,
    check_machine_invariants,
    check_probe_filter_structure,
    check_single_writer,
)
from repro.coherence.states import LineState
from repro.errors import ProtocolError
from repro.system.config import (
    CoreConfig,
    DirectoryConfig,
    NetworkConfig,
    SystemConfig,
)
from repro.system.machine import Machine

#: Number of cores/nodes in the litmus machine (2x2 mesh).
CORES = 4

#: Virtual pages the random streams touch.  Small enough that cores
#: collide on lines constantly, large enough to overflow the tiny caches.
PAGES = 6

#: Lines probed within each page.
LINES_PER_PAGE = 4


def tiny_config(policy: str, eviction_notification: str = "dirty") -> SystemConfig:
    """A 4-node machine with caches small enough to thrash immediately."""
    return SystemConfig(
        core_count=CORES,
        core=CoreConfig(l1i_size=1024, l1d_size=1024, l2_size=2048),
        directory=DirectoryConfig(
            probe_filter_coverage=2048,
            memory_bytes=64 * 1024 * 1024,
            eviction_notification=eviction_notification,
        ),
        network=NetworkConfig(mesh_width=2, mesh_height=2),
        directory_policy=policy,
    )


#: One random access: (core, page, line-in-page, is_write).
access_strategy = st.tuples(
    st.integers(min_value=0, max_value=CORES - 1),
    st.integers(min_value=0, max_value=PAGES - 1),
    st.integers(min_value=0, max_value=LINES_PER_PAGE - 1),
    st.booleans(),
)

stream_strategy = st.lists(access_strategy, min_size=1, max_size=120)


def drive(machine: Machine, stream) -> None:
    """Replay a random stream, checking every invariant after each step."""
    base = 0x4000_0000
    for core, page, line, is_write in stream:
        vaddr = base + page * 4096 + line * 64
        machine.perform_access(core, 0, vaddr, is_write)
        check_machine_invariants(machine)


class TestRandomStreamsKeepInvariants:
    @settings(max_examples=40, deadline=None)
    @given(stream=stream_strategy)
    def test_baseline(self, stream):
        drive(Machine(tiny_config("baseline")), stream)

    @settings(max_examples=40, deadline=None)
    @given(stream=stream_strategy)
    def test_allarm(self, stream):
        drive(Machine(tiny_config("allarm")), stream)

    @settings(max_examples=15, deadline=None)
    @given(stream=stream_strategy)
    @pytest.mark.parametrize("mode", ["none", "owned"])
    def test_eviction_notification_modes(self, stream, mode):
        drive(Machine(tiny_config("baseline", eviction_notification=mode)), stream)

    @settings(max_examples=15, deadline=None)
    @given(stream=stream_strategy)
    def test_allarm_with_multiple_processes(self, stream):
        # Distinct processes map the same virtual pages to distinct
        # physical frames; interleave two of them on alternating cores.
        machine = Machine(tiny_config("allarm"))
        base = 0x4000_0000
        for index, (core, page, line, is_write) in enumerate(stream):
            vaddr = base + page * 4096 + line * 64
            machine.perform_access(core, index % 2, vaddr, is_write)
            check_machine_invariants(machine)


class TestInvariantStrength:
    """The checks must actually catch broken states, not pass vacuously."""

    def warmed_machine(self, policy: str = "baseline") -> Machine:
        machine = Machine(tiny_config(policy))
        for core in range(CORES):
            for page in range(PAGES):
                machine.perform_access(core, 0, 0x4000_0000 + page * 4096, False)
        check_machine_invariants(machine)
        return machine

    def test_detects_double_writer(self):
        machine = self.warmed_machine()
        lines = cached_line_states(machine)
        # Find a line somewhere and force a second node to hold it MODIFIED.
        line_address, holders = next(iter(lines.items()))
        other = next(n for n in range(CORES) if n not in holders)
        machine.node(other).caches.l2.fill(line_address, LineState.MODIFIED)
        with pytest.raises(ProtocolError, match="writable"):
            check_single_writer(machine)

    def test_detects_untracked_remote_holder(self):
        machine = self.warmed_machine()
        line_address, holders = next(iter(cached_line_states(machine).items()))
        home = machine.address_map.home_node(line_address)
        entry = machine.node(home).probe_filter.peek(line_address)
        if entry is None:
            pytest.skip("picked an untracked line; stream too short")
        # Forge a holder the directory does not know about.
        forged = next(n for n in range(CORES) if n not in entry.holders)
        machine.node(forged).caches.l2.fill(line_address, LineState.SHARED)
        with pytest.raises(ProtocolError):
            check_directory_tracking(machine)

    def test_detects_duplicate_probe_filter_entries(self):
        machine = self.warmed_machine()
        probe_filter = machine.node(0).probe_filter
        entry = next(iter(probe_filter.entries()), None)
        if entry is None:
            pytest.skip("probe filter empty")
        # Clone the entry into another way of its set, bypassing the
        # allocate() guard (making room first if the set is full).
        fset = probe_filter._sets[probe_filter.set_index(entry.line_address)]
        free = next(
            (w for w in range(probe_filter.associativity) if w not in fset.entries),
            None,
        )
        if free is None:
            free = next(w for w in fset.entries if w != entry.way)
            del fset.entries[free]
        import copy

        clone = copy.copy(entry)
        clone.way = free
        fset.entries[free] = clone
        with pytest.raises(ProtocolError, match="duplicate"):
            check_probe_filter_structure(machine)

    def test_detects_entry_in_wrong_set(self):
        machine = self.warmed_machine()
        probe_filter = machine.node(0).probe_filter
        entry = next(iter(probe_filter.entries()), None)
        if entry is None:
            pytest.skip("probe filter empty")
        # Move the entry to a set its address does not hash to; peek()
        # would silently miss it there.
        home = probe_filter._sets[probe_filter.set_index(entry.line_address)]
        wrong = probe_filter._sets[
            (probe_filter.set_index(entry.line_address) + 1) % probe_filter.set_count
        ]
        del home.entries[entry.way]
        wrong.entries.pop(entry.way, None)
        wrong.entries[entry.way] = entry
        with pytest.raises(ProtocolError, match="hashes to set"):
            check_probe_filter_structure(machine)


class TestSimulatedWorkloadsKeepInvariants:
    """End-state invariant check after real workload runs (both policies)."""

    @pytest.mark.parametrize("policy", ["baseline", "allarm"])
    @pytest.mark.parametrize("workload", ["barnes", "false-sharing", "migratory"])
    def test_workload_end_state(self, policy, workload):
        from repro.system.config import experiment_config
        from repro.system.simulator import Simulator
        from repro.workloads.registry import build_spec
        from repro.workloads.base import SyntheticWorkload

        spec = build_spec(workload, total_accesses=2000).with_footprint_scale(32)
        simulator = Simulator(experiment_config(policy, scale=32))
        simulator.run(SyntheticWorkload(spec).generate(), workload)
        check_machine_invariants(simulator.machine)
