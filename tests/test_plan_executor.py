"""Tests for the sweep engine: plans, executor, disk cache, CLI facade."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.__main__ import main as repro_main
from repro.analysis.executor import (
    SOURCE_DISK,
    SOURCE_EXECUTED,
    SOURCE_MEMORY,
    SnapshotCache,
    SweepExecutor,
    cache_key,
    execute_run_spec,
)
from repro.analysis.experiments import (
    ExperimentRunner,
    ExperimentSettings,
    default_runner,
    reset_default_runner,
)
from repro.analysis.plan import (
    RunSpec,
    SweepPlan,
    build_plan,
    figure3_plan,
    figure3h_plan,
    figure4_plan,
    full_plan,
    seed_for,
)
from repro.errors import ConfigurationError
from repro.stats.snapshot import MachineSnapshot

#: Deliberately tiny settings so engine tests stay fast.
TINY = ExperimentSettings(scale=16, accesses=1500, multiprocess_accesses=800)


# ----------------------------------------------------------------------
# Seeds
# ----------------------------------------------------------------------
class TestSeeds:
    def test_deterministic(self):
        assert seed_for("barnes", 0) == seed_for("barnes", 0)

    def test_anagrams_get_distinct_seeds(self):
        # A character-sum seed would collide for these.
        assert seed_for("listen") != seed_for("silent")
        assert seed_for("ocean-cont") != seed_for("ocean-cnot")

    def test_base_seed_perturbs(self):
        assert seed_for("barnes", 0) != seed_for("barnes", 1)

    def test_anagram_benchmark_names_get_distinct_access_streams(self):
        # Regression for the pre-crc32 char-sum seed: two benchmarks whose
        # names are anagrams must not replay identical access streams.
        from repro.workloads.base import materialize
        from repro.workloads.registry import build_spec

        streams = {}
        for name in ("stream-scan", "scan-stream"):
            spec = build_spec(
                "barnes", total_accesses=2000, seed=seed_for(name)
            ).with_footprint_scale(32)
            streams[name] = materialize(spec)
        assert streams["stream-scan"] != streams["scan-stream"]


# ----------------------------------------------------------------------
# RunSpec
# ----------------------------------------------------------------------
class TestRunSpec:
    def test_is_picklable_and_hashable(self):
        spec = RunSpec("barnes", "allarm", settings=TINY)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert len({spec, RunSpec("barnes", "allarm", settings=TINY)}) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RunSpec("barnes", "allarm", layout="4p")
        with pytest.raises(ConfigurationError):
            RunSpec("barnes", "no-such-policy")
        with pytest.raises(ConfigurationError):
            RunSpec("barnes", "allarm", pf_size=0)

    def test_unknown_benchmark_fails_at_plan_build_time(self):
        # A typo'd benchmark must fail when the spec is built, not minutes
        # into a sweep when the bad run finally executes.
        with pytest.raises(ConfigurationError):
            RunSpec("barnse", "allarm", settings=TINY)
        with pytest.raises(ConfigurationError):
            build_plan("fig3", TINY, benchmarks=["barnes", "barnse"])

    def test_non_multiprocess_benchmark_rejected_for_2p_layout(self):
        # blackscholes is a paper benchmark but not part of the Fig. 4 study.
        with pytest.raises(ConfigurationError):
            RunSpec("blackscholes", "allarm", layout="2p", settings=TINY)

    def test_digest_distinguishes_every_field(self):
        base = RunSpec("barnes", "allarm", settings=TINY)
        variants = [
            RunSpec("cholesky", "allarm", settings=TINY),
            RunSpec("barnes", "baseline", settings=TINY),
            RunSpec("barnes", "allarm", pf_size=256 * 1024, settings=TINY),
            RunSpec("barnes", "allarm", layout="2p", settings=TINY),
            RunSpec("barnes", "allarm", frames_per_node=64, settings=TINY),
            RunSpec("barnes", "allarm", settings=TINY.quick(1000)),
        ]
        digests = {base.digest()} | {v.digest() for v in variants}
        assert len(digests) == 1 + len(variants)

    def test_workload_name_follows_layout(self):
        assert RunSpec("barnes", "allarm", settings=TINY).workload_name == "barnes"
        assert (
            RunSpec("barnes", "allarm", layout="2p", settings=TINY).workload_name
            == "barnes-2p"
        )

    def test_access_stream_is_deterministic(self):
        spec = RunSpec("barnes", "allarm", settings=TINY)
        first = list(spec.access_stream())
        second = list(spec.access_stream())
        assert first == second
        assert len(first) > 0


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
class TestPlans:
    def test_figure_grids(self):
        assert len(figure3_plan(TINY)) == 16
        assert len(figure3h_plan(TINY)) == 8 * (1 + 3)
        assert len(figure4_plan(TINY)) == 4 * 2 * 5
        # The union de-duplicates the shared 512 kB runs.
        combined = len(figure3_plan(TINY)) + len(figure3h_plan(TINY)) + len(
            figure4_plan(TINY)
        )
        assert len(full_plan(TINY)) < combined

    def test_duplicate_specs_rejected(self):
        spec = RunSpec("barnes", "allarm", settings=TINY)
        with pytest.raises(ConfigurationError):
            SweepPlan(name="dup", specs=(spec, spec))

    def test_build_plan_by_name(self):
        assert len(build_plan("fig3", TINY, benchmarks=["barnes"])) == 2
        with pytest.raises(ConfigurationError):
            build_plan("fig9", TINY)

    def test_microbench_plan(self):
        from repro.workloads.registry import MICROBENCH_FAMILIES

        plan = build_plan("micro", TINY)
        assert len(plan) == len(MICROBENCH_FAMILIES) * 2 * 2
        assert {spec.benchmark for spec in plan} == set(MICROBENCH_FAMILIES)
        assert all(spec.layout == "16t" for spec in plan)

    def test_empty_benchmark_subset_means_no_runs(self):
        # An explicitly empty subset must not silently expand to the full
        # default benchmark list.
        assert len(figure3_plan(TINY, benchmarks=[])) == 0
        assert len(figure4_plan(TINY, benchmarks=[])) == 0
        # full_plan with a subset containing no Fig. 4 benchmarks simply
        # contributes no 2p runs.
        plan = full_plan(TINY, benchmarks=["blackscholes"])
        assert all(spec.layout == "16t" for spec in plan)


# ----------------------------------------------------------------------
# Snapshot serialisation
# ----------------------------------------------------------------------
class TestSnapshotSerialization:
    @pytest.fixture(scope="class")
    def snapshot(self) -> MachineSnapshot:
        return execute_run_spec(RunSpec("barnes", "allarm", settings=TINY))

    def test_json_round_trip_is_lossless(self, snapshot):
        restored = MachineSnapshot.from_json(snapshot.to_json())
        assert restored.to_dict() == snapshot.to_dict()
        assert restored == snapshot
        assert len(restored.nodes) == len(snapshot.nodes)

    def test_schema_version_is_checked(self, snapshot):
        data = snapshot.to_dict()
        data["schema_version"] = 999
        with pytest.raises(Exception):
            MachineSnapshot.from_dict(data)

    def test_unknown_fields_rejected(self, snapshot):
        data = snapshot.to_dict()
        data["bogus_field"] = 1
        with pytest.raises(Exception):
            MachineSnapshot.from_dict(data)


# ----------------------------------------------------------------------
# Disk cache
# ----------------------------------------------------------------------
class TestSnapshotCache:
    def test_store_then_load(self, tmp_path):
        spec = RunSpec("barnes", "baseline", settings=TINY)
        snapshot = execute_run_spec(spec)
        cache = SnapshotCache(tmp_path)
        assert cache.load(spec) is None
        path = cache.store(spec, snapshot)
        assert path.exists()
        loaded = cache.load(spec)
        assert loaded is not None
        assert loaded.to_dict() == snapshot.to_dict()
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        spec = RunSpec("barnes", "baseline", settings=TINY)
        cache = SnapshotCache(tmp_path)
        path = cache.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json")
        assert cache.load(spec) is None
        assert cache.stats.invalid == 1

    def test_entries_are_self_describing(self, tmp_path):
        spec = RunSpec("barnes", "baseline", settings=TINY)
        cache = SnapshotCache(tmp_path)
        path = cache.store(spec, execute_run_spec(spec))
        payload = json.loads(path.read_text())
        assert payload["spec"]["benchmark"] == "barnes"
        assert payload["spec"]["policy"] == "baseline"
        assert cache.entry_count() == 1

    def test_key_includes_versions(self):
        spec = RunSpec("barnes", "baseline", settings=TINY)
        assert cache_key(spec) != spec.digest()


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------
class TestSweepExecutor:
    def test_memory_tier_returns_identical_object(self):
        executor = SweepExecutor()
        spec = RunSpec("barnes", "baseline", settings=TINY)
        assert executor.run(spec) is executor.run(spec)

    def test_disk_tier_survives_executor_restarts(self, tmp_path):
        spec = RunSpec("barnes", "baseline", settings=TINY)
        first = SweepExecutor(cache_dir=tmp_path).run(spec)
        rehydrated = SweepExecutor(cache_dir=tmp_path)
        second = rehydrated.run(spec)
        assert second.to_dict() == first.to_dict()
        assert rehydrated.disk_cache.stats.hits == 1

    def test_run_plan_sources_and_order(self, tmp_path):
        plan = figure3_plan(TINY, benchmarks=["barnes"])
        executor = SweepExecutor(cache_dir=tmp_path)
        outcome = executor.run_plan(plan)
        assert [r.spec for r in outcome.results] == list(plan.specs)
        assert outcome.counts_by_source()[SOURCE_EXECUTED] == 2
        # Second invocation on a fresh executor: everything from disk.
        again = SweepExecutor(cache_dir=tmp_path).run_plan(plan)
        assert again.counts_by_source()[SOURCE_DISK] == 2
        assert again.cached_fraction == 1.0
        # Third time on the same executor: memory tier.
        third = executor.run_plan(plan)
        assert third.counts_by_source()[SOURCE_MEMORY] == 2

    def test_parallel_matches_serial_bit_for_bit(self):
        plan = figure3_plan(TINY, benchmarks=["barnes", "x264"])
        serial = SweepExecutor(workers=1).run_plan(plan)
        parallel = SweepExecutor(workers=2).run_plan(plan)
        assert all(r.source == SOURCE_EXECUTED for r in parallel.results)
        for left, right in zip(serial.results, parallel.results):
            assert left.spec == right.spec
            assert left.snapshot.to_dict() == right.snapshot.to_dict()


# ----------------------------------------------------------------------
# ExperimentRunner facade
# ----------------------------------------------------------------------
class TestRunnerFacade:
    def test_benchmark_and_spec_entry_points_share_the_cache(self):
        runner = ExperimentRunner(TINY)
        via_method = runner.run_benchmark("barnes", "allarm")
        via_spec = runner.run_spec(RunSpec("barnes", "allarm", settings=TINY))
        assert via_method is via_spec

    def test_multiprocess_layout(self):
        runner = ExperimentRunner(TINY)
        snapshot = runner.run_multiprocess("barnes", "baseline", 512 * 1024)
        assert snapshot.local_fraction > 0.5

    def test_run_plan_through_runner(self):
        runner = ExperimentRunner(TINY)
        outcome = runner.run_plan(figure3_plan(TINY, benchmarks=["barnes"]))
        assert len(outcome) == 2

    def test_default_runner_reset(self):
        try:
            runner = reset_default_runner(TINY)
            assert default_runner() is runner
            assert default_runner().settings == TINY
        finally:
            reset_default_runner()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    ARGS = [
        "--benchmarks",
        "barnes",
        "--accesses",
        "1500",
        "--mp-accesses",
        "800",
        "--scale",
        "16",
    ]

    def test_sweep_runs_and_caches(self, tmp_path, capsys):
        argv = ["sweep", "--plan", "fig3", "--cache-dir", str(tmp_path)] + self.ARGS
        assert repro_main(argv) == 0
        first = capsys.readouterr().out
        assert "2 runs" in first and "executed" in first
        # Re-invocation must be fully cache-served and satisfy the gate.
        assert repro_main(argv + ["--min-cache-fraction", "0.9"]) == 0
        second = capsys.readouterr().out
        assert "100% cached" in second

    def test_min_cache_fraction_gate_fails_cold(self, tmp_path, capsys):
        argv = (
            ["sweep", "--plan", "fig3", "--cache-dir", str(tmp_path)]
            + self.ARGS
            + ["--min-cache-fraction", "0.9"]
        )
        assert repro_main(argv) == 1

    def test_plans_command(self, capsys):
        assert repro_main(["plans"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "fig4" in out and "all" in out

    def test_version_command(self, capsys):
        assert repro_main(["version"]) == 0
        assert "repro" in capsys.readouterr().out
