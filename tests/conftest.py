"""Shared fixtures for the test suite.

Tests run against deliberately small machines and workloads so the whole
suite stays fast; the benchmark harness (benchmarks/) is where full-size
experiment runs live.
"""

from __future__ import annotations

import pytest

from repro.memory.address import AddressMap
from repro.system.config import SystemConfig, experiment_config, paper_config


@pytest.fixture
def address_map() -> AddressMap:
    """The paper's physical memory geometry (Table I)."""
    return AddressMap()


@pytest.fixture
def paper_cfg() -> SystemConfig:
    """Table I configuration with the baseline policy."""
    return paper_config("baseline")


@pytest.fixture
def small_baseline_cfg() -> SystemConfig:
    """A heavily scaled-down baseline machine for fast functional tests."""
    return experiment_config("baseline", scale=16)


@pytest.fixture
def small_allarm_cfg() -> SystemConfig:
    """A heavily scaled-down ALLARM machine for fast functional tests."""
    return experiment_config("allarm", scale=16)
