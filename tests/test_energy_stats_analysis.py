"""Tests for the energy/area models, hierarchy, and the experiment harness."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentRunner, ExperimentSettings
from repro.analysis.figures import (
    area_table,
    figure2_local_remote,
    figure3_comparison,
    format_area_table,
    format_figure2,
    format_figure3,
)
from repro.cache.hierarchy import CacheHierarchy, HitLevel
from repro.coherence.states import LineState
from repro.energy.area import PAPER_AREA_TABLE, ProbeFilterAreaModel
from repro.energy.directory_energy import ProbeFilterEnergyModel
from repro.energy.mcpat import McPatModel
from repro.energy.noc_energy import NocEnergyModel
from repro.errors import ConfigurationError
from repro.memory.controller import MemoryController
from repro.memory.dram import Dram


class TestCacheHierarchy:
    def make(self) -> CacheHierarchy:
        return CacheHierarchy(
            core_id=0, l1i_size=4096, l1d_size=4096, l1_assoc=4,
            l2_size=16384, l2_assoc=4,
        )

    def test_miss_then_l1_hit(self):
        hierarchy = self.make()
        result = hierarchy.access(0x1000, is_write=False)
        assert result.level is HitLevel.MISS and result.needs_coherence
        hierarchy.fill(0x1000, LineState.EXCLUSIVE)
        again = hierarchy.access(0x1000, is_write=False)
        assert again.level is HitLevel.L1 and again.is_hit

    def test_write_to_shared_needs_upgrade(self):
        hierarchy = self.make()
        hierarchy.fill(0x1000, LineState.SHARED)
        result = hierarchy.access(0x1000, is_write=True)
        assert result.needs_upgrade and result.needs_coherence

    def test_write_to_exclusive_is_silent(self):
        hierarchy = self.make()
        hierarchy.fill(0x1000, LineState.EXCLUSIVE)
        result = hierarchy.access(0x1000, is_write=True)
        assert result.is_hit
        assert hierarchy.coherence_state(0x1000) is LineState.MODIFIED

    def test_inclusion_on_l2_eviction(self):
        hierarchy = self.make()
        l2_sets = hierarchy.l2.set_count
        stride = 64 * l2_sets
        addresses = [i * stride for i in range(hierarchy.l2.associativity + 1)]
        for address in addresses:
            hierarchy.fill(address, LineState.EXCLUSIVE)
        evicted = [a for a in addresses if not hierarchy.l2.contains(a)]
        assert evicted
        for address in evicted:
            assert not hierarchy.l1d.contains(address)

    def test_invalidate_removes_from_both_levels(self):
        hierarchy = self.make()
        hierarchy.fill(0x2000, LineState.MODIFIED)
        prior = hierarchy.handle_invalidate(0x2000)
        assert prior is LineState.MODIFIED
        assert not hierarchy.holds_line(0x2000)
        assert not hierarchy.l1d.contains(0x2000)

    def test_downgrade(self):
        hierarchy = self.make()
        hierarchy.fill(0x2000, LineState.MODIFIED)
        assert hierarchy.handle_downgrade(0x2000) is LineState.OWNED
        hierarchy.fill(0x3000, LineState.EXCLUSIVE)
        assert hierarchy.handle_downgrade(0x3000) is LineState.SHARED
        assert hierarchy.handle_downgrade(0x9999000) is None

    def test_instruction_side_uses_l1i(self):
        hierarchy = self.make()
        hierarchy.fill(0x4000, LineState.SHARED, is_instruction=True)
        assert hierarchy.l1i.contains(0x4000)
        assert not hierarchy.l1d.contains(0x4000)

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy(core_id=0, l1d_size=64 * 1024, l2_size=32 * 1024)


class TestDramAndController:
    def test_row_hit_is_faster(self):
        dram = Dram(node_id=0)
        first = dram.read(0x1000)
        second = dram.read(0x1040)  # same 8 kB row
        other = dram.read(0x100000)
        assert first == 60.0
        assert second == 40.0
        assert other == 60.0
        assert dram.stats.row_hits == 1

    def test_controller_adds_overhead(self):
        controller = MemoryController(0, Dram(0), scheduling_overhead_ns=2.0)
        assert controller.read_line(0x40) == pytest.approx(62.0)
        assert controller.writeback_line(0x40) == pytest.approx(42.0)  # row hit
        assert controller.stats.line_reads == 1
        assert controller.stats.line_writebacks == 1

    def test_invalid_latencies(self):
        with pytest.raises(ConfigurationError):
            Dram(0, access_latency_ns=0)
        with pytest.raises(ConfigurationError):
            Dram(0, access_latency_ns=10, row_hit_latency_ns=20)
        with pytest.raises(ConfigurationError):
            MemoryController(0, Dram(0), scheduling_overhead_ns=-1)


class TestEnergyModels:
    def test_noc_energy_scales_with_flit_hops(self):
        model = NocEnergyModel()
        assert model.dynamic_energy_pj(0) == 0
        assert model.dynamic_energy_pj(200) == pytest.approx(2 * model.dynamic_energy_pj(100))

    def test_pf_energy_scales_with_coverage(self):
        model = ProbeFilterEnergyModel()
        small = model.dynamic_energy_pj(100, 100, 128 * 1024)
        large = model.dynamic_energy_pj(100, 100, 512 * 1024)
        assert large > small
        assert large == pytest.approx(2 * small)  # sqrt(4x) = 2x

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            NocEnergyModel().dynamic_energy_pj(-1)
        with pytest.raises(ConfigurationError):
            ProbeFilterEnergyModel().dynamic_energy_pj(-1, 0, 1024)

    def test_area_table_matches_paper(self):
        model = ProbeFilterAreaModel()
        for coverage, expected in PAPER_AREA_TABLE.items():
            assert model.area_mm2(coverage) == pytest.approx(expected)

    def test_area_interpolation_monotonic(self):
        model = ProbeFilterAreaModel()
        sizes = [32, 48, 64, 96, 128, 192, 256, 384, 512]
        areas = [model.area_mm2(size * 1024) for size in sizes]
        assert areas == sorted(areas)
        assert model.area_saved_mm2(512 * 1024, 128 * 1024) == pytest.approx(70.89 - 19.90)

    def test_mcpat_report(self):
        settings = ExperimentSettings(scale=16, accesses=3000, multiprocess_accesses=2000)
        runner = ExperimentRunner(settings)
        baseline, allarm = runner.run_pair("barnes")
        mcpat = McPatModel()
        report = mcpat.report(baseline, 32 * 1024)
        assert report.total_pj == pytest.approx(report.noc_pj + report.probe_filter_pj)
        normalized = mcpat.normalized(baseline, allarm, 32 * 1024)
        assert normalized.probe_filter <= 1.0
        assert len(mcpat.area_table()) == 5


class TestExperimentHarness:
    @pytest.fixture(scope="class")
    def runner(self) -> ExperimentRunner:
        settings = ExperimentSettings(scale=16, accesses=4000, multiprocess_accesses=2000)
        return ExperimentRunner(settings)

    def test_runner_caches_runs(self, runner):
        first = runner.run_benchmark("barnes", "baseline")
        second = runner.run_benchmark("barnes", "baseline")
        assert first is second

    def test_settings_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_ACCESSES", "1234")
        monkeypatch.setenv("REPRO_BENCH_SCALE", "32")
        settings = ExperimentSettings.from_environment()
        assert settings.accesses == 1234
        assert settings.scale == 32

    def test_settings_bad_environment_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_ACCESSES", "not-a-number")
        settings = ExperimentSettings.from_environment()
        assert settings.accesses == 20_000

    def test_figure2_rows(self, runner):
        rows = figure2_local_remote(runner, benchmarks=["barnes", "x264"])
        assert [row.benchmark for row in rows] == ["barnes", "x264"]
        for row in rows:
            assert row.local_fraction + row.remote_fraction == pytest.approx(1.0)
        assert "barnes" in format_figure2(rows)

    def test_figure3_rows(self, runner):
        rows = figure3_comparison(runner, benchmarks=["barnes"])
        assert len(rows) == 1
        row = rows[0]
        assert row.speedup > 0
        assert row.normalized_evictions <= 1.1
        assert 0 <= row.probe_hidden_fraction <= 1
        text = format_figure3(rows)
        assert "barnes" in text and "geomean" in text

    def test_allarm_reduces_allocations(self, runner):
        baseline, allarm = runner.run_pair("barnes")
        assert allarm.pf_allocations < baseline.pf_allocations
        assert allarm.local_probes_sent > 0

    def test_multiprocess_runs_are_mostly_local(self, runner):
        snapshot = runner.run_multiprocess("barnes", "baseline", 512 * 1024)
        assert snapshot.local_fraction > 0.5

    def test_area_table_helper(self):
        rows = area_table()
        assert len(rows) == 5
        assert "mm^2" in format_area_table(rows)
