"""Tests for the mesh topology, routing, links, routers and the network."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.coherence.messages import MessageFactory, MessageType
from repro.errors import ConfigurationError, NetworkError
from repro.noc.link import Link
from repro.noc.network import Network
from repro.noc.router import Router
from repro.noc.routing import XYRouting, YXRouting, available_routing, make_routing
from repro.noc.topology import MeshTopology


class TestMeshTopology:
    def test_paper_mesh(self):
        mesh = MeshTopology(4, 4)
        assert mesh.node_count == 16
        assert mesh.coordinate(0).x == 0 and mesh.coordinate(0).y == 0
        assert mesh.coordinate(15).x == 3 and mesh.coordinate(15).y == 3

    def test_neighbours_corner_edge_centre(self):
        mesh = MeshTopology(4, 4)
        assert sorted(mesh.neighbours(0)) == [1, 4]
        assert sorted(mesh.neighbours(1)) == [0, 2, 5]
        assert sorted(mesh.neighbours(5)) == [1, 4, 6, 9]

    def test_hop_distance(self):
        mesh = MeshTopology(4, 4)
        assert mesh.hop_distance(0, 0) == 0
        assert mesh.hop_distance(0, 3) == 3
        assert mesh.hop_distance(0, 15) == 6
        assert mesh.are_adjacent(0, 1)
        assert not mesh.are_adjacent(0, 5)

    def test_links_are_bidirectional_pairs(self):
        mesh = MeshTopology(2, 2)
        links = set(mesh.links())
        assert (0, 1) in links and (1, 0) in links
        assert len(links) == 8

    def test_average_distance_positive(self):
        mesh = MeshTopology(4, 4)
        assert 2.0 < mesh.average_distance() < 3.0

    def test_invalid_nodes_rejected(self):
        mesh = MeshTopology(4, 4)
        with pytest.raises(NetworkError):
            mesh.coordinate(16)
        with pytest.raises(NetworkError):
            mesh.node_at(4, 0)

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            MeshTopology(0, 4)


class TestRouting:
    def test_xy_route_shape(self):
        mesh = MeshTopology(4, 4)
        route = XYRouting(mesh).route(0, 15)
        assert route[0] == 0 and route[-1] == 15
        assert len(route) == 7  # 6 hops
        # X corrected before Y.
        assert route[:4] == [0, 1, 2, 3]

    def test_yx_route_shape(self):
        mesh = MeshTopology(4, 4)
        route = YXRouting(mesh).route(0, 15)
        assert route[:4] == [0, 4, 8, 12]
        assert route[-1] == 15

    def test_routes_are_minimal(self):
        mesh = MeshTopology(4, 4)
        xy = XYRouting(mesh)
        for src in mesh.nodes():
            for dst in mesh.nodes():
                assert xy.hop_count(src, dst) == mesh.hop_distance(src, dst)

    def test_factory(self):
        mesh = MeshTopology(2, 2)
        assert isinstance(make_routing("xy", mesh), XYRouting)
        assert isinstance(make_routing("yx", mesh), YXRouting)
        assert available_routing() == ["xy", "yx"]
        with pytest.raises(ConfigurationError):
            make_routing("adaptive", mesh)

    @given(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=15))
    def test_route_steps_are_adjacent(self, src, dst):
        mesh = MeshTopology(4, 4)
        route = XYRouting(mesh).route(src, dst)
        for a, b in zip(route, route[1:]):
            assert mesh.are_adjacent(a, b)


class TestLinkAndRouter:
    def test_link_latency_includes_serialization(self):
        link = Link(0, 1, bandwidth_bytes_per_ns=8.0, latency_ns=10.0)
        assert link.traversal_ns(8) == pytest.approx(11.0)
        assert link.traversal_ns(72) == pytest.approx(19.0)

    def test_link_records_traffic(self):
        link = Link(0, 1)
        link.record(72, 18)
        assert link.stats.messages == 1
        assert link.stats.bytes == 72
        assert link.stats.flits == 18
        assert link.utilisation(100.0) > 0

    def test_link_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            Link(0, 1, bandwidth_bytes_per_ns=0)
        with pytest.raises(ConfigurationError):
            Link(0, 1, latency_ns=-1)

    def test_router_forward(self):
        router = Router(3, pipeline_latency_ns=1.5)
        latency = router.forward(8, 2)
        assert latency == pytest.approx(1.5)
        assert router.stats.flits_forwarded == 2


class TestNetwork:
    def make(self) -> Network:
        return Network()

    def test_local_delivery_is_free_and_untracked(self):
        network = self.make()
        message = MessageFactory().make(MessageType.LOCAL_STATE_PROBE, 5, 5, 0x40)
        result = network.deliver(message)
        assert result.latency_ns == 0.0
        assert result.hops == 0
        assert network.stats.bytes_injected == 0
        assert network.stats.local_messages == 1

    def test_remote_delivery_charges_per_hop(self):
        network = self.make()
        message = MessageFactory().make(MessageType.GET_SHARED, 0, 3, 0x40)
        result = network.deliver(message)
        assert result.hops == 3
        # Three hops of router (1.5) + link latency (10) + serialization (1).
        assert result.latency_ns == pytest.approx(3 * (1.5 + 10.0 + 1.0))
        assert network.stats.bytes_injected == 8
        assert network.stats.flit_hops == 2 * 3

    def test_data_message_serialization(self):
        network = self.make()
        message = MessageFactory().make(MessageType.DATA_FROM_MEMORY, 0, 1, 0x40)
        result = network.deliver(message)
        assert result.latency_ns == pytest.approx(1.5 + 10.0 + 9.0)
        assert network.stats.byte_hops == 72

    def test_traffic_accumulates_by_type(self):
        network = self.make()
        factory = MessageFactory()
        network.deliver(factory.make(MessageType.INVALIDATE, 0, 1, 0))
        network.deliver(factory.make(MessageType.INVALIDATE, 0, 2, 0))
        assert network.stats.messages_by_type["Inv"] == 2
        assert network.stats.bytes_by_type["Inv"] == 16

    def test_latency_estimate_matches_delivery(self):
        network = self.make()
        estimate = network.latency_estimate(0, 3, 8)
        message = MessageFactory().make(MessageType.GET_SHARED, 0, 3, 0)
        assert network.deliver(message).latency_ns == pytest.approx(estimate)

    def test_invalid_endpoint_rejected(self):
        network = self.make()
        message = MessageFactory().make(MessageType.ACK, 0, 99, 0)
        with pytest.raises(NetworkError):
            network.deliver(message)

    @given(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=15))
    def test_latency_monotonic_in_distance(self, src, dst):
        network = Network()
        direct = network.latency_estimate(src, dst, 8)
        assert direct >= 0
        if src != dst:
            assert direct > 0
