"""Tests for trace records/IO and the synthetic workload generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.trace.io import count_records, read_trace, write_trace
from repro.trace.record import AccessRecord, AccessType
from repro.workloads.base import (
    PAGE_SIZE,
    RegionSpec,
    SyntheticWorkload,
    WorkloadSpec,
    interleave,
    materialize,
)
from repro.workloads import microbench
from repro.workloads.multiprocess import build_multiprocess_spec, generate_multiprocess
from repro.workloads.registry import (
    MICROBENCH_FAMILIES,
    MULTIPROCESS_BENCHMARKS,
    PAPER_BENCHMARKS,
    all_benchmark_names,
    benchmark_names,
    build_spec,
    build_workload,
    is_registered,
    register,
    unregister,
)


class TestAccessRecord:
    def test_round_trip_text_format(self):
        record = AccessRecord(core=5, vaddr=0xDEADBEEF, access_type=AccessType.WRITE, process_id=1)
        parsed = AccessRecord.from_line(record.to_line())
        assert parsed == record

    def test_flags(self):
        assert AccessRecord(0, 0, AccessType.WRITE).is_write
        assert AccessRecord(0, 0, AccessType.INSTRUCTION).is_instruction
        assert not AccessRecord(0, 0, AccessType.READ).is_write

    def test_invalid_fields_rejected(self):
        with pytest.raises(WorkloadError):
            AccessRecord(core=-1, vaddr=0, access_type=AccessType.READ)
        with pytest.raises(WorkloadError):
            AccessRecord(core=0, vaddr=-5, access_type=AccessType.READ)

    def test_malformed_lines_rejected(self):
        with pytest.raises(WorkloadError):
            AccessRecord.from_line("1 2 R")
        with pytest.raises(WorkloadError):
            AccessRecord.from_line("1 2 Q 0x40")
        with pytest.raises(WorkloadError):
            AccessRecord.from_line("a b R 0x40")


class TestTraceIo:
    def test_write_and_read(self, tmp_path):
        records = [
            AccessRecord(core=i % 4, vaddr=i * 64, access_type=AccessType.READ)
            for i in range(50)
        ]
        path = tmp_path / "trace.txt"
        written = write_trace(path, records)
        assert written == 50
        assert count_records(path) == 50
        assert list(read_trace(path)) == records

    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError):
            list(read_trace(tmp_path / "nope.txt"))

    def test_malformed_file_reports_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# header\n0 1 R 0x40\nnot a record\n")
        with pytest.raises(WorkloadError, match="bad.txt:3"):
            list(read_trace(path))


class TestSpecs:
    def test_registry_contains_paper_suite(self):
        assert benchmark_names() == PAPER_BENCHMARKS
        assert len(PAPER_BENCHMARKS) == 8
        for name in PAPER_BENCHMARKS:
            assert is_registered(name)
        assert set(MULTIPROCESS_BENCHMARKS) <= set(PAPER_BENCHMARKS)

    def test_unknown_benchmark(self):
        with pytest.raises(WorkloadError):
            build_spec("linpack")

    def test_microbench_families_registered(self):
        assert len(MICROBENCH_FAMILIES) == 4
        for name in MICROBENCH_FAMILIES:
            assert is_registered(name)
            assert build_spec(name).name == name
        assert all_benchmark_names() == PAPER_BENCHMARKS + sorted(MICROBENCH_FAMILIES)
        # The paper-facing list stays exactly the paper's eight.
        assert benchmark_names() == PAPER_BENCHMARKS

    def test_microbench_register_unregister_round_trip(self):
        builders = {
            "false-sharing": microbench.false_sharing,
            "migratory": microbench.migratory,
            "stream-scan": microbench.stream_scan,
            "hotspot": microbench.hotspot,
        }
        for name in MICROBENCH_FAMILIES:
            try:
                unregister(name)
                assert not is_registered(name)
                register(name, builders[name])
                assert is_registered(name)
            finally:
                # Restore even if an assert fired mid-way.
                if not is_registered(name):
                    register(name, builders[name])
            assert build_spec(name).name == name

    def test_register_and_unregister_custom(self):
        def custom(total_accesses=1000, seed=0):
            return build_spec("barnes", total_accesses=total_accesses, seed=seed)

        register("custom-bench", custom)
        assert is_registered("custom-bench")
        with pytest.raises(WorkloadError):
            register("custom-bench", custom)
        unregister("custom-bench")
        assert not is_registered("custom-bench")
        with pytest.raises(WorkloadError):
            unregister("barnes")

    def test_spec_validation(self):
        region = RegionSpec(name="r", kind="private", bytes_per_instance=8192)
        with pytest.raises(WorkloadError):
            WorkloadSpec(name="bad", regions=(region,), mix={"missing": 1.0})
        with pytest.raises(WorkloadError):
            WorkloadSpec(name="bad", regions=(region, region), mix={"r": 1.0})
        with pytest.raises(WorkloadError):
            RegionSpec(name="r", kind="weird", bytes_per_instance=8192)
        with pytest.raises(WorkloadError):
            RegionSpec(name="r", kind="shared", bytes_per_instance=8192, sharing="mesh")
        with pytest.raises(WorkloadError):
            RegionSpec(name="r", kind="private", bytes_per_instance=100)

    def test_footprint_scaling_preserves_page_multiple(self):
        spec = build_spec("barnes").with_footprint_scale(16)
        for region in spec.regions:
            assert region.bytes_per_instance >= PAGE_SIZE
            assert region.bytes_per_instance % PAGE_SIZE == 0

    def test_scaled_accesses(self):
        spec = build_spec("barnes", total_accesses=100_000).scaled(0.1)
        assert spec.total_accesses == 10_000

    def test_with_threads_and_process(self):
        spec = build_spec("cholesky").with_threads(1, core_offset=8).with_process(2)
        assert spec.thread_count == 1
        assert spec.core_offset == 8
        assert spec.process_id == 2


class TestGeneration:
    def small_spec(self, name="barnes", accesses=4000):
        return build_spec(name, total_accesses=accesses).with_footprint_scale(32)

    def test_deterministic_for_seed(self):
        first = materialize(self.small_spec())
        second = materialize(self.small_spec())
        assert first == second

    def test_different_seed_differs(self):
        a = materialize(build_spec("barnes", total_accesses=2000, seed=1).with_footprint_scale(32))
        b = materialize(build_spec("barnes", total_accesses=2000, seed=2).with_footprint_scale(32))
        assert a != b

    def test_access_count_estimate(self):
        spec = self.small_spec()
        workload = SyntheticWorkload(spec)
        records = list(workload.generate())
        assert len(records) == workload.access_count_estimate()

    def test_all_cores_participate(self):
        records = materialize(self.small_spec())
        cores = {record.core for record in records}
        assert cores == set(range(16))

    def test_single_thread_uses_core_offset(self):
        spec = self.small_spec().with_threads(1, core_offset=9)
        records = materialize(spec)
        assert {record.core for record in records} == {9}

    def test_private_regions_only_touched_by_owner(self):
        spec = self.small_spec("cholesky", accesses=3000)
        workload = SyntheticWorkload(spec)
        private_ranges = {}
        for name, instances in workload._instances.items():
            for inst in instances:
                if inst.spec.kind == "private":
                    private_ranges[(inst.base_vaddr, inst.base_vaddr + inst.size_bytes)] = (
                        inst.owner_thread
                    )
        for record in workload.generate():
            for (start, end), owner in private_ranges.items():
                if start <= record.vaddr < end:
                    assert record.core == owner

    def test_producer_region_first_touched_by_thread_zero(self):
        spec = build_spec("blackscholes", total_accesses=2000).with_footprint_scale(32)
        workload = SyntheticWorkload(spec)
        portfolio = workload._instances["portfolio"][0]
        init_records = list(workload._init_phase())
        touched = {
            record.core
            for record in init_records
            if portfolio.base_vaddr <= record.vaddr < portfolio.base_vaddr + portfolio.size_bytes
        }
        assert touched == {0}

    def test_producer_region_only_written_by_thread_zero(self):
        # Regression: _pick_instance_and_chunk used to mark producer
        # regions owned=True for every thread, letting all threads write
        # data the model documents as init-by-thread-0 then read-shared.
        spec = build_spec("blackscholes", total_accesses=8000).with_footprint_scale(32)
        workload = SyntheticWorkload(spec)
        portfolio = workload._instances["portfolio"][0]
        start, end = portfolio.base_vaddr, portfolio.base_vaddr + portfolio.size_bytes
        readers, writers = set(), set()
        for record in workload._compute_phase():
            if start <= record.vaddr < end:
                (writers if record.is_write else readers).add(record.core)
        assert writers <= {0}
        assert len(readers) > 1  # still read-shared by the other threads

    def test_migratory_region_written_by_rotating_holders(self):
        spec = build_spec("migratory", total_accesses=6000).with_footprint_scale(4)
        workload = SyntheticWorkload(spec)
        guarded = workload._instances["guarded"][0]
        start, end = guarded.base_vaddr, guarded.base_vaddr + guarded.size_bytes
        writers = {
            record.core
            for record in workload._compute_phase()
            if start <= record.vaddr < end and record.is_write
        }
        # Ownership migrates: over a long run every thread gets to write.
        assert writers == set(range(spec.thread_count))

    def test_migratory_writes_come_in_single_holder_bursts(self):
        # Between handoffs only the current holder writes: the sequence
        # of writing cores must advance in rotation, never ping-pong.
        spec = build_spec("migratory", total_accesses=6000).with_footprint_scale(4)
        workload = SyntheticWorkload(spec)
        for region_name in ("locks", "guarded"):
            inst = workload._instances[region_name][0]
            start, end = inst.base_vaddr, inst.base_vaddr + inst.size_bytes
            write_cores = [
                record.core
                for record in SyntheticWorkload(spec)._compute_phase()
                if start <= record.vaddr < end and record.is_write
            ]
            transitions = [
                (a, b) for a, b in zip(write_cores, write_cores[1:]) if a != b
            ]
            assert transitions, f"{region_name}: expected an ownership handoff"
            for a, b in transitions:
                # Ownership only rotates forward.  A holder occasionally
                # finishes a burst without writing (write_fraction < 1),
                # so allow a few skipped holders — but never the backward
                # jumps a write ping-pong between two threads would show.
                assert (b - a) % spec.thread_count <= 3, (region_name, a, b)

    def test_footprint_reported(self):
        workload = build_workload("barnes", total_accesses=1000)
        assert workload.footprint_bytes() > 0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1000, max_value=4000))
    def test_compute_phase_access_count_exact(self, threads, accesses):
        spec = build_spec("dedup", total_accesses=accesses).with_footprint_scale(64)
        spec = spec.with_threads(threads)
        workload = SyntheticWorkload(spec)
        compute = list(workload._compute_phase())
        assert len(compute) == accesses
        assert {record.core for record in compute} <= set(range(threads))


class TestMultiProcess:
    def test_spec_builds_two_distinct_copies(self):
        mp = build_multiprocess_spec("barnes", total_accesses_per_copy=2000)
        assert mp.name == "barnes-2p"
        assert len(mp.copies) == 2
        assert mp.copies[0].process_id != mp.copies[1].process_id
        assert mp.copies[0].core_offset != mp.copies[1].core_offset
        assert all(copy.thread_count == 1 for copy in mp.copies)

    def test_rejects_non_study_benchmarks(self):
        with pytest.raises(WorkloadError):
            build_multiprocess_spec("blackscholes")
        with pytest.raises(WorkloadError):
            build_multiprocess_spec("barnes", cores=(3, 3))

    def test_generated_stream_interleaves_processes(self):
        mp = build_multiprocess_spec("cholesky", total_accesses_per_copy=1500)
        records = list(generate_multiprocess(mp))
        processes = {record.process_id for record in records}
        assert processes == {0, 1}
        cores = {record.core for record in records}
        assert cores == {0, 8}

    def test_interleave_helper_exhausts_all_streams(self):
        a = iter([1, 2, 3])
        b = iter([10])
        assert list(interleave([a, b])) == [1, 10, 2, 3]
