"""Tests for the sparse directory (probe filter) and allocation policies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.policy import (
    AllarmPolicy,
    BaselinePolicy,
    PhysicalRange,
    available_policies,
    make_policy,
)
from repro.core.probe_filter import ProbeFilter
from repro.errors import ConfigurationError, ProtocolError


class TestProbeFilterGeometry:
    def test_paper_coverage(self):
        pf = ProbeFilter(node_id=0)
        assert pf.entry_count == 8192
        assert pf.set_count == 2048
        assert pf.associativity == 4

    def test_invalid_coverage(self):
        with pytest.raises(ConfigurationError):
            ProbeFilter(node_id=0, coverage_bytes=0)
        with pytest.raises(ConfigurationError):
            ProbeFilter(node_id=0, coverage_bytes=1000)


class TestProbeFilterOperations:
    def make(self, coverage=4096, assoc=2):
        return ProbeFilter(node_id=1, coverage_bytes=coverage, associativity=assoc)

    def test_miss_then_hit(self):
        pf = self.make()
        assert pf.lookup(0x40) is None
        pf.allocate(0x40, owner=3)
        entry = pf.lookup(0x40)
        assert entry is not None
        assert entry.owner == 3
        assert pf.stats.hits == 1 and pf.stats.misses == 1

    def test_duplicate_allocation_rejected(self):
        pf = self.make()
        pf.allocate(0x40, owner=3)
        with pytest.raises(ProtocolError):
            pf.allocate(0x40, owner=4)

    def test_eviction_on_full_set(self):
        pf = self.make(coverage=2048, assoc=2)  # 16 sets of 2
        stride = 64 * pf.set_count
        pf.allocate(0 * stride, owner=0)
        pf.allocate(1 * stride, owner=1)
        outcome = pf.allocate(2 * stride, owner=2)
        assert outcome.caused_eviction
        assert pf.stats.evictions == 1
        assert outcome.victim is not None

    def test_eviction_counts_holder_invalidations(self):
        pf = self.make(coverage=2048, assoc=2)
        stride = 64 * pf.set_count
        pf.allocate(0 * stride, owner=0, sharers={1, 2})
        pf.allocate(1 * stride, owner=3)
        pf.allocate(2 * stride, owner=4)
        assert pf.stats.eviction_invalidations == 3  # owner 0 plus sharers 1, 2

    def test_deallocate(self):
        pf = self.make()
        pf.allocate(0x80, owner=5)
        entry = pf.deallocate(0x80)
        assert entry.owner == 5
        assert pf.lookup(0x80) is None
        assert pf.occupancy() == 0

    def test_deallocate_untracked_rejected(self):
        pf = self.make()
        with pytest.raises(ProtocolError):
            pf.deallocate(0x80)

    def test_holders_property(self):
        pf = self.make()
        outcome = pf.allocate(0x100, owner=2, sharers={4, 7})
        assert outcome.entry.holders == {2, 4, 7}
        assert outcome.entry.holder_count == 3

    def test_lru_protects_recently_touched_entry(self):
        pf = self.make(coverage=2048, assoc=2)
        stride = 64 * pf.set_count
        pf.allocate(0 * stride, owner=0)
        pf.allocate(1 * stride, owner=1)
        pf.lookup(0 * stride)  # refresh entry 0
        outcome = pf.allocate(2 * stride, owner=2)
        assert outcome.victim.line_address == 1 * stride

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=511), min_size=1, max_size=400))
    def test_occupancy_bounded_by_capacity(self, line_indices):
        pf = ProbeFilter(node_id=0, coverage_bytes=4096, associativity=4)
        for index in line_indices:
            address = index * 64
            if pf.peek(address) is None:
                pf.allocate(address, owner=index % 16)
        assert pf.occupancy() <= pf.entry_count
        assert pf.stats.allocations - pf.stats.evictions - pf.stats.deallocations == pf.occupancy()


class TestPhysicalRange:
    def test_contains(self):
        r = PhysicalRange(0x1000, 0x2000)
        assert r.contains(0x1000)
        assert r.contains(0x1FFF)
        assert not r.contains(0x2000)
        assert not r.contains(0xFFF)

    def test_invalid_range(self):
        with pytest.raises(ConfigurationError):
            PhysicalRange(0x2000, 0x2000)
        with pytest.raises(ConfigurationError):
            PhysicalRange(-1, 0x100)


class TestBaselinePolicy:
    def test_always_allocates(self):
        policy = BaselinePolicy()
        assert policy.should_allocate(0, 0, 0x40)
        assert policy.should_allocate(3, 0, 0x40)
        assert not policy.needs_local_probe(3, 0, 0x40)
        assert "baseline" in policy.describe()


class TestAllarmPolicy:
    def test_local_miss_skips_allocation(self):
        policy = AllarmPolicy()
        assert not policy.should_allocate(requester_node=5, home_node=5, line_address=0x40)
        assert policy.should_allocate(requester_node=4, home_node=5, line_address=0x40)

    def test_remote_miss_probes_local_cache(self):
        policy = AllarmPolicy()
        assert policy.needs_local_probe(4, 5, 0x40)
        assert not policy.needs_local_probe(5, 5, 0x40)

    def test_disabled_behaves_as_baseline(self):
        policy = AllarmPolicy(enabled=False)
        assert policy.should_allocate(5, 5, 0x40)
        assert not policy.needs_local_probe(4, 5, 0x40)
        assert "disabled" in policy.describe()

    def test_range_restriction(self):
        ranges = (PhysicalRange(0, 0x1000),)
        policy = AllarmPolicy(active_ranges=ranges)
        # Inside the range: ALLARM semantics.
        assert not policy.should_allocate(2, 2, 0x800)
        # Outside the range: baseline semantics.
        assert policy.should_allocate(2, 2, 0x2000)
        assert not policy.needs_local_probe(1, 2, 0x2000)
        assert "range" in policy.describe()

    def test_statelessness(self):
        # The decision depends only on the arguments, never on history.
        policy = AllarmPolicy()
        first = policy.should_allocate(1, 2, 0x40)
        for _ in range(10):
            policy.should_allocate(2, 2, 0x40)
        assert policy.should_allocate(1, 2, 0x40) == first

    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_allocate_iff_remote(self, requester, home, address):
        policy = AllarmPolicy()
        line = address * 64
        assert policy.should_allocate(requester, home, line) == (requester != home)
        assert policy.needs_local_probe(requester, home, line) == (requester != home)


class TestPolicyFactory:
    def test_names(self):
        assert available_policies() == ["baseline", "allarm"]

    def test_make(self):
        assert isinstance(make_policy("baseline"), BaselinePolicy)
        assert isinstance(make_policy("allarm"), AllarmPolicy)

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            make_policy("adaptive")
