"""Coverage for ``Machine._handle_evictions`` across notification modes.

The ``eviction_notification`` knob controls which L2 evictions inform the
home directory (so its probe-filter entry can be reclaimed) versus which
are silent:

* ``"owned"`` — notify on every owned-state eviction (M, O and clean E);
* ``"dirty"`` — notify only on dirty (M/O) evictions;
* ``"none"``  — never notify, but dirty data must still reach memory.

These tests drive a scaled-down machine through eviction-heavy traces
whose victim states are known by construction (stores leave MODIFIED
lines, first-reader loads leave clean EXCLUSIVE lines) and assert the
notification/writeback split each mode produces.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.system.config import experiment_config
from repro.system.machine import Machine

#: Enough distinct lines to overflow the scaled-down (8 kB, 128-line) L2
#: several times over.
LINE_COUNT = 600
LINE_SIZE = 64
BASE_VADDR = 0x10_0000


def _machine(mode: str) -> Machine:
    config = experiment_config("baseline", scale=16)
    config = replace(
        config, directory=replace(config.directory, eviction_notification=mode)
    )
    return Machine(config)


def _run_trace(machine: Machine, is_write: bool) -> None:
    """Touch LINE_COUNT distinct lines once, from core 0 only.

    Under first-touch allocation every page lands on node 0, so all the
    traffic is local and every L2 victim is homed at node 0's directory.
    """
    for index in range(LINE_COUNT):
        machine.perform_access(
            core=0,
            process_id=0,
            vaddr=BASE_VADDR + index * LINE_SIZE,
            is_write=is_write,
        )


def _notices(machine: Machine) -> int:
    return sum(n.directory.stats.cache_eviction_notices for n in machine.nodes)


def _writebacks(machine: Machine) -> int:
    return sum(n.memory_controller.stats.line_writebacks for n in machine.nodes)


class TestDirtyVictims:
    """Store-only trace: every L2 victim is MODIFIED (dirty and owned)."""

    @pytest.fixture(scope="class")
    def machines(self):
        machines = {}
        for mode in ("owned", "dirty", "none"):
            machine = _machine(mode)
            _run_trace(machine, is_write=True)
            machines[mode] = machine
        return machines

    def test_trace_produces_evictions(self, machines):
        # Sanity: the trace overflows the L2, otherwise nothing below means
        # anything.
        for machine in machines.values():
            assert machine.nodes[0].caches.l2.stats.evictions > 0

    def test_none_mode_is_silent(self, machines):
        assert _notices(machines["none"]) == 0

    def test_dirty_and_owned_notify_dirty_victims(self, machines):
        dirty_notices = _notices(machines["dirty"])
        assert dirty_notices > 0
        # Every victim is dirty, so the stronger "owned" mode notifies for
        # exactly the same set of victims.
        assert _notices(machines["owned"]) == dirty_notices

    def test_dirty_data_reaches_memory_in_every_mode(self, machines):
        # Whether or not the directory hears about the eviction, dirty
        # lines must be written back; "none" takes the silent-writeback
        # path through the memory controller.
        writebacks = {mode: _writebacks(m) for mode, m in machines.items()}
        assert writebacks["none"] > 0
        assert writebacks["none"] == writebacks["dirty"] == writebacks["owned"]


class TestCleanVictims:
    """Load-only trace: every L2 victim is clean EXCLUSIVE (owned, not dirty)."""

    @pytest.fixture(scope="class")
    def machines(self):
        machines = {}
        for mode in ("owned", "dirty", "none"):
            machine = _machine(mode)
            _run_trace(machine, is_write=False)
            machines[mode] = machine
        return machines

    def test_trace_produces_evictions(self, machines):
        for machine in machines.values():
            assert machine.nodes[0].caches.l2.stats.evictions > 0

    def test_only_owned_mode_notifies_clean_victims(self, machines):
        assert _notices(machines["owned"]) > 0
        assert _notices(machines["dirty"]) == 0
        assert _notices(machines["none"]) == 0

    def test_clean_victims_write_nothing_back(self, machines):
        for mode, machine in machines.items():
            assert _writebacks(machine) == 0, mode
