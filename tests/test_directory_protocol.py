"""Protocol-level tests for the directory controller with both policies.

These tests drive a small Machine directly through
``Machine.perform_access`` so that the full path — translation, cache
lookup, directory servicing, fills, evictions — is exercised with
hand-picked access sequences whose expected directory behaviour is known.
"""

from __future__ import annotations

import pytest

from repro.coherence.states import LineState
from repro.system.config import experiment_config
from repro.system.machine import Machine


def make_machine(policy: str) -> Machine:
    return Machine(experiment_config(policy, scale=16))


def local_vaddr(core: int, page: int = 0) -> int:
    """A virtual address that core will first-touch (hence home) itself."""
    return 0x10_0000 * (core + 1) + page * 4096


class TestLocalRequests:
    def test_baseline_local_miss_allocates_entry(self):
        machine = make_machine("baseline")
        machine.perform_access(core=3, process_id=0, vaddr=local_vaddr(3), is_write=False)
        node = machine.node(3)
        assert node.probe_filter.occupancy() == 1
        assert node.directory.stats.local_requests == 1

    def test_allarm_local_miss_skips_allocation(self):
        machine = make_machine("allarm")
        machine.perform_access(core=3, process_id=0, vaddr=local_vaddr(3), is_write=False)
        node = machine.node(3)
        assert node.probe_filter.occupancy() == 0
        assert node.directory.stats.local_requests == 1
        # The line is cached regardless.
        paddr = machine.allocator.translate(0, 3, local_vaddr(3))
        assert node.caches.holds_line(machine.address_map.line_address(paddr))

    def test_local_requests_generate_no_network_traffic(self):
        for policy in ("baseline", "allarm"):
            machine = make_machine(policy)
            machine.perform_access(core=2, process_id=0, vaddr=local_vaddr(2), is_write=True)
            assert machine.network.stats.bytes_injected == 0

    def test_repeated_access_hits_in_cache(self):
        machine = make_machine("allarm")
        latency_miss = machine.perform_access(0, 0, local_vaddr(0), is_write=False)
        latency_hit = machine.perform_access(0, 0, local_vaddr(0), is_write=False)
        assert latency_hit < latency_miss
        assert machine.node(0).directory.stats.total_requests == 1


class TestRemoteRequests:
    def test_remote_miss_allocates_under_both_policies(self):
        for policy in ("baseline", "allarm"):
            machine = make_machine(policy)
            # Core 1 first-touches a page (homed at node 1), core 6 reads it.
            vaddr = local_vaddr(1)
            machine.perform_access(1, 0, vaddr, is_write=False)
            machine.perform_access(6, 0, vaddr, is_write=False)
            home = machine.node(1)
            assert home.probe_filter.occupancy() >= 1
            assert home.directory.stats.remote_requests == 1

    def test_allarm_remote_miss_probes_local_cache(self):
        machine = make_machine("allarm")
        vaddr = local_vaddr(1)
        machine.perform_access(1, 0, vaddr, is_write=False)
        machine.perform_access(6, 0, vaddr, is_write=False)
        stats = machine.node(1).directory.stats
        assert stats.local_probes_sent == 1
        assert stats.local_probes_found_line == 1

    def test_allarm_probe_hidden_when_line_uncached_locally(self):
        machine = make_machine("allarm")
        # Core 6 touches a page homed at node 6?  No: we need a page homed at
        # a node whose local core never touched it.  Use process 0 core 1 to
        # first-touch, then flush nothing — instead pick a fresh page whose
        # first toucher is remote relative to the home of the spilled page.
        # Simpler: core 1 touches its page, core 6 reads twice; by the second
        # read the entry exists, so instead verify hidden-probe accounting on
        # a page the home core wrote and then lost from its cache is covered
        # by the integration tests.  Here: first remote reader of a line the
        # home core holds -> probe not hidden.
        vaddr = local_vaddr(1)
        machine.perform_access(1, 0, vaddr, is_write=False)
        machine.perform_access(6, 0, vaddr, is_write=False)
        stats = machine.node(1).directory.stats
        assert stats.local_probes_hidden == 0

    def test_remote_write_invalidates_local_untracked_copy(self):
        machine = make_machine("allarm")
        vaddr = local_vaddr(2)
        machine.perform_access(2, 0, vaddr, is_write=True)   # local M, untracked
        machine.perform_access(9, 0, vaddr, is_write=True)   # remote write
        paddr = machine.allocator.translate(0, 2, vaddr)
        line = machine.address_map.line_address(paddr)
        assert not machine.node(2).caches.holds_line(line)
        assert machine.node(9).caches.coherence_state(line) is LineState.MODIFIED
        entry = machine.node(2).probe_filter.peek(line)
        assert entry is not None and entry.owner == 9

    def test_remote_read_downgrades_owner_and_shares(self):
        machine = make_machine("baseline")
        vaddr = local_vaddr(4)
        machine.perform_access(4, 0, vaddr, is_write=True)
        machine.perform_access(11, 0, vaddr, is_write=False)
        paddr = machine.allocator.translate(0, 4, vaddr)
        line = machine.address_map.line_address(paddr)
        assert machine.node(4).caches.coherence_state(line) in (
            LineState.OWNED,
            LineState.SHARED,
        )
        assert machine.node(11).caches.coherence_state(line) in (
            LineState.SHARED,
            LineState.EXCLUSIVE,
        )

    def test_write_after_read_upgrade(self):
        machine = make_machine("baseline")
        vaddr = local_vaddr(5)
        machine.perform_access(5, 0, vaddr, is_write=False)
        machine.perform_access(12, 0, vaddr, is_write=False)
        machine.perform_access(12, 0, vaddr, is_write=True)
        paddr = machine.allocator.translate(0, 5, vaddr)
        line = machine.address_map.line_address(paddr)
        assert machine.node(12).caches.coherence_state(line) is LineState.MODIFIED
        assert not machine.node(5).caches.holds_line(line)

    def test_remote_traffic_accounted(self):
        machine = make_machine("baseline")
        vaddr = local_vaddr(1)
        machine.perform_access(1, 0, vaddr, is_write=False)
        machine.perform_access(14, 0, vaddr, is_write=False)
        # At least the request and the data response crossed the mesh.
        assert machine.network.stats.bytes_injected >= 8 + 72


class TestEvictionFlows:
    def test_probe_filter_eviction_invalidates_caches(self):
        machine = make_machine("baseline")
        node = machine.node(0)
        pf = node.probe_filter
        stride_lines = pf.set_count  # lines mapping to the same PF set
        page_span = 4096

        # Touch enough lines mapping to one probe-filter set to overflow it.
        conflicting = []
        for i in range(pf.associativity + 1):
            vaddr = 0x40_0000 + i * stride_lines * 64
            machine.perform_access(0, 0, vaddr, is_write=False)
            paddr = machine.allocator.translate(0, 0, vaddr)
            conflicting.append(machine.address_map.line_address(paddr))
        # All lines land on node 0 (first touch by core 0); if they share a
        # set the oldest entry must have been evicted and its line dropped.
        homed = [line for line in conflicting if machine.address_map.home_node(line) == 0]
        if pf.stats.evictions:
            assert node.directory.stats.eviction_messages >= 2
            assert any(not node.caches.holds_line(line) for line in homed)

    def test_dirty_cache_eviction_writes_back(self):
        machine = make_machine("allarm")
        node = machine.node(0)
        l2_lines = node.caches.l2.capacity_lines
        # Stream enough distinct written lines through core 0 to force L2
        # evictions of dirty, locally-homed, untracked lines.
        for i in range(l2_lines + 32):
            machine.perform_access(0, 0, 0x200_0000 + i * 64, is_write=True)
        assert node.dram.stats.writes > 0
        assert node.directory.stats.untracked_local_writebacks > 0


class TestPaperConfigSmoke:
    def test_paper_config_machine_services_accesses(self, paper_cfg):
        machine = Machine(paper_cfg)
        latency = machine.perform_access(0, 0, 0x1234, is_write=False)
        assert latency > 0
        assert machine.transactions_serviced == 1
