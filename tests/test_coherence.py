"""Tests for MOESI states, message sizing and transaction records."""

from __future__ import annotations

import pytest

from repro.coherence.messages import (
    Message,
    MessageClass,
    MessageFactory,
    MessageSizing,
    MessageType,
)
from repro.coherence.states import LineState, fill_state
from repro.coherence.transactions import DataSource, RequestKind, Transaction
from repro.errors import ConfigurationError


class TestLineState:
    def test_validity(self):
        assert not LineState.INVALID.is_valid
        for state in (LineState.MODIFIED, LineState.OWNED, LineState.EXCLUSIVE, LineState.SHARED):
            assert state.is_valid

    def test_dirtiness(self):
        assert LineState.MODIFIED.is_dirty
        assert LineState.OWNED.is_dirty
        assert not LineState.EXCLUSIVE.is_dirty
        assert not LineState.SHARED.is_dirty
        assert not LineState.INVALID.is_dirty

    def test_write_permission(self):
        assert LineState.MODIFIED.can_write
        assert LineState.EXCLUSIVE.can_write
        assert not LineState.SHARED.can_write
        assert not LineState.OWNED.can_write

    def test_ownership(self):
        assert LineState.MODIFIED.is_owner
        assert LineState.OWNED.is_owner
        assert LineState.EXCLUSIVE.is_owner
        assert not LineState.SHARED.is_owner

    def test_silent_write_transition(self):
        assert LineState.EXCLUSIVE.after_local_write() is LineState.MODIFIED
        assert LineState.MODIFIED.after_local_write() is LineState.MODIFIED

    def test_silent_write_rejected_for_shared(self):
        with pytest.raises(ValueError):
            LineState.SHARED.after_local_write()

    def test_remote_read_downgrades(self):
        assert LineState.MODIFIED.after_remote_read() is LineState.OWNED
        assert LineState.EXCLUSIVE.after_remote_read() is LineState.SHARED
        assert LineState.OWNED.after_remote_read() is LineState.OWNED
        assert LineState.SHARED.after_remote_read() is LineState.SHARED

    def test_remote_read_of_invalid_rejected(self):
        with pytest.raises(ValueError):
            LineState.INVALID.after_remote_read()

    def test_remote_write_invalidates(self):
        for state in (LineState.MODIFIED, LineState.SHARED, LineState.EXCLUSIVE):
            assert state.after_remote_write() is LineState.INVALID

    def test_fill_state(self):
        assert fill_state(is_write=True, had_other_sharers=False) is LineState.MODIFIED
        assert fill_state(is_write=True, had_other_sharers=True) is LineState.MODIFIED
        assert fill_state(is_write=False, had_other_sharers=False) is LineState.EXCLUSIVE
        assert fill_state(is_write=False, had_other_sharers=True) is LineState.SHARED


class TestMessageSizing:
    def test_table1_defaults(self):
        sizing = MessageSizing()
        assert sizing.size_of(MessageType.GET_SHARED) == 8
        assert sizing.size_of(MessageType.DATA_FROM_MEMORY) == 72
        assert sizing.flits_of(MessageType.GET_SHARED) == 2
        assert sizing.flits_of(MessageType.DATA_FROM_MEMORY) == 18

    def test_control_vs_data_classification(self):
        assert MessageType.INVALIDATE.message_class is MessageClass.CONTROL
        assert MessageType.ACK.message_class is MessageClass.CONTROL
        assert MessageType.LOCAL_STATE_PROBE.message_class is MessageClass.CONTROL
        assert MessageType.WRITEBACK_DATA.message_class is MessageClass.DATA
        assert MessageType.DATA_FROM_OWNER.message_class is MessageClass.DATA

    def test_invalid_sizing_rejected(self):
        with pytest.raises(ConfigurationError):
            MessageSizing(control_bytes=0)
        with pytest.raises(ConfigurationError):
            MessageSizing(flit_bytes=0)
        with pytest.raises(ConfigurationError):
            MessageSizing(control_bytes=80, data_bytes=72)

    def test_flit_count_rounds_up(self):
        sizing = MessageSizing(control_bytes=9, data_bytes=73, flit_bytes=4)
        assert sizing.flits_of(MessageType.ACK) == 3
        assert sizing.flits_of(MessageType.WRITEBACK_DATA) == 19


class TestMessageFactory:
    def test_factory_stamps_size_and_flits(self):
        factory = MessageFactory()
        message = factory.make(MessageType.GET_EXCLUSIVE, src=1, dst=5, line_address=0x40)
        assert message.size_bytes == 8
        assert message.flits == 2
        assert not message.is_data
        assert not message.is_local

    def test_local_message_detection(self):
        factory = MessageFactory()
        message = factory.make(MessageType.LOCAL_STATE_PROBE, src=3, dst=3, line_address=0)
        assert message.is_local

    def test_message_ids_unique(self):
        factory = MessageFactory()
        ids = {factory.make(MessageType.ACK, 0, 1, 0).msg_id for _ in range(100)}
        assert len(ids) == 100


class TestTransaction:
    def test_local_request_detection(self):
        txn = Transaction(requester=4, home=4, line_address=0x80, kind=RequestKind.READ)
        assert txn.is_local_request
        txn2 = Transaction(requester=4, home=5, line_address=0x80, kind=RequestKind.WRITE)
        assert not txn2.is_local_request

    def test_network_bytes_ignores_local_messages(self):
        factory = MessageFactory()
        txn = Transaction(requester=0, home=1, line_address=0, kind=RequestKind.READ)
        txn.add_message(factory.make(MessageType.GET_SHARED, 0, 1, 0))
        txn.add_message(factory.make(MessageType.LOCAL_STATE_PROBE, 1, 1, 0))
        txn.add_message(factory.make(MessageType.DATA_FROM_MEMORY, 1, 0, 0))
        assert txn.network_bytes == 8 + 72
        assert txn.message_count == 3

    def test_add_message_tags_transaction(self):
        factory = MessageFactory()
        txn = Transaction(requester=0, home=1, line_address=0, kind=RequestKind.READ)
        message = factory.make(MessageType.ACK, 1, 0, 0)
        txn.add_message(message)
        assert message.transaction_id == txn.txn_id

    def test_request_kind_flags(self):
        assert RequestKind.WRITE.is_write
        assert not RequestKind.READ.is_write

    def test_default_data_source(self):
        txn = Transaction(requester=0, home=1, line_address=0, kind=RequestKind.READ)
        assert txn.data_source is DataSource.NONE
