"""Golden-snapshot corpus: round trip, tamper detection, mutation strength.

The corpus layer (:mod:`repro.stats.goldens`) is the conformance
instrument that survives refactors of *both* engines, so its own failure
modes are tested here: a recorded corpus must verify cleanly, any
mutation of the stored digests must fail ``check``, and — the mutation
strength test — an injected corruption of the packed eviction
bookkeeping must be caught by **both** layers independently: the machine
invariants (structural residue) and the golden check (behavioural
digest drift against frozen history).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.plan import RunSpec
from repro.coherence.invariants import (
    check_machine_invariants,
    check_packed_eviction_bookkeeping,
)
from repro.core.packed_directory import PackedDirectoryFastPath
from repro.errors import ProtocolError, SimulationError
from repro.stats.goldens import (
    GOLDEN_SETTINGS,
    check_corpus,
    golden_specs,
    load_corpus,
    record_corpus,
    run_golden_spec,
    snapshot_digest,
    spec_key,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
COMMITTED_CORPUS = REPO_ROOT / "tests" / "golden" / "corpus.json"

#: A reduced grid for the round-trip tests: one eviction-heavy run (the
#: starved filter keeps the packed fan-out path hot) and one hit-heavy.
MINI_SPECS = (
    RunSpec("stream-scan", "baseline", pf_size=32 * 1024, settings=GOLDEN_SETTINGS),
    RunSpec("hotspot", "allarm", pf_size=512 * 1024, settings=GOLDEN_SETTINGS),
)


class TestRoundTrip:
    def test_record_then_check_passes_on_both_engines(self, tmp_path):
        path = tmp_path / "corpus.json"
        corpus = record_corpus(path, specs=MINI_SPECS)
        assert len(corpus["entries"]) == len(MINI_SPECS)
        assert check_corpus(path, specs=MINI_SPECS) == []
        assert check_corpus(path, engine="reference", specs=MINI_SPECS) == []

    def test_digest_is_engine_independent_and_key_excludes_engine(self):
        spec = MINI_SPECS[0]
        packed = snapshot_digest(run_golden_spec(spec, "packed"))
        reference = snapshot_digest(run_golden_spec(spec, "reference"))
        assert packed == reference
        assert spec_key(spec) == spec_key(spec.with_engine("reference"))
        assert "engine" not in spec_key(spec)

    def test_missing_file_and_bad_schema_are_clean_errors(self, tmp_path):
        with pytest.raises(SimulationError, match="does not exist"):
            load_corpus(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 99, "entries": {}}))
        with pytest.raises(SimulationError, match="schema"):
            load_corpus(bad)
        bad.write_text("not json at all {")
        with pytest.raises(SimulationError, match="unreadable"):
            load_corpus(bad)

    def test_committed_corpus_covers_the_full_grid(self):
        corpus = load_corpus(COMMITTED_CORPUS)
        keys = set(corpus["entries"])
        assert keys == {spec_key(spec) for spec in golden_specs()}


class TestTamperDetection:
    def _recorded(self, tmp_path) -> Path:
        path = tmp_path / "corpus.json"
        record_corpus(path, specs=MINI_SPECS)
        return path

    def test_mutated_digest_fails_check(self, tmp_path):
        path = self._recorded(tmp_path)
        corpus = json.loads(path.read_text())
        key = spec_key(MINI_SPECS[0])
        digest = corpus["entries"][key]["digest"]
        flipped = ("0" if digest[0] != "0" else "1") + digest[1:]
        corpus["entries"][key]["digest"] = flipped
        path.write_text(json.dumps(corpus))
        problems = check_corpus(path, specs=MINI_SPECS)
        assert len(problems) == 1
        assert "digest" in problems[0]
        assert "stream-scan" in problems[0]

    def test_missing_and_stale_entries_are_reported(self, tmp_path):
        path = self._recorded(tmp_path)
        corpus = json.loads(path.read_text())
        removed = corpus["entries"].pop(spec_key(MINI_SPECS[0]))
        corpus["entries"]["{\"benchmark\": \"ghost\"}"] = removed
        path.write_text(json.dumps(corpus))
        problems = check_corpus(path, specs=MINI_SPECS)
        assert any("no recorded golden entry" in p for p in problems)
        assert any("stale corpus entry" in p for p in problems)


class TestCommittedCorpusConformance:
    """The PR's acceptance gate: current code matches the frozen history."""

    def test_packed_engine_matches_committed_corpus(self):
        assert check_corpus(COMMITTED_CORPUS, engine="packed") == []


def _drive_eviction_heavy_machine(monkeypatch):
    """A packed machine driven until probe-filter evictions occurred."""
    from repro.system.simulator import Simulator

    monkeypatch.delenv("REPRO_PACKED_DEFER", raising=False)
    spec = MINI_SPECS[0]
    simulator = Simulator(spec.config(), engine="packed")
    simulator.run(spec.access_stream(), spec.workload_name)
    machine = simulator.machine
    assert machine.nodes[0].probe_filter.evictions > 0
    assert machine.deferred_misses == 0
    return machine


class TestMutationStrength:
    """Injected eviction-bookkeeping corruption must not survive either layer."""

    def test_invariants_catch_residual_stamp_on_free_slot(self, monkeypatch):
        machine = _drive_eviction_heavy_machine(monkeypatch)
        check_machine_invariants(machine)  # sane before corruption
        pf = machine.nodes[0].probe_filter
        # The starved filter is full; free a way legitimately, then
        # simulate a deallocation that forgot to reset its recency.
        pf.deallocate(next(tag for tag in pf.tags if tag >= 0))
        free_slot = pf.tags.index(-1)
        pf.stamps[free_slot] = 7
        with pytest.raises(ProtocolError, match="residual LRU stamp"):
            check_packed_eviction_bookkeeping(machine)

    def test_invariants_catch_residual_state_in_cache(self, monkeypatch):
        machine = _drive_eviction_heavy_machine(monkeypatch)
        l2 = machine.nodes[1].caches.l2
        free_slot = l2.tags.index(-1)
        l2.states[free_slot] = 2  # invalidation that forgot the state byte
        with pytest.raises(ProtocolError, match="residual state code"):
            check_packed_eviction_bookkeeping(machine)

    def test_invariants_catch_stamp_beyond_monotonic_counter(self, monkeypatch):
        machine = _drive_eviction_heavy_machine(monkeypatch)
        pf = machine.nodes[0].probe_filter
        occupied = next(s for s in range(pf.entry_count) if pf.tags[s] >= 0)
        pf.stamps[occupied] = pf.stamp + 100
        with pytest.raises(ProtocolError, match="monotonic counter"):
            check_packed_eviction_bookkeeping(machine)

    def test_golden_check_catches_corrupted_eviction_fanout(
        self, tmp_path, monkeypatch
    ):
        # Record with healthy code, then break the packed eviction
        # fan-out (drop every invalidation) and re-check: the digest of
        # the eviction-heavy run must drift from the frozen history, and
        # the headline diagnosis must point at the eviction counters.
        path = tmp_path / "corpus.json"
        monkeypatch.delenv("REPRO_PACKED_DEFER", raising=False)
        record_corpus(path, specs=MINI_SPECS[:1])
        monkeypatch.setattr(
            PackedDirectoryFastPath,
            "_evict_victim",
            lambda self, line_address, holder_mask: None,
        )
        problems = check_corpus(path, specs=MINI_SPECS[:1])
        assert len(problems) == 1
        assert "eviction_messages" in problems[0]
