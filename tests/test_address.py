"""Tests for physical/virtual address arithmetic and home-node mapping."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import AddressError, ConfigurationError
from repro.memory.address import AddressMap, VirtualAddressSpace, is_power_of_two, log2_exact


class TestPowerOfTwoHelpers:
    def test_powers_of_two_detected(self):
        for exponent in range(0, 20):
            assert is_power_of_two(1 << exponent)

    def test_non_powers_rejected(self):
        for value in (0, -1, 3, 6, 12, 100):
            assert not is_power_of_two(value)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(64) == 6
        assert log2_exact(4096) == 12

    def test_log2_exact_rejects_non_power(self):
        with pytest.raises(ConfigurationError):
            log2_exact(48)


class TestAddressMapGeometry:
    def test_paper_defaults(self, address_map):
        assert address_map.node_count == 16
        assert address_map.bytes_per_node == 128 * 1024 * 1024
        assert address_map.pages_per_node == 32768
        assert address_map.lines_per_page == 64
        assert address_map.total_frames == 16 * 32768

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigurationError):
            AddressMap(line_size=48)

    def test_rejects_page_smaller_than_line(self):
        with pytest.raises(ConfigurationError):
            AddressMap(line_size=4096, page_size=64)

    def test_rejects_indivisible_memory(self):
        with pytest.raises(ConfigurationError):
            AddressMap(node_count=3, memory_bytes=1024 * 1024 * 1024 + 1)


class TestLineAndPageMath:
    def test_line_alignment(self, address_map):
        assert address_map.line_address(0x1000) == 0x1000
        assert address_map.line_address(0x103F) == 0x1000
        assert address_map.line_address(0x1040) == 0x1040

    def test_line_offset(self, address_map):
        assert address_map.line_offset(0x1000) == 0
        assert address_map.line_offset(0x1001) == 1
        assert address_map.line_offset(0x103F) == 63

    def test_page_alignment(self, address_map):
        assert address_map.page_address(0x1234) == 0x1000
        assert address_map.page_offset(0x1234) == 0x234

    def test_out_of_range_address_rejected(self, address_map):
        with pytest.raises(AddressError):
            address_map.line_address(address_map.memory_bytes)
        with pytest.raises(AddressError):
            address_map.line_address(-1)

    def test_frame_base_round_trip(self, address_map):
        frame = 12345
        base = address_map.frame_base(frame)
        assert address_map.page_number(base) == frame

    def test_frame_out_of_range(self, address_map):
        with pytest.raises(AddressError):
            address_map.frame_base(address_map.total_frames)


class TestHomeNodeMapping:
    def test_first_and_last_node(self, address_map):
        assert address_map.home_node(0) == 0
        assert address_map.home_node(address_map.memory_bytes - 1) == 15

    def test_boundaries(self, address_map):
        per_node = address_map.bytes_per_node
        assert address_map.home_node(per_node - 1) == 0
        assert address_map.home_node(per_node) == 1

    def test_node_address_range_matches_home(self, address_map):
        for node in range(address_map.node_count):
            addr_range = address_map.node_address_range(node)
            assert address_map.home_node(addr_range.start) == node
            assert address_map.home_node(addr_range[-1]) == node

    def test_node_frame_range(self, address_map):
        frames = address_map.node_frame_range(3)
        assert address_map.home_node_of_frame(frames.start) == 3
        assert address_map.home_node_of_frame(frames[-1]) == 3

    def test_invalid_node_rejected(self, address_map):
        with pytest.raises(AddressError):
            address_map.node_frame_range(16)
        with pytest.raises(AddressError):
            address_map.node_address_range(-1)

    @given(st.integers(min_value=0, max_value=2 * 1024 * 1024 * 1024 - 1))
    def test_home_node_always_valid(self, address):
        amap = AddressMap()
        assert 0 <= amap.home_node(address) < amap.node_count

    @given(st.integers(min_value=0, max_value=2 * 1024 * 1024 * 1024 - 1))
    def test_line_address_is_aligned_and_contains(self, address):
        amap = AddressMap()
        line = amap.line_address(address)
        assert line % amap.line_size == 0
        assert line <= address < line + amap.line_size

    @given(st.integers(min_value=0, max_value=2 * 1024 * 1024 * 1024 - 1))
    def test_line_and_page_consistent_home(self, address):
        amap = AddressMap()
        # A line never spans nodes, so its home equals its address's home.
        assert amap.home_node(amap.line_address(address)) == amap.home_node(address)


class TestVirtualAddressSpace:
    def test_page_number_and_offset(self):
        vas = VirtualAddressSpace()
        assert vas.page_number(0x5000) == 5
        assert vas.page_offset(0x5123) == 0x123

    def test_out_of_range(self):
        vas = VirtualAddressSpace(size_bytes=1 << 20)
        with pytest.raises(AddressError):
            vas.page_number(1 << 20)
        with pytest.raises(AddressError):
            vas.page_offset(-1)

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            VirtualAddressSpace(page_size=1000)
