"""Sharded and resumed replay: bit-identity, manifest guards, CLI.

The contract under test: replaying a v3.1 epoch-indexed trace serially
with checkpoints, resuming after a simulated kill, or sharding epochs
over a process pool must all end in a snapshot bit-identical
(``snapshot_diff == []``) to a plain single-process replay — on both
the packed and batched engines, across the golden-corpus families.
"""

from __future__ import annotations

import pytest

from repro.analysis.shard import (
    ShardManifest,
    latest_checkpoint,
    load_manifest,
    partition_epochs,
    record_checkpoints,
    replay_sharded,
    write_manifest,
)
from repro.errors import SimulationError, WorkloadError
from repro.stats.compare import snapshot_diff
from repro.stats.goldens import golden_specs
from repro.system.simulator import simulate
from repro.trace.binary import write_trace_v3
from repro.trace.io import read_trace, read_trace_chunks

BLOCK = 256
EPOCH = 512


def _grid():
    """A family-covering slice of the golden grid: allarm + starved
    filter for each microbenchmark family, plus the 2-process layout."""
    specs = golden_specs()
    return [specs[3], specs[7], specs[11], specs[15], specs[17]]


def _write_trace(spec, path):
    records = list(spec.access_stream())
    write_trace_v3(path, records, block_records=BLOCK, epoch_records=EPOCH)
    return records


def _plain_snapshot(config, trace, engine):
    accesses = (
        read_trace_chunks(trace) if engine == "batched" else read_trace(trace)
    )
    return simulate(config, accesses, engine=engine).snapshot


@pytest.mark.parametrize("engine", ("packed", "batched"))
def test_golden_grid_sharded_and_resumed_bit_identical(tmp_path, engine):
    for index, spec in enumerate(_grid()):
        config = spec.config()
        trace = tmp_path / f"{index}.rpt3"
        _write_trace(spec, trace)
        base = _plain_snapshot(config, trace, engine)

        # Serial checkpointed replay.
        ckpt = tmp_path / f"ck-{index}"
        serial = record_checkpoints(config, trace, EPOCH, ckpt, engine=engine)
        assert snapshot_diff(base, serial.snapshot) == []

        # Kill/resume: drop every checkpoint after epoch 1 (as if the run
        # died mid-epoch-2) and resume; the directory refills and the
        # final snapshot is unchanged.
        for path in sorted(ckpt.glob("epoch-*.ckpt"))[1:]:
            path.unlink()
        resumed = record_checkpoints(
            config, trace, EPOCH, ckpt, engine=engine, resume=True
        )
        assert snapshot_diff(base, resumed.snapshot) == []
        epoch, _path = latest_checkpoint(ckpt)
        assert epoch >= 1

        # Sharded across a real process pool (>= 2 workers).
        sharded = replay_sharded(config, trace, 2, ckpt, engine=engine)
        assert snapshot_diff(base, sharded.snapshot) == []
        assert len(sharded.spans) == 2
        assert sharded.accesses_simulated == serial.accesses_simulated


def test_sharded_requires_epoch_index(tmp_path):
    spec = _grid()[0]
    trace = tmp_path / "plain.rpt3"
    records = list(spec.access_stream())
    write_trace_v3(trace, records, block_records=BLOCK)  # no epoch index
    with pytest.raises(WorkloadError, match="epoch index"):
        replay_sharded(spec.config(), trace, 2, tmp_path / "ck")


def test_sharded_requires_recorded_checkpoints(tmp_path):
    spec = _grid()[0]
    trace = tmp_path / "t.rpt3"
    _write_trace(spec, trace)
    with pytest.raises(SimulationError, match="serial checkpointed replay"):
        replay_sharded(spec.config(), trace, 2, tmp_path / "empty")


def test_manifest_guards_against_mixed_directories(tmp_path):
    spec = _grid()[0]
    config = spec.config()
    trace = tmp_path / "t.rpt3"
    _write_trace(spec, trace)
    ckpt = tmp_path / "ck"
    record_checkpoints(config, trace, EPOCH, ckpt, engine="packed")
    # Same directory, different epoch size: refused, not silently mixed.
    with pytest.raises(SimulationError, match="checkpoint directory"):
        record_checkpoints(config, trace, EPOCH * 2, ckpt, engine="packed")
    # Different engine: also refused.
    with pytest.raises(SimulationError, match="checkpoint directory"):
        replay_sharded(config, trace, 2, ckpt, engine="batched")


def test_manifest_round_trip(tmp_path):
    manifest = ShardManifest(
        trace_name="t.rpt3",
        trace_records=4096,
        epoch_records=512,
        engine="packed",
        config_digest="abc123",
    )
    write_manifest(tmp_path, manifest)
    assert load_manifest(tmp_path) == manifest
    assert manifest.epochs == 8
    assert load_manifest(tmp_path / "absent") is None


def test_partition_epochs_contiguous_and_balanced():
    assert partition_epochs(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]
    assert partition_epochs(5, 2) == [(0, 3), (3, 5)]
    assert partition_epochs(3, 8) == [(0, 1), (1, 2), (2, 3)]
    assert partition_epochs(0, 4) == []


def test_resume_on_batched_without_index_is_actionable(tmp_path):
    spec = _grid()[0]
    config = spec.config()
    trace = tmp_path / "plain.rpt3"
    records = list(spec.access_stream())
    write_trace_v3(trace, records, block_records=BLOCK)
    ckpt = tmp_path / "ck"
    # Fresh batched run works without an index...
    result = record_checkpoints(config, trace, EPOCH, ckpt, engine="batched")
    base = _plain_snapshot(config, trace, "batched")
    assert snapshot_diff(base, result.snapshot) == []
    # ...but a mid-trace resume cannot seek and says how to fix it.
    for path in sorted(ckpt.glob("epoch-*.ckpt"))[1:]:
        path.unlink()
    with pytest.raises(SimulationError, match="epoch-records"):
        record_checkpoints(
            config, trace, EPOCH, ckpt, engine="batched", resume=True
        )


class TestReplayCli:
    def _trace(self, tmp_path):
        spec = _grid()[0]
        trace = tmp_path / "t.rpt3"
        _write_trace(spec, trace)
        return trace

    def test_serial_resume_and_sharded_modes(self, tmp_path, capsys):
        from repro.__main__ import main

        trace = self._trace(tmp_path)
        ckpt = tmp_path / "ck"
        base = [
            "replay",
            str(trace),
            "--checkpoint-dir",
            str(ckpt),
            "--scale",
            "16",
            "--pf-size",
            str(32 * 1024),
        ]
        assert main(base + ["--epoch-records", str(EPOCH)]) == 0
        out = capsys.readouterr().out
        assert "replayed to access" in out
        assert latest_checkpoint(ckpt) is not None

        assert main(base + ["--epoch-records", str(EPOCH), "--resume"]) == 0
        assert "replayed to access" in capsys.readouterr().out

        assert main(base + ["--shards", "2"]) == 0
        assert "2 shards" in capsys.readouterr().out

    def test_serial_mode_requires_epoch_records(self, tmp_path, capsys):
        from repro.__main__ import main

        trace = self._trace(tmp_path)
        code = main(
            ["replay", str(trace), "--checkpoint-dir", str(tmp_path / "ck")]
        )
        assert code == 2
        assert "--epoch-records" in capsys.readouterr().err
