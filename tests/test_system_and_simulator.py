"""Tests for configuration, the machine builder, the simulator and events."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.stats.compare import RunComparison, geometric_mean, safe_ratio
from repro.stats.snapshot import collect
from repro.system.config import (
    DEFAULT_EXPERIMENT_SCALE,
    SystemConfig,
    experiment_config,
    paper_config,
    scaled_config,
)
from repro.system.event_queue import EventQueue
from repro.system.machine import Machine
from repro.system.simulator import Simulator, simulate
from repro.trace.record import AccessRecord, AccessType
from repro.workloads.base import SyntheticWorkload
from repro.workloads.registry import build_spec


class TestSystemConfig:
    def test_table1_defaults(self):
        config = paper_config()
        table = config.describe()
        assert table["Cores"] == "16"
        assert "256 kB" in table["L2 Cache"]
        assert "512 kB" in table["Directory"]
        assert table["Topology"] == "4x4 mesh"
        assert config.address_map().node_count == 16

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(directory_policy="magic")

    def test_core_count_must_match_mesh(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(core_count=8)

    def test_with_helpers_produce_copies(self):
        config = paper_config("baseline")
        allarm = config.with_policy("allarm")
        small_pf = config.with_probe_filter_coverage(128 * 1024)
        assert config.directory_policy == "baseline"
        assert allarm.uses_allarm
        assert small_pf.directory.probe_filter_coverage == 128 * 1024

    def test_scaled_config_sweeps(self):
        config = scaled_config("allarm", probe_filter_coverage=64 * 1024)
        assert config.directory.probe_filter_coverage == 64 * 1024

    def test_experiment_config_scales_proportionally(self):
        config = experiment_config("allarm", scale=8)
        assert config.core.l2_size == 256 * 1024 // 8
        assert config.directory.probe_filter_coverage == 512 * 1024 // 8
        # The 2x coverage ratio of Table I is preserved.
        assert config.directory.probe_filter_coverage == 2 * config.core.l2_size
        assert DEFAULT_EXPERIMENT_SCALE >= 1

    def test_experiment_config_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            experiment_config(scale=0)

    def test_eviction_notification_validated(self):
        from dataclasses import replace

        config = paper_config()
        with pytest.raises(ConfigurationError):
            replace(config.directory, eviction_notification="sometimes")

    def test_disabled_nodes_validated(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(allarm_disabled_nodes=(99,))


class TestMachine:
    def test_builds_sixteen_nodes(self, small_baseline_cfg):
        machine = Machine(small_baseline_cfg)
        assert len(machine.nodes) == 16
        assert machine.node(5).directory.policy.name == "baseline"

    def test_allarm_policy_installed(self, small_allarm_cfg):
        machine = Machine(small_allarm_cfg)
        assert machine.node(0).directory.policy.name == "allarm"

    def test_allarm_disabled_nodes(self):
        config = experiment_config("allarm", scale=16, allarm_disabled_nodes=(2,))
        machine = Machine(config)
        assert machine.node(2).directory.policy.enabled is False
        assert machine.node(3).directory.policy.enabled is True

    def test_node_bounds(self, small_baseline_cfg):
        machine = Machine(small_baseline_cfg)
        with pytest.raises(ConfigurationError):
            machine.node(16)

    def test_home_directory_matches_address_map(self, small_baseline_cfg):
        machine = Machine(small_baseline_cfg)
        paddr = machine.address_map.bytes_per_node * 7 + 128
        assert machine.home_directory(paddr).node_id == 7


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(10, lambda: fired.append("b"), "b")
        queue.schedule(5, lambda: fired.append("a"), "a")
        queue.schedule(15, lambda: fired.append("c"), "c")
        queue.run()
        assert fired == ["a", "b", "c"]
        assert queue.now_ns == 15

    def test_equal_timestamps_preserve_insertion_order(self):
        queue = EventQueue()
        fired = []
        for name in "abc":
            queue.schedule(5, lambda n=name: fired.append(n))
        queue.run()
        assert fired == ["a", "b", "c"]

    def test_cancellation(self):
        queue = EventQueue()
        fired = []
        handle = queue.schedule(5, lambda: fired.append("x"))
        handle.cancel()
        queue.run()
        assert fired == []

    def test_schedule_in_past_rejected(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.schedule(-1, lambda: None)
        queue.schedule(5, lambda: None)
        queue.run()
        with pytest.raises(SimulationError):
            queue.schedule_at(1, lambda: None)

    def test_run_until(self):
        queue = EventQueue()
        fired = []
        queue.schedule(5, lambda: fired.append(1))
        queue.schedule(50, lambda: fired.append(2))
        queue.run(until_ns=10)
        assert fired == [1]
        assert queue.pending == 1


class TestSimulator:
    def trace(self, count: int = 64):
        return [
            AccessRecord(core=i % 16, vaddr=0x1000 + (i % 8) * 64, access_type=AccessType.READ)
            for i in range(count)
        ]

    def test_run_produces_snapshot(self, small_baseline_cfg):
        result = simulate(small_baseline_cfg, self.trace(), "toy")
        assert result.accesses_simulated == 64
        assert result.workload_name == "toy"
        assert result.execution_time_ns > 0
        assert result.snapshot.total_accesses == 64

    def test_single_use(self, small_baseline_cfg):
        simulator = Simulator(small_baseline_cfg)
        simulator.run(self.trace())
        with pytest.raises(SimulationError):
            simulator.run(self.trace())

    def test_max_accesses_cap(self, small_baseline_cfg):
        result = simulate(small_baseline_cfg, self.trace(200), max_accesses=50)
        assert result.accesses_simulated == 50

    def test_invalid_core_rejected(self, small_baseline_cfg):
        bad = [AccessRecord(core=99, vaddr=0, access_type=AccessType.READ)]
        with pytest.raises(SimulationError):
            simulate(small_baseline_cfg, bad)

    def test_determinism(self, small_allarm_cfg):
        spec = build_spec("barnes", total_accesses=2000).with_footprint_scale(16)
        first = simulate(small_allarm_cfg, SyntheticWorkload(spec).generate())
        second = simulate(
            experiment_config("allarm", scale=16), SyntheticWorkload(spec).generate()
        )
        assert first.snapshot.execution_time_ns == second.snapshot.execution_time_ns
        assert first.snapshot.pf_evictions == second.snapshot.pf_evictions
        assert first.snapshot.network_bytes == second.snapshot.network_bytes

    def test_collect_matches_machine(self, small_baseline_cfg):
        simulator = Simulator(small_baseline_cfg)
        result = simulator.run(self.trace())
        fresh = collect(simulator.machine)
        assert fresh.execution_time_ns == result.snapshot.execution_time_ns
        assert fresh.pf_allocations == result.snapshot.pf_allocations


class TestCompareHelpers:
    def test_safe_ratio(self):
        assert safe_ratio(10, 5) == 2
        assert safe_ratio(10, 0, default=7) == 7

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0

    def test_run_comparison(self, small_baseline_cfg, small_allarm_cfg):
        trace = [
            AccessRecord(core=i % 16, vaddr=0x2000 + (i % 32) * 64, access_type=AccessType.READ)
            for i in range(256)
        ]
        base = simulate(small_baseline_cfg, list(trace)).snapshot
        allarm = simulate(small_allarm_cfg, list(trace)).snapshot
        comparison = RunComparison(base, allarm)
        assert comparison.speedup > 0
        assert 0 <= comparison.normalized_evictions <= 10
        data = comparison.as_dict()
        assert set(data) == {
            "speedup",
            "normalized_evictions",
            "normalized_traffic",
            "normalized_l2_misses",
            "eviction_reduction",
            "traffic_reduction",
        }
