"""Regression tests for the persisted benchmark trajectory store.

The original implementation could silently wipe the whole trajectory:
``load_bench_log`` degraded *any* damage — one corrupt byte, a stale
schema field, a stray non-dict entry — to an empty log, and the next
append rewrote the file with only the new entry.  Outside a git checkout
or on a dirty tree the ``git_sha`` stamp was also misleading.  These
tests pin the fixed behaviour: schema validation on append, salvage
instead of wipe, corrupt-file preservation, and robust sha resolution.
"""

from __future__ import annotations

import json
import subprocess

import pytest

from repro.analysis.benchlog import (
    BENCH_LOG_SCHEMA,
    MAX_ENTRIES,
    append_bench_entry,
    git_sha,
    latest_entry,
    load_bench_log,
    validate_entry,
)


def read_json(path):
    return json.loads(path.read_text())


@pytest.fixture(autouse=True)
def logging_enabled(monkeypatch):
    """Isolate from the host environment (CI runs tier-1 with logging off)."""
    monkeypatch.setenv("REPRO_BENCH_LOG", "1")


class TestAppendAndLoad:
    def test_round_trip_and_stamping(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafebabe")
        log = tmp_path / "BENCH.json"
        append_bench_entry(log, {"bench": "x", "rate": 1.5})
        append_bench_entry(log, {"bench": "y", "rate": 2.5})
        data = load_bench_log(log)
        assert data["schema"] == BENCH_LOG_SCHEMA
        assert [e["bench"] for e in data["entries"]] == ["x", "y"]
        for entry in data["entries"]:
            assert entry["git_sha"] == "cafebabe"
            assert "timestamp" in entry
        assert latest_entry(log, bench="x")["rate"] == 1.5

    def test_entry_cap(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafebabe")
        log = tmp_path / "BENCH.json"
        payload = {
            "schema": BENCH_LOG_SCHEMA,
            "entries": [{"bench": "old", "n": i} for i in range(MAX_ENTRIES)],
        }
        log.write_text(json.dumps(payload))
        append_bench_entry(log, {"bench": "new"})
        entries = load_bench_log(log)["entries"]
        assert len(entries) == MAX_ENTRIES
        assert entries[-1]["bench"] == "new"
        assert entries[0]["n"] == 1  # oldest scrolled off

    def test_disabled_logging_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_LOG", "0")
        log = tmp_path / "BENCH.json"
        assert append_bench_entry(log, {"bench": "x"}) is None
        assert not log.exists()


class TestSchemaValidationOnAppend:
    @pytest.mark.parametrize(
        "bad",
        [
            {},
            "not a dict",
            {"": 1},
            {3: "x"},
            {"nested": {"a": 1}},
            {"listy": [1, 2]},
            {"nan": float("nan")},
            {"inf": float("inf")},
            {"timestamp": "forged"},
            {"git_sha": "forged"},
        ],
    )
    def test_rejects_malformed_entries(self, tmp_path, bad):
        with pytest.raises(ValueError):
            validate_entry(bad)
        log = tmp_path / "BENCH.json"
        with pytest.raises(ValueError):
            append_bench_entry(log, bad)
        assert not log.exists()

    def test_accepts_flat_scalar_entries(self):
        validate_entry({"bench": "x", "rate": 1.0, "n": 3, "ok": True, "note": None})


class TestBatchedSchema:
    """``bench: "batched"`` entries carry the kernel-shape fields."""

    def good(self, **overrides):
        entry = {
            "bench": "batched",
            "family": "baseline",
            "accesses_per_s": 8.0e6,
            "chunk_records": 8192,
            "batched_residue_ratio": 0.002,
        }
        entry.update(overrides)
        return entry

    def test_accepts_well_formed_batched_entry(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafebabe")
        validate_entry(self.good())
        log = tmp_path / "BENCH.json"
        append_bench_entry(log, self.good())
        stored = latest_entry(log, bench="batched")
        assert stored["chunk_records"] == 8192
        assert stored["batched_residue_ratio"] == 0.002

    def test_ratio_boundaries_are_inclusive(self):
        validate_entry(self.good(batched_residue_ratio=0.0))
        validate_entry(self.good(batched_residue_ratio=1.0))
        validate_entry(self.good(batched_residue_ratio=1))  # int in range is fine

    @pytest.mark.parametrize(
        "overrides",
        [
            {"chunk_records": None},  # missing-equivalent
            {"chunk_records": 0},
            {"chunk_records": -8192},
            {"chunk_records": 8192.0},  # must be an int
            {"chunk_records": True},  # bool is not a count
            {"batched_residue_ratio": None},
            {"batched_residue_ratio": -0.01},
            {"batched_residue_ratio": 1.01},
            {"batched_residue_ratio": True},
            {"batched_residue_ratio": "0.5"},
        ],
    )
    def test_rejects_malformed_batched_fields(self, tmp_path, overrides):
        bad = self.good(**overrides)
        with pytest.raises(ValueError):
            validate_entry(bad)
        log = tmp_path / "BENCH.json"
        with pytest.raises(ValueError):
            append_bench_entry(log, bad)
        assert not log.exists()

    def test_missing_batched_fields_rejected(self):
        entry = self.good()
        del entry["chunk_records"]
        with pytest.raises(ValueError):
            validate_entry(entry)
        entry = self.good()
        del entry["batched_residue_ratio"]
        with pytest.raises(ValueError):
            validate_entry(entry)

    def test_other_benches_do_not_need_batched_fields(self):
        # Backward compatibility: the batched requirements are scoped to
        # bench == "batched" only.
        validate_entry({"bench": "hot_path", "engine": "packed", "rate": 1.0e6})


class TestShardedSchema:
    """``bench: "sharded"`` entries carry the shard-shape fields."""

    def good(self, **overrides):
        entry = {
            "bench": "sharded",
            "engine": "packed",
            "records": 400_000,
            "shards": 4,
            "epoch_records": 50_000,
            "speedup": 2.7,
        }
        entry.update(overrides)
        return entry

    def test_accepts_well_formed_sharded_entry(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafebabe")
        validate_entry(self.good())
        log = tmp_path / "BENCH.json"
        append_bench_entry(log, self.good())
        stored = latest_entry(log, bench="sharded")
        assert stored["shards"] == 4
        assert stored["speedup"] == 2.7

    @pytest.mark.parametrize(
        "overrides",
        [
            {"shards": None},  # missing-equivalent
            {"shards": 0},
            {"shards": -2},
            {"shards": 4.0},  # must be an int
            {"shards": True},  # bool is not a count
            {"epoch_records": None},
            {"epoch_records": 0},
            {"epoch_records": True},
            {"speedup": None},
            {"speedup": 0},
            {"speedup": -1.5},
            {"speedup": True},
            {"speedup": "2.7"},
        ],
    )
    def test_rejects_malformed_sharded_fields(self, tmp_path, overrides):
        bad = self.good(**overrides)
        with pytest.raises(ValueError):
            validate_entry(bad)
        log = tmp_path / "BENCH.json"
        with pytest.raises(ValueError):
            append_bench_entry(log, bad)
        assert not log.exists()

    def test_missing_sharded_fields_rejected(self):
        for field in ("shards", "epoch_records", "speedup"):
            entry = self.good()
            del entry[field]
            with pytest.raises(ValueError, match=field):
                validate_entry(entry)

    def test_other_benches_do_not_need_sharded_fields(self):
        validate_entry({"bench": "trace_replay", "mb_per_s": 900.0})


class TestFaultsSchema:
    """``bench: "faults"`` entries carry the chaos-run counters."""

    def good(self, **overrides):
        entry = {
            "bench": "faults",
            "engine": "packed",
            "scenario": "sweep-crash-exit-torn",
            "retries": 2,
            "timeouts": 0,
            "quarantines": 1,
        }
        entry.update(overrides)
        return entry

    def test_accepts_well_formed_faults_entry(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafebabe")
        validate_entry(self.good())
        log = tmp_path / "BENCH.json"
        append_bench_entry(log, self.good())
        stored = latest_entry(log, bench="faults")
        assert stored["retries"] == 2
        assert stored["quarantines"] == 1

    def test_zero_counters_are_valid(self):
        validate_entry(self.good(retries=0, timeouts=0, quarantines=0))

    @pytest.mark.parametrize(
        "overrides",
        [
            {"retries": None},
            {"retries": -1},
            {"retries": 2.0},  # must be an int
            {"retries": True},  # bool is not a count
            {"timeouts": None},
            {"timeouts": -3},
            {"timeouts": "0"},
            {"quarantines": None},
            {"quarantines": -1},
            {"quarantines": False},
        ],
    )
    def test_rejects_malformed_faults_fields(self, tmp_path, overrides):
        bad = self.good(**overrides)
        with pytest.raises(ValueError):
            validate_entry(bad)
        log = tmp_path / "BENCH.json"
        with pytest.raises(ValueError):
            append_bench_entry(log, bad)
        assert not log.exists()

    def test_missing_faults_fields_rejected(self):
        for field in ("retries", "timeouts", "quarantines"):
            entry = self.good()
            del entry[field]
            with pytest.raises(ValueError, match=field):
                validate_entry(entry)

    def test_other_benches_do_not_need_faults_fields(self):
        validate_entry({"bench": "hotpath", "accesses_per_s": 1.0e6})


class TestServeSchema:
    """``bench: "serve"`` entries carry the service load-run shape."""

    def good(self, **overrides):
        entry = {
            "bench": "serve",
            "requests": 32,
            "concurrency": 8,
            "executed": 2,
            "coalesced": 12,
            "warm_hits": 18,
            "throughput_rps": 140.5,
            "p50_ms": 12.0,
            "p99_ms": 55.0,
        }
        entry.update(overrides)
        return entry

    def test_accepts_well_formed_serve_entry(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafebabe")
        validate_entry(self.good())
        log = tmp_path / "BENCH.json"
        append_bench_entry(log, self.good())
        stored = latest_entry(log, bench="serve")
        assert stored["coalesced"] == 12
        assert stored["throughput_rps"] == 140.5

    def test_zero_coalesced_and_warm_are_valid(self):
        # A fully cold, duplicate-free run coalesces nothing.
        validate_entry(self.good(coalesced=0, warm_hits=0, p50_ms=0, p99_ms=0))

    @pytest.mark.parametrize(
        "overrides",
        [
            {"requests": 0},
            {"requests": None},
            {"requests": 8.0},  # must be an int
            {"requests": True},  # bool is not a count
            {"concurrency": 0},
            {"concurrency": -2},
            {"coalesced": -1},
            {"coalesced": None},
            {"coalesced": "3"},
            {"warm_hits": -1},
            {"warm_hits": False},
            {"throughput_rps": 0},
            {"throughput_rps": -1.0},
            {"throughput_rps": None},
            {"p50_ms": -0.1},
            {"p50_ms": None},
            {"p99_ms": -5},
            {"p99_ms": "fast"},
        ],
    )
    def test_rejects_malformed_serve_fields(self, tmp_path, overrides):
        bad = self.good(**overrides)
        with pytest.raises(ValueError):
            validate_entry(bad)
        log = tmp_path / "BENCH.json"
        with pytest.raises(ValueError):
            append_bench_entry(log, bad)
        assert not log.exists()

    def test_missing_serve_fields_rejected(self):
        for field in (
            "requests", "concurrency", "coalesced", "warm_hits",
            "throughput_rps", "p50_ms", "p99_ms",
        ):
            entry = self.good()
            del entry[field]
            with pytest.raises(ValueError, match=field):
                validate_entry(entry)

    def test_other_benches_do_not_need_serve_fields(self):
        validate_entry({"bench": "hotpath", "accesses_per_s": 1.0e6})


class TestScenariosSchema:
    """``bench: "scenarios"`` entries carry the generated-set shape."""

    def good(self, **overrides):
        entry = {
            "bench": "scenarios",
            "families": 8,
            "generator_seed": 11,
            "gen_records_per_s": 1.4e6,
        }
        entry.update(overrides)
        return entry

    def test_accepts_well_formed_scenarios_entry(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafebabe")
        validate_entry(self.good())
        log = tmp_path / "BENCH.json"
        append_bench_entry(log, self.good())
        stored = latest_entry(log, bench="scenarios")
        assert stored["families"] == 8
        assert stored["generator_seed"] == 11

    def test_generator_seed_zero_is_valid(self):
        # Seed 0 is a legitimate generator seed, not a missing value.
        validate_entry(self.good(generator_seed=0))

    @pytest.mark.parametrize(
        "overrides",
        [
            {"families": 0},
            {"families": -3},
            {"families": None},
            {"families": 8.0},  # must be an int
            {"families": True},  # bool is not a count
            {"generator_seed": -1},
            {"generator_seed": None},
            {"generator_seed": "11"},
            {"generator_seed": False},
            {"gen_records_per_s": 0},
            {"gen_records_per_s": -1.0},
            {"gen_records_per_s": None},
            {"gen_records_per_s": "fast"},
        ],
    )
    def test_rejects_malformed_scenarios_fields(self, tmp_path, overrides):
        bad = self.good(**overrides)
        with pytest.raises(ValueError):
            validate_entry(bad)
        log = tmp_path / "BENCH.json"
        with pytest.raises(ValueError):
            append_bench_entry(log, bad)
        assert not log.exists()

    def test_missing_scenarios_fields_rejected(self):
        for field in ("families", "generator_seed", "gen_records_per_s"):
            entry = self.good()
            del entry[field]
            with pytest.raises(ValueError, match=field):
                validate_entry(entry)

    def test_other_benches_do_not_need_scenarios_fields(self):
        validate_entry({"bench": "hotpath", "accesses_per_s": 1.0e6})


class TestDamageSalvage:
    """One bad byte must never erase the whole perf history again."""

    def test_stale_schema_keeps_valid_entries(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafebabe")
        log = tmp_path / "BENCH.json"
        log.write_text(
            json.dumps({"schema": 999, "entries": [{"bench": "old", "rate": 1.0}]})
        )
        append_bench_entry(log, {"bench": "new"})
        entries = load_bench_log(log)["entries"]
        assert [e["bench"] for e in entries] == ["old", "new"]

    def test_stray_non_dict_entries_are_dropped_not_fatal(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafebabe")
        log = tmp_path / "BENCH.json"
        log.write_text(
            json.dumps(
                {
                    "schema": BENCH_LOG_SCHEMA,
                    "entries": [{"bench": "old"}, "garbage", 42, {"bench": "old2"}],
                }
            )
        )
        append_bench_entry(log, {"bench": "new"})
        entries = load_bench_log(log)["entries"]
        assert [e["bench"] for e in entries] == ["old", "old2", "new"]

    def test_unparsable_file_is_preserved_not_overwritten(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafebabe")
        log = tmp_path / "BENCH.json"
        log.write_text("{this is not json")
        append_bench_entry(log, {"bench": "new"})
        assert [e["bench"] for e in load_bench_log(log)["entries"]] == ["new"]
        backup = tmp_path / "BENCH.json.corrupt"
        assert backup.read_text() == "{this is not json"

    def test_valid_empty_log_is_not_flagged_corrupt(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafebabe")
        log = tmp_path / "BENCH.json"
        log.write_text(json.dumps({"schema": BENCH_LOG_SCHEMA, "entries": []}))
        append_bench_entry(log, {"bench": "new"})
        assert [e["bench"] for e in load_bench_log(log)["entries"]] == ["new"]
        assert not (tmp_path / "BENCH.json.corrupt").exists()

    def test_second_corruption_does_not_clobber_first_backup(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafebabe")
        log = tmp_path / "BENCH.json"
        log.write_text("first damage")
        append_bench_entry(log, {"bench": "a"})
        log.write_text("second damage")
        append_bench_entry(log, {"bench": "b"})
        assert (tmp_path / "BENCH.json.corrupt").read_text() == "first damage"
        assert (tmp_path / "BENCH.json.corrupt-1").read_text() == "second damage"
        assert [e["bench"] for e in load_bench_log(log)["entries"]] == ["b"]


class TestShaResolution:
    def test_env_override_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "deadbeef")
        assert git_sha(tmp_path) == "deadbeef"

    def test_outside_checkout_is_unknown(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_GIT_SHA", raising=False)
        assert git_sha(tmp_path) == "unknown"

    def test_nonexistent_root_does_not_crash(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_GIT_SHA", raising=False)
        assert isinstance(git_sha(tmp_path / "missing" / "deeper"), str)

    def _git(self, *args, cwd):
        return subprocess.run(
            ["git", *args], cwd=cwd, capture_output=True, text=True, timeout=30
        )

    def test_real_checkout_sha_and_dirty_suffix(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_GIT_SHA", raising=False)
        if self._git("--version", cwd=tmp_path).returncode != 0:
            pytest.skip("git unavailable")
        repo = tmp_path / "repo"
        repo.mkdir()
        self._git("init", "-q", cwd=repo)
        self._git("config", "user.email", "t@example.com", cwd=repo)
        self._git("config", "user.name", "t", cwd=repo)
        (repo / "file.txt").write_text("one\n")
        self._git("add", "file.txt", cwd=repo)
        commit = self._git("commit", "-q", "-m", "init", cwd=repo)
        if commit.returncode != 0:
            pytest.skip(f"cannot commit in sandbox: {commit.stderr.strip()}")
        clean = git_sha(repo)
        assert len(clean) == 40 and "+dirty" not in clean
        # Resolution walks up from nested paths inside the checkout.
        nested = repo / "a" / "b"
        nested.mkdir(parents=True)
        assert git_sha(nested) == clean
        (repo / "file.txt").write_text("two\n")
        assert git_sha(repo) == clean + "+dirty"

    def test_trajectory_files_do_not_count_as_dirty(self, tmp_path, monkeypatch):
        # Appending to a git-tracked BENCH_*.json must not make every
        # subsequent entry of the same run read "+dirty".
        monkeypatch.delenv("REPRO_GIT_SHA", raising=False)
        if self._git("--version", cwd=tmp_path).returncode != 0:
            pytest.skip("git unavailable")
        repo = tmp_path / "repo"
        repo.mkdir()
        self._git("init", "-q", cwd=repo)
        self._git("config", "user.email", "t@example.com", cwd=repo)
        self._git("config", "user.name", "t", cwd=repo)
        (repo / "BENCH_hotpath.json").write_text("{}")
        self._git("add", "BENCH_hotpath.json", cwd=repo)
        commit = self._git("commit", "-q", "-m", "init", cwd=repo)
        if commit.returncode != 0:
            pytest.skip(f"cannot commit in sandbox: {commit.stderr.strip()}")
        clean = git_sha(repo)
        assert "+dirty" not in clean
        # Modified trajectory + a brand-new .corrupt backup: still clean.
        (repo / "BENCH_hotpath.json").write_text('{"schema": 1, "entries": []}')
        (repo / "BENCH_hotpath.json.corrupt").write_text("damage")
        assert git_sha(repo) == clean
        # Real source damage still flips the suffix.
        (repo / "code.py").write_text("x = 1\n")
        assert git_sha(repo) == clean + "+dirty"
