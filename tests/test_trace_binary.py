"""Round-trip, determinism and error-context tests for binary traces (v2+v3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.plan import ExperimentSettings, RunSpec
from repro.errors import WorkloadError
from repro.trace import (
    FORMAT_BINARY,
    FORMAT_BLOCKED,
    FORMAT_TEXT,
    BinaryTraceWriter,
    BlockedTraceWriter,
    count_records,
    inspect_trace,
    read_trace,
    read_trace_chunks,
    read_trace_v3,
    read_trace_v3_chunks,
    sniff_format,
    write_trace,
    write_trace_v2,
    write_trace_v3,
)
from repro.trace.binary import (
    HEADER_SIZE,
    read_trace_v2,
    stored_record_count,
    v3_block_stats,
    v3_epoch_index,
)
from repro.trace.record import AccessRecord, AccessType
from repro.workloads.base import SyntheticWorkload
from repro.workloads.multiprocess import build_multiprocess_spec, generate_multiprocess
from repro.workloads.registry import build_spec

TINY = ExperimentSettings(scale=16, accesses=1500, multiprocess_accesses=800)


def workload_records(name="barnes", accesses=3000):
    spec = build_spec(name, total_accesses=accesses).with_footprint_scale(32)
    return list(SyntheticWorkload(spec).generate())


#: Arbitrary records: adversarial cores/addresses, not just generator output.
record_strategy = st.builds(
    AccessRecord,
    core=st.integers(min_value=0, max_value=1 << 20),
    vaddr=st.integers(min_value=0, max_value=(1 << 52) - 1),
    access_type=st.sampled_from(list(AccessType)),
    process_id=st.integers(min_value=0, max_value=1 << 10),
)


class TestFormatSniffing:
    def test_sniffs_both_formats(self, tmp_path):
        records = workload_records(accesses=500)
        text = tmp_path / "t.txt"
        binary = tmp_path / "t.rpt2"
        write_trace(text, records)
        write_trace(binary, records, format=FORMAT_BINARY)
        assert sniff_format(text) == FORMAT_TEXT
        assert sniff_format(binary) == FORMAT_BINARY

    def test_read_trace_dispatches_transparently(self, tmp_path):
        records = workload_records(accesses=500)
        text = tmp_path / "t.txt"
        binary = tmp_path / "t.rpt2"
        write_trace(text, records)
        write_trace(binary, records, format=FORMAT_BINARY)
        assert list(read_trace(text)) == records
        assert list(read_trace(binary)) == records

    def test_empty_file_is_text(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_bytes(b"")
        assert sniff_format(path) == FORMAT_TEXT
        assert list(read_trace(path)) == []

    def test_unknown_write_format_rejected(self, tmp_path):
        with pytest.raises(WorkloadError, match="unknown trace format"):
            write_trace(tmp_path / "t", [], format="parquet")

    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError, match="does not exist"):
            sniff_format(tmp_path / "nope")


class TestBinaryRoundTrip:
    def test_workload_stream_round_trips(self, tmp_path):
        records = workload_records()
        path = tmp_path / "t.rpt2"
        written = write_trace_v2(path, records)
        assert written == len(records)
        assert list(read_trace_v2(path)) == records

    def test_text_and_binary_decode_identically(self, tmp_path):
        records = workload_records("dedup")
        text = tmp_path / "t.txt"
        binary = tmp_path / "t.rpt2"
        write_trace(text, records)
        write_trace(binary, records, format=FORMAT_BINARY)
        assert list(read_trace(text)) == list(read_trace(binary))

    def test_multiprocess_stream_round_trips(self, tmp_path):
        mp = build_multiprocess_spec("cholesky", total_accesses_per_copy=1000)
        records = list(generate_multiprocess(mp))
        path = tmp_path / "mp.rpt2"
        write_trace_v2(path, records)
        assert list(read_trace_v2(path)) == records

    def test_write_is_deterministic(self, tmp_path):
        records = workload_records(accesses=1000)
        a, b = tmp_path / "a.rpt2", tmp_path / "b.rpt2"
        write_trace_v2(a, records)
        write_trace_v2(b, records)
        assert a.read_bytes() == b.read_bytes()

    def test_binary_is_smaller_than_text(self, tmp_path):
        records = workload_records(accesses=2000)
        text, binary = tmp_path / "t.txt", tmp_path / "t.rpt2"
        write_trace(text, records)
        write_trace(binary, records, format=FORMAT_BINARY)
        assert binary.stat().st_size * 4 < text.stat().st_size

    @settings(max_examples=30, deadline=None)
    @given(records=st.lists(record_strategy, max_size=60))
    def test_arbitrary_records_round_trip(self, records, tmp_path_factory):
        path = tmp_path_factory.mktemp("hyp") / "t.rpt2"
        write_trace_v2(path, records)
        assert list(read_trace_v2(path)) == records

    def test_streaming_writer_counts_and_patches_header(self, tmp_path):
        records = workload_records(accesses=500)
        path = tmp_path / "t.rpt2"
        with BinaryTraceWriter(path) as writer:
            for record in records:
                writer.write(record)
            assert writer.record_count == len(records)
        assert stored_record_count(path) == len(records)
        assert count_records(path) == len(records)

    def test_count_records_is_o1_for_closed_binary(self, tmp_path):
        records = workload_records(accesses=500)
        path = tmp_path / "t.rpt2"
        write_trace_v2(path, records)
        # Corrupt everything after the header: an O(1) count never sees it.
        data = bytearray(path.read_bytes())
        data[HEADER_SIZE:] = b"\xff" * 4
        path.write_bytes(bytes(data))
        assert count_records(path) == len(records)


class TestBinaryErrors:
    def make_trace(self, tmp_path, records=None):
        path = tmp_path / "t.rpt2"
        write_trace_v2(path, records if records is not None else workload_records(accesses=200))
        return path

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "t.rpt2"
        path.write_bytes(b"\x89RPT9\r\n\x1a" + b"\x00" * 8)
        with pytest.raises(WorkloadError, match="bad magic"):
            list(read_trace_v2(path))

    def test_truncated_file_names_record_and_offset(self, tmp_path):
        path = self.make_trace(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 1])
        with pytest.raises(WorkloadError, match=r"record \d+ at byte \d+.*truncated"):
            list(read_trace_v2(path))

    def test_invalid_type_code_names_record_and_offset(self, tmp_path):
        path = self.make_trace(tmp_path)
        data = bytearray(path.read_bytes())
        data[HEADER_SIZE] |= 0x03  # access-type code 3 is reserved
        path.write_bytes(bytes(data))
        with pytest.raises(WorkloadError, match="record 0 at byte 16.*type"):
            list(read_trace_v2(path))

    def test_header_count_mismatch_detected(self, tmp_path):
        path = self.make_trace(tmp_path)
        data = bytearray(path.read_bytes())
        # Lie about the record count.
        data[8:16] = (5).to_bytes(8, "little")
        path.write_bytes(bytes(data))
        with pytest.raises(WorkloadError, match="promises 5 records"):
            list(read_trace_v2(path))

    def test_text_errors_still_name_file_and_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# header\n0 1 R 0x40\nnot a record\n")
        with pytest.raises(WorkloadError, match="bad.txt:3"):
            list(read_trace(path))


class TestReplayVsGenerate:
    """Replaying a recorded trace must be bit-identical to generating."""

    @pytest.mark.parametrize("policy", ["baseline", "allarm"])
    def test_snapshots_bit_identical(self, tmp_path, policy):
        from repro.analysis.executor import execute_run_spec, record_spec_trace

        spec = RunSpec("barnes", policy, settings=TINY)
        path = tmp_path / "barnes.rpt2"
        record_spec_trace(spec, path)
        generated = execute_run_spec(spec)
        replayed = execute_run_spec(spec.with_trace(path))
        assert replayed.to_dict() == generated.to_dict()

    def test_multiprocess_snapshot_bit_identical(self, tmp_path):
        from repro.analysis.executor import execute_run_spec, record_spec_trace

        spec = RunSpec("barnes", "allarm", layout="2p", settings=TINY)
        path = tmp_path / "barnes-2p.rpt2"
        record_spec_trace(spec, path)
        assert (
            execute_run_spec(spec.with_trace(path)).to_dict()
            == execute_run_spec(spec).to_dict()
        )

    def test_executor_trace_dir_serves_sweep(self, tmp_path):
        from repro.analysis.executor import (
            SOURCE_REPLAYED,
            SweepExecutor,
        )
        from repro.analysis.plan import figure3_plan

        plan = figure3_plan(TINY, benchmarks=["barnes"])
        recorded = SweepExecutor(
            trace_dir=tmp_path / "traces", record_traces=True
        ).run_plan(plan)
        assert all(r.source == SOURCE_REPLAYED for r in recorded.results)
        # One trace file serves both policies of the same workload stream.
        assert len(list((tmp_path / "traces").glob("*.rpt2"))) == 1
        generated = SweepExecutor().run_plan(plan)
        for left, right in zip(recorded.results, generated.results):
            assert left.spec == right.spec
            assert left.snapshot.to_dict() == right.snapshot.to_dict()

    def test_batched_sweep_records_blocked_traces(self, tmp_path):
        """Regression: a batched sweep must auto-record v3, not slow v2.

        The executor used to record auto-captured traces in the v2 format
        unconditionally, so batched-engine sweeps silently replayed
        through the per-record path instead of the chunk kernel.
        """
        from repro.analysis.executor import SOURCE_REPLAYED, SweepExecutor
        from repro.analysis.plan import figure3_plan

        plan = figure3_plan(TINY, benchmarks=["barnes"]).with_engine("batched")
        trace_dir = tmp_path / "traces"
        recorded = SweepExecutor(
            trace_dir=trace_dir, record_traces=True
        ).run_plan(plan)
        assert all(r.source == SOURCE_REPLAYED for r in recorded.results)
        assert list(trace_dir.glob("*.rpt2")) == []
        blocked = list(trace_dir.glob("*.rpt3"))
        assert len(blocked) == 1
        assert sniff_format(blocked[0]) == FORMAT_BLOCKED
        generated = SweepExecutor().run_plan(plan)
        for left, right in zip(recorded.results, generated.results):
            assert left.snapshot.to_dict() == right.snapshot.to_dict()

    def test_trace_format_override_and_defaults(self, tmp_path):
        from repro.analysis.executor import SweepExecutor, trace_file_name
        from repro.errors import ConfigurationError

        spec = RunSpec("barnes", "allarm", settings=TINY)
        batched = spec.with_engine("batched")
        executor = SweepExecutor()
        assert executor.trace_format_for(spec) == "binary"
        assert executor.trace_format_for(batched) == "blocked"
        forced = SweepExecutor(trace_format="blocked")
        assert forced.trace_format_for(spec) == "blocked"
        assert trace_file_name(spec).endswith(".rpt2")
        assert trace_file_name(spec, format="blocked").endswith(".rpt3")
        with pytest.raises(ConfigurationError, match="trace format"):
            SweepExecutor(trace_format="parquet")
        with pytest.raises(ConfigurationError, match="trace format"):
            trace_file_name(spec, format="parquet")

    def test_record_guards_against_suffix_format_mismatch(self, tmp_path):
        from repro.analysis.executor import record_spec_trace
        from repro.errors import ConfigurationError

        spec = RunSpec("barnes", "allarm", settings=TINY)
        with pytest.raises(ConfigurationError, match="suffix"):
            record_spec_trace(spec, tmp_path / "t.rpt2", format="blocked")
        with pytest.raises(ConfigurationError, match="suffix"):
            record_spec_trace(spec, tmp_path / "t.rpt3", format="binary")

    def test_trace_source_changes_cache_identity(self, tmp_path):
        spec = RunSpec("barnes", "allarm", settings=TINY)
        traced = spec.with_trace(tmp_path / "t.rpt2")
        assert traced.digest() != spec.digest()
        assert traced.stream_digest() == spec.stream_digest()

    def test_executor_trace_dir_serves_blocked_recordings(self, tmp_path):
        """A `trace record --format blocked` directory must serve sweeps."""
        from repro.analysis.executor import (
            SOURCE_REPLAYED,
            SweepExecutor,
            record_spec_trace,
            trace_file_name,
        )
        from repro.analysis.plan import figure3_plan

        plan = figure3_plan(TINY, benchmarks=["barnes"])
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        for spec in plan.specs:
            path = (trace_dir / trace_file_name(spec)).with_suffix(".rpt3")
            if not path.exists():
                record_spec_trace(spec, path, format="blocked")
        assert list(trace_dir.glob("*.rpt2")) == []
        replayed = SweepExecutor(trace_dir=trace_dir).run_plan(plan)
        assert all(r.source == SOURCE_REPLAYED for r in replayed.results)
        generated = SweepExecutor().run_plan(plan)
        for left, right in zip(replayed.results, generated.results):
            assert left.spec == right.spec
            assert left.snapshot.to_dict() == right.snapshot.to_dict()


#: Records a v3 trace can hold: cores and pids are stored as one byte.
blocked_record_strategy = st.builds(
    AccessRecord,
    core=st.integers(min_value=0, max_value=255),
    vaddr=st.integers(min_value=0, max_value=(1 << 52) - 1),
    access_type=st.sampled_from(list(AccessType)),
    process_id=st.integers(min_value=0, max_value=255),
)


class TestBlockedV3RoundTrip:
    def test_workload_stream_round_trips(self, tmp_path):
        records = workload_records()
        path = tmp_path / "t.rpt3"
        written = write_trace_v3(path, records)
        assert written == len(records)
        assert list(read_trace_v3(path)) == records
        assert sniff_format(path) == FORMAT_BLOCKED
        assert list(read_trace(path)) == records  # transparent dispatch
        assert count_records(path) == len(records)

    def test_multiblock_layout_and_chunk_decode(self, tmp_path):
        records = workload_records(accesses=1000)
        path = tmp_path / "t.rpt3"
        write_trace_v3(path, records, block_records=256)
        chunks = list(read_trace_v3_chunks(path))
        expected_blocks = -(-len(records) // 256)
        full, tail = divmod(len(records), 256)
        assert [len(c) for c in chunks] == [256] * full + ([tail] if tail else [])
        back = [r for c in chunks for r in c.records()]
        assert back == records
        stats = v3_block_stats(path)
        assert stats["blocks"] == expected_blocks
        assert stats["max_block_records"] == 256
        assert stats["records_per_block"] == pytest.approx(
            len(records) / expected_blocks
        )

    def test_read_trace_chunks_dispatches_all_formats(self, tmp_path):
        records = workload_records(accesses=600)
        blocked = tmp_path / "t.rpt3"
        binary = tmp_path / "t.rpt2"
        write_trace_v3(blocked, records, block_records=128)
        write_trace_v2(binary, records)
        for path in (blocked, binary):
            back = [r for c in read_trace_chunks(path) for r in c.records()]
            assert back == records

    def test_fallback_decoder_matches_numpy_decoder(self, tmp_path, monkeypatch):
        records = workload_records(accesses=700)
        path = tmp_path / "t.rpt3"
        write_trace_v3(path, records, block_records=128)
        fast = [r for c in read_trace_v3_chunks(path) for r in c.records()]
        monkeypatch.setenv("REPRO_BATCH_FORCE_FALLBACK", "1")
        slow = [r for c in read_trace_v3_chunks(path) for r in c.records()]
        assert fast == slow == records

    def test_write_is_deterministic(self, tmp_path):
        records = workload_records(accesses=1000)
        a, b = tmp_path / "a.rpt3", tmp_path / "b.rpt3"
        write_trace_v3(a, records)
        write_trace_v3(b, records)
        assert a.read_bytes() == b.read_bytes()

    def test_streaming_writer_counts_and_patches_header(self, tmp_path):
        records = workload_records(accesses=500)
        path = tmp_path / "t.rpt3"
        with BlockedTraceWriter(path, block_records=64) as writer:
            for record in records:
                writer.write(record)
            assert writer.record_count == len(records)
        assert stored_record_count(path) == len(records)
        assert list(read_trace_v3(path)) == records

    @settings(max_examples=30, deadline=None)
    @given(records=st.lists(blocked_record_strategy, max_size=60))
    def test_arbitrary_records_round_trip(self, records, tmp_path_factory):
        path = tmp_path_factory.mktemp("hyp3") / "t.rpt3"
        write_trace_v3(path, records, block_records=7)
        assert list(read_trace_v3(path)) == records

    def test_empty_stream_round_trips(self, tmp_path):
        path = tmp_path / "empty.rpt3"
        assert write_trace_v3(path, []) == 0
        assert list(read_trace_v3(path)) == []
        assert count_records(path) == 0


class TestBlockedV3Errors:
    def make_trace(self, tmp_path, block_records=64):
        path = tmp_path / "t.rpt3"
        write_trace_v3(
            path, workload_records(accesses=200), block_records=block_records
        )
        return path

    def test_writer_rejects_wide_core_and_pid(self, tmp_path):
        wide_core = AccessRecord(
            core=256, vaddr=64, access_type=AccessType.READ, process_id=0
        )
        with pytest.raises(WorkloadError, match="core"):
            write_trace_v3(tmp_path / "t.rpt3", [wide_core])
        wide_pid = AccessRecord(
            core=0, vaddr=64, access_type=AccessType.READ, process_id=999
        )
        with pytest.raises(WorkloadError, match="process"):
            write_trace_v3(tmp_path / "t2.rpt3", [wide_pid])

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "t.rpt3"
        path.write_bytes(b"\x89RPT9\r\n\x1a" + b"\x00" * 8)
        with pytest.raises(WorkloadError, match="bad magic"):
            list(read_trace_v3(path))

    def test_truncated_block_body_names_block_and_offset(self, tmp_path):
        path = self.make_trace(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 9])
        with pytest.raises(WorkloadError, match=r"block \d+ at byte \d+.*truncated"):
            list(read_trace_v3(path))

    @pytest.mark.parametrize("numpy_enabled", [True, False])
    def test_invalid_type_code_rejected_by_both_decoders(
        self, tmp_path, monkeypatch, numpy_enabled
    ):
        path = self.make_trace(tmp_path, block_records=200)
        data = bytearray(path.read_bytes())
        # Corrupt the first record's type byte (addrs: 8n, cores/pids: 2n).
        type_column = HEADER_SIZE + 8 + 8 * 200 + 2 * 200
        data[type_column] = 7
        path.write_bytes(bytes(data))
        if not numpy_enabled:
            monkeypatch.setenv("REPRO_BATCH_FORCE_FALLBACK", "1")
        with pytest.raises(WorkloadError, match="invalid access-type"):
            list(read_trace_v3(path))

    def test_header_count_mismatch_detected(self, tmp_path):
        path = self.make_trace(tmp_path)
        data = bytearray(path.read_bytes())
        data[8:16] = (5).to_bytes(8, "little")
        path.write_bytes(bytes(data))
        with pytest.raises(WorkloadError, match="promises 5 records"):
            list(read_trace_v3(path))


class TestEpochIndexV31:
    """v3.1 seekable epoch footer: round-trip, slicing, corruption."""

    BLOCK = 64
    EPOCH = 128

    def _write(self, tmp_path, accesses=1000):
        records = workload_records(accesses=accesses)
        path = tmp_path / "t.rpt3"
        write_trace_v3(
            path, records, block_records=self.BLOCK, epoch_records=self.EPOCH
        )
        return path, records

    def test_indexed_trace_round_trips_with_index_intact(self, tmp_path):
        path, records = self._write(tmp_path)
        epochs = -(-len(records) // self.EPOCH)
        assert list(read_trace_v3(path)) == records
        assert list(read_trace(path)) == records
        assert count_records(path) == len(records)
        index = v3_epoch_index(path)
        assert index["epoch_records"] == self.EPOCH
        assert len(index["entries"]) == epochs
        assert sum(n for _, n in index["entries"]) == len(records)
        info = inspect_trace(path)
        assert info.epochs == epochs
        assert info.epoch_records == self.EPOCH

    def test_epoch_slices_partition_the_stream(self, tmp_path):
        path, records = self._write(tmp_path)
        epochs = -(-len(records) // self.EPOCH)
        for k in range(epochs):
            chunks = list(
                read_trace_v3_chunks(path, start_epoch=k, end_epoch=k + 1)
            )
            vaddrs = [v for chunk in chunks for v in chunk.vaddrs]
            span = records[k * self.EPOCH : (k + 1) * self.EPOCH]
            assert vaddrs == [r.vaddr for r in span]
        # A multi-epoch tail slice decodes without scanning the prefix.
        tail = list(read_trace_v3_chunks(path, start_epoch=epochs - 2))
        assert sum(len(c) for c in tail) == len(
            records[(epochs - 2) * self.EPOCH :]
        )
        # The empty slice at the end is legal and empty.
        assert list(
            read_trace_v3_chunks(path, start_epoch=epochs, end_epoch=epochs)
        ) == []

    def test_slicing_unindexed_trace_names_the_fix(self, tmp_path):
        path = tmp_path / "plain.rpt3"
        write_trace_v3(path, workload_records(accesses=300), block_records=64)
        assert v3_epoch_index(path) is None
        with pytest.raises(WorkloadError, match="epoch_records"):
            list(read_trace_v3_chunks(path, start_epoch=1))

    def test_out_of_range_slice_rejected(self, tmp_path):
        path, records = self._write(tmp_path)
        epochs = -(-len(records) // self.EPOCH)
        with pytest.raises(WorkloadError, match="epoch"):
            list(read_trace_v3_chunks(path, start_epoch=epochs + 1))
        with pytest.raises(WorkloadError, match="epoch"):
            list(read_trace_v3_chunks(path, start_epoch=2, end_epoch=1))

    def test_writer_rejects_epoch_not_on_block_boundary(self, tmp_path):
        with pytest.raises(WorkloadError, match="multiple"):
            BlockedTraceWriter(
                tmp_path / "t.rpt3", block_records=64, epoch_records=100
            )

    def test_corrupt_footer_is_a_clean_error(self, tmp_path):
        path, _records = self._write(tmp_path)
        data = bytearray(path.read_bytes())
        # Lie about the footer length in the EOF trailer.
        data[-16:-8] = (7).to_bytes(8, "little")
        path.write_bytes(bytes(data))
        with pytest.raises(WorkloadError, match="footer"):
            v3_epoch_index(path)
        with pytest.raises(WorkloadError, match="footer"):
            list(read_trace_v3_chunks(path))


class TestTornAndUnclosedFiles:
    """Crash robustness: killed writers and torn files degrade cleanly."""

    def test_unclosed_v2_count_falls_back_to_scan(self, tmp_path):
        records = workload_records(accesses=400)
        path = tmp_path / "t.rpt2"
        write_trace_v2(path, records)
        # Rewind the header count to the unknown sentinel — exactly what a
        # writer killed after its last flush leaves behind.
        data = bytearray(path.read_bytes())
        data[8:16] = b"\xff" * 8
        path.write_bytes(bytes(data))
        assert stored_record_count(path) == -1
        assert count_records(path) == len(records)
        assert list(read_trace(path)) == records

    def test_writer_killed_between_flush_and_close(self, tmp_path):
        import os

        records = workload_records(accesses=640)
        path = tmp_path / "t.rpt3"
        writer = BlockedTraceWriter(path, block_records=64, epoch_records=128)
        for record in records:
            writer.write(record)
        # Simulate SIGKILL after the last block hit the disk but before
        # close(): flush the buffered block, then drop the handle without
        # running close() — no footer, no count patch.
        writer._flush_block()
        writer._handle.flush()
        os.close(writer._handle.fileno())

        assert sniff_format(path) == FORMAT_BLOCKED
        assert stored_record_count(path) == -1  # sentinel, never patched
        assert count_records(path) == len(records)  # full-scan fallback
        assert list(read_trace(path)) == records
        assert v3_epoch_index(path) is None  # footer was never written
        with pytest.raises(WorkloadError, match="epoch_records"):
            list(read_trace_v3_chunks(path, start_epoch=1))

    def test_torn_v2_file_raises_without_traceback_noise(self, tmp_path):
        records = workload_records(accesses=400)
        path = tmp_path / "t.rpt2"
        write_trace_v2(path, records)
        data = bytearray(path.read_bytes())
        data = data[: len(data) - 5]  # tear mid-record
        data[8:16] = b"\xff" * 8  # and the count was never patched
        path.write_bytes(bytes(data))
        with pytest.raises(WorkloadError):
            count_records(path)
        with pytest.raises(WorkloadError):
            list(read_trace(path))

    def test_torn_v3_block_raises_cleanly_from_count(self, tmp_path):
        records = workload_records(accesses=400)
        path = tmp_path / "t.rpt3"
        write_trace_v3(path, records, block_records=64)
        data = bytearray(path.read_bytes())
        data = data[: len(data) - 9]  # tear inside the final block
        data[8:16] = b"\xff" * 8
        path.write_bytes(bytes(data))
        with pytest.raises(WorkloadError, match="truncated"):
            count_records(path)


class TestBlockedReplay:
    """Blocked traces feed the batched engine bit-identically."""

    def test_blocked_replay_matches_generated_run(self, tmp_path):
        from repro.analysis.executor import execute_run_spec, record_spec_trace

        spec = RunSpec("barnes", "allarm", settings=TINY)
        path = tmp_path / "barnes.rpt3"
        record_spec_trace(spec, path, format=FORMAT_BLOCKED)
        generated = execute_run_spec(spec)
        replayed = execute_run_spec(spec.with_trace(path).with_engine("batched"))
        assert replayed.to_dict() == generated.to_dict()


class TestInspect:
    def test_inspect_reports_both_formats(self, tmp_path):
        records = workload_records(accesses=400)
        text, binary = tmp_path / "t.txt", tmp_path / "t.rpt2"
        write_trace(text, records)
        write_trace(binary, records, format=FORMAT_BINARY)
        info_t, info_b = inspect_trace(text), inspect_trace(binary)
        assert info_t.format == FORMAT_TEXT and info_b.format == FORMAT_BINARY
        assert info_t.records == info_b.records == len(records)
        assert info_t.writes == info_b.writes
        assert info_b.core_count == 16
        assert info_b.bytes_per_record < info_t.bytes_per_record

    def test_inspect_reports_streams_and_blocks(self, tmp_path):
        records = workload_records(accesses=400)
        blocked = tmp_path / "t.rpt3"
        binary = tmp_path / "t.rpt2"
        write_trace_v3(blocked, records, block_records=100)
        write_trace_v2(binary, records)
        info_blocked = inspect_trace(blocked)
        info_binary = inspect_trace(binary)
        # Stored blocks for v3; estimated decode chunks for v2.
        assert info_blocked.blocks == -(-len(records) // 100)
        assert 0 < info_blocked.records_per_block <= 100.0
        assert info_binary.blocks >= 1
        assert info_blocked.decode_mb_s > 0
        # Per-stream counts: same partition from either format.
        assert info_blocked.stream_records == info_binary.stream_records
        assert sum(info_blocked.stream_records.values()) == len(records)
        for stream in info_blocked.stream_records:
            assert stream.startswith("p") and "/c" in stream

    def test_cli_trace_info_renders_blocked_trace(self, tmp_path, capsys):
        from repro.__main__ import main as repro_main

        path = tmp_path / "t.rpt3"
        write_trace_v3(path, workload_records(accesses=300), block_records=64)
        assert repro_main(["trace", "info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "blocked trace" in out
        assert "blocks" in out and "records/block" in out
        assert "decode MB/s" in out
        assert "streams" in out and "p0/c0" in out
