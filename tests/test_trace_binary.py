"""Round-trip, determinism and error-context tests for binary trace v2."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.plan import ExperimentSettings, RunSpec
from repro.errors import WorkloadError
from repro.trace import (
    FORMAT_BINARY,
    FORMAT_TEXT,
    BinaryTraceWriter,
    count_records,
    inspect_trace,
    read_trace,
    sniff_format,
    write_trace,
    write_trace_v2,
)
from repro.trace.binary import HEADER_SIZE, read_trace_v2, stored_record_count
from repro.trace.record import AccessRecord, AccessType
from repro.workloads.base import SyntheticWorkload
from repro.workloads.multiprocess import build_multiprocess_spec, generate_multiprocess
from repro.workloads.registry import build_spec

TINY = ExperimentSettings(scale=16, accesses=1500, multiprocess_accesses=800)


def workload_records(name="barnes", accesses=3000):
    spec = build_spec(name, total_accesses=accesses).with_footprint_scale(32)
    return list(SyntheticWorkload(spec).generate())


#: Arbitrary records: adversarial cores/addresses, not just generator output.
record_strategy = st.builds(
    AccessRecord,
    core=st.integers(min_value=0, max_value=1 << 20),
    vaddr=st.integers(min_value=0, max_value=(1 << 52) - 1),
    access_type=st.sampled_from(list(AccessType)),
    process_id=st.integers(min_value=0, max_value=1 << 10),
)


class TestFormatSniffing:
    def test_sniffs_both_formats(self, tmp_path):
        records = workload_records(accesses=500)
        text = tmp_path / "t.txt"
        binary = tmp_path / "t.rpt2"
        write_trace(text, records)
        write_trace(binary, records, format=FORMAT_BINARY)
        assert sniff_format(text) == FORMAT_TEXT
        assert sniff_format(binary) == FORMAT_BINARY

    def test_read_trace_dispatches_transparently(self, tmp_path):
        records = workload_records(accesses=500)
        text = tmp_path / "t.txt"
        binary = tmp_path / "t.rpt2"
        write_trace(text, records)
        write_trace(binary, records, format=FORMAT_BINARY)
        assert list(read_trace(text)) == records
        assert list(read_trace(binary)) == records

    def test_empty_file_is_text(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_bytes(b"")
        assert sniff_format(path) == FORMAT_TEXT
        assert list(read_trace(path)) == []

    def test_unknown_write_format_rejected(self, tmp_path):
        with pytest.raises(WorkloadError, match="unknown trace format"):
            write_trace(tmp_path / "t", [], format="parquet")

    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError, match="does not exist"):
            sniff_format(tmp_path / "nope")


class TestBinaryRoundTrip:
    def test_workload_stream_round_trips(self, tmp_path):
        records = workload_records()
        path = tmp_path / "t.rpt2"
        written = write_trace_v2(path, records)
        assert written == len(records)
        assert list(read_trace_v2(path)) == records

    def test_text_and_binary_decode_identically(self, tmp_path):
        records = workload_records("dedup")
        text = tmp_path / "t.txt"
        binary = tmp_path / "t.rpt2"
        write_trace(text, records)
        write_trace(binary, records, format=FORMAT_BINARY)
        assert list(read_trace(text)) == list(read_trace(binary))

    def test_multiprocess_stream_round_trips(self, tmp_path):
        mp = build_multiprocess_spec("cholesky", total_accesses_per_copy=1000)
        records = list(generate_multiprocess(mp))
        path = tmp_path / "mp.rpt2"
        write_trace_v2(path, records)
        assert list(read_trace_v2(path)) == records

    def test_write_is_deterministic(self, tmp_path):
        records = workload_records(accesses=1000)
        a, b = tmp_path / "a.rpt2", tmp_path / "b.rpt2"
        write_trace_v2(a, records)
        write_trace_v2(b, records)
        assert a.read_bytes() == b.read_bytes()

    def test_binary_is_smaller_than_text(self, tmp_path):
        records = workload_records(accesses=2000)
        text, binary = tmp_path / "t.txt", tmp_path / "t.rpt2"
        write_trace(text, records)
        write_trace(binary, records, format=FORMAT_BINARY)
        assert binary.stat().st_size * 4 < text.stat().st_size

    @settings(max_examples=30, deadline=None)
    @given(records=st.lists(record_strategy, max_size=60))
    def test_arbitrary_records_round_trip(self, records, tmp_path_factory):
        path = tmp_path_factory.mktemp("hyp") / "t.rpt2"
        write_trace_v2(path, records)
        assert list(read_trace_v2(path)) == records

    def test_streaming_writer_counts_and_patches_header(self, tmp_path):
        records = workload_records(accesses=500)
        path = tmp_path / "t.rpt2"
        with BinaryTraceWriter(path) as writer:
            for record in records:
                writer.write(record)
            assert writer.record_count == len(records)
        assert stored_record_count(path) == len(records)
        assert count_records(path) == len(records)

    def test_count_records_is_o1_for_closed_binary(self, tmp_path):
        records = workload_records(accesses=500)
        path = tmp_path / "t.rpt2"
        write_trace_v2(path, records)
        # Corrupt everything after the header: an O(1) count never sees it.
        data = bytearray(path.read_bytes())
        data[HEADER_SIZE:] = b"\xff" * 4
        path.write_bytes(bytes(data))
        assert count_records(path) == len(records)


class TestBinaryErrors:
    def make_trace(self, tmp_path, records=None):
        path = tmp_path / "t.rpt2"
        write_trace_v2(path, records if records is not None else workload_records(accesses=200))
        return path

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "t.rpt2"
        path.write_bytes(b"\x89RPT9\r\n\x1a" + b"\x00" * 8)
        with pytest.raises(WorkloadError, match="bad magic"):
            list(read_trace_v2(path))

    def test_truncated_file_names_record_and_offset(self, tmp_path):
        path = self.make_trace(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 1])
        with pytest.raises(WorkloadError, match=r"record \d+ at byte \d+.*truncated"):
            list(read_trace_v2(path))

    def test_invalid_type_code_names_record_and_offset(self, tmp_path):
        path = self.make_trace(tmp_path)
        data = bytearray(path.read_bytes())
        data[HEADER_SIZE] |= 0x03  # access-type code 3 is reserved
        path.write_bytes(bytes(data))
        with pytest.raises(WorkloadError, match="record 0 at byte 16.*type"):
            list(read_trace_v2(path))

    def test_header_count_mismatch_detected(self, tmp_path):
        path = self.make_trace(tmp_path)
        data = bytearray(path.read_bytes())
        # Lie about the record count.
        data[8:16] = (5).to_bytes(8, "little")
        path.write_bytes(bytes(data))
        with pytest.raises(WorkloadError, match="promises 5 records"):
            list(read_trace_v2(path))

    def test_text_errors_still_name_file_and_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# header\n0 1 R 0x40\nnot a record\n")
        with pytest.raises(WorkloadError, match="bad.txt:3"):
            list(read_trace(path))


class TestReplayVsGenerate:
    """Replaying a recorded trace must be bit-identical to generating."""

    @pytest.mark.parametrize("policy", ["baseline", "allarm"])
    def test_snapshots_bit_identical(self, tmp_path, policy):
        from repro.analysis.executor import execute_run_spec, record_spec_trace

        spec = RunSpec("barnes", policy, settings=TINY)
        path = tmp_path / "barnes.rpt2"
        record_spec_trace(spec, path)
        generated = execute_run_spec(spec)
        replayed = execute_run_spec(spec.with_trace(path))
        assert replayed.to_dict() == generated.to_dict()

    def test_multiprocess_snapshot_bit_identical(self, tmp_path):
        from repro.analysis.executor import execute_run_spec, record_spec_trace

        spec = RunSpec("barnes", "allarm", layout="2p", settings=TINY)
        path = tmp_path / "barnes-2p.rpt2"
        record_spec_trace(spec, path)
        assert (
            execute_run_spec(spec.with_trace(path)).to_dict()
            == execute_run_spec(spec).to_dict()
        )

    def test_executor_trace_dir_serves_sweep(self, tmp_path):
        from repro.analysis.executor import (
            SOURCE_REPLAYED,
            SweepExecutor,
        )
        from repro.analysis.plan import figure3_plan

        plan = figure3_plan(TINY, benchmarks=["barnes"])
        recorded = SweepExecutor(
            trace_dir=tmp_path / "traces", record_traces=True
        ).run_plan(plan)
        assert all(r.source == SOURCE_REPLAYED for r in recorded.results)
        # One trace file serves both policies of the same workload stream.
        assert len(list((tmp_path / "traces").glob("*.rpt2"))) == 1
        generated = SweepExecutor().run_plan(plan)
        for left, right in zip(recorded.results, generated.results):
            assert left.spec == right.spec
            assert left.snapshot.to_dict() == right.snapshot.to_dict()

    def test_trace_source_changes_cache_identity(self, tmp_path):
        spec = RunSpec("barnes", "allarm", settings=TINY)
        traced = spec.with_trace(tmp_path / "t.rpt2")
        assert traced.digest() != spec.digest()
        assert traced.stream_digest() == spec.stream_digest()


class TestInspect:
    def test_inspect_reports_both_formats(self, tmp_path):
        records = workload_records(accesses=400)
        text, binary = tmp_path / "t.txt", tmp_path / "t.rpt2"
        write_trace(text, records)
        write_trace(binary, records, format=FORMAT_BINARY)
        info_t, info_b = inspect_trace(text), inspect_trace(binary)
        assert info_t.format == FORMAT_TEXT and info_b.format == FORMAT_BINARY
        assert info_t.records == info_b.records == len(records)
        assert info_t.writes == info_b.writes
        assert info_b.core_count == 16
        assert info_b.bytes_per_record < info_t.bytes_per_record
