"""Chaos suite: the execution layer under deterministic injected faults.

The contract under test: with worker crashes, worker deaths (simulated
OOM kills), hangs, and torn cache/checkpoint writes injected through
:mod:`repro.faults`, sweeps and sharded replays must *complete* — via
retries, pool rebuilds and quarantine — and their final snapshots must
be **bit-identical** (``snapshot_diff == []``) to fault-free runs, on
both the packed and batched engines.  Every fault here is deterministic
(site/key/attempt matching, per-process fire caps, seeded corruption):
there are no sleeps-and-hope races, so a failure is a real regression.

The golden-grid gate at the bottom also appends a ``bench:"faults"``
entry to ``BENCH_faults.json`` recording what the machinery absorbed.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from pathlib import Path

import pytest

from repro import faults
from repro.analysis.executor import (
    SnapshotCache,
    SweepExecutor,
    execute_run_spec,
)
from repro.analysis.benchlog import append_bench_entry
from repro.analysis.plan import ExperimentSettings, RunSpec, SweepPlan
from repro.analysis.retrypool import RetryPolicy, run_tasks
from repro.analysis.shard import (
    latest_checkpoint,
    record_checkpoints,
    replay_sharded,
)
from repro.errors import (
    ConfigurationError,
    ExecutionError,
    InjectedFaultError,
    SimulationError,
)
from repro.ioutil import atomic_write_bytes, atomic_write_json
from repro.stats.compare import snapshot_diff
from repro.stats.goldens import golden_specs
from repro.system.checkpoint import encode_checkpoint, verify_checkpoint
from repro.system.simulator import simulate
from repro.trace.binary import write_trace_v3
from repro.trace.io import read_trace, read_trace_chunks

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_LOG = REPO_ROOT / "BENCH_faults.json"

#: Deliberately tiny settings so retry-machinery tests stay fast.
TINY = ExperimentSettings(scale=16, accesses=1500, multiprocess_accesses=800)

BLOCK = 256
EPOCH = 512


@pytest.fixture(autouse=True)
def _isolated_faults():
    """Every test starts and ends with no fault plan installed."""
    faults.clear()
    yield
    faults.clear()


def _tiny_plan(benchmarks=("barnes", "hotspot")):
    """A small multi-spec plan: both policies per benchmark."""
    specs = []
    for benchmark in benchmarks:
        for policy in ("baseline", "allarm"):
            specs.append(RunSpec(benchmark, policy, settings=TINY))
    return SweepPlan(name="chaos-tiny", specs=tuple(specs))


def _no_leaked_children():
    """True when no worker process outlived its pool."""
    return not any(p.is_alive() for p in multiprocessing.active_children())


# ----------------------------------------------------------------------
# Fault plan parsing and matching
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_rules_and_options(self):
        plan = faults.parse_faults(
            "sweep.run crash key=#2: attempts=2; "
            "io.write torn key=.json fires=1; "
            "shard.span hang delay=3600; "
            "io.write corrupt key=.ckpt seed=7"
        )
        kinds = [rule.kind for rule in plan.rules]
        assert kinds == ["crash", "torn", "hang", "corrupt"]
        assert plan.rules[0].key == "#2:" and plan.rules[0].attempts == 2
        assert plan.rules[1].fires == 1
        assert plan.rules[2].delay_s == 3600.0
        assert plan.rules[3].seed == 7

    def test_describe_round_trips(self):
        text = (
            "sweep.run crash key=#2: attempts=2; io.write torn fires=1; "
            "sim.epoch slow delay=0.5 seed=3"
        )
        plan = faults.parse_faults(text)
        assert faults.parse_faults(plan.describe()) == plan

    def test_plan_is_picklable(self):
        import pickle

        plan = faults.parse_faults("sweep.run exit key=#1 attempts=1")
        assert pickle.loads(pickle.dumps(plan)) == plan

    @pytest.mark.parametrize(
        "text",
        [
            "sweep.run explode",  # unknown kind
            "crash",  # missing site/kind
            "sweep.run crash attempts=zero",  # malformed int
            "sweep.run crash attempts=0",  # out of range
            "sweep.run crash fires=0",
            "sweep.run crash bogus=1",  # unknown option
            "sweep.run crash key",  # not name=value
        ],
    )
    def test_malformed_plans_fail_loudly(self, text):
        with pytest.raises(ConfigurationError):
            faults.parse_faults(text)

    def test_environment_activation(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "sweep.run crash key=#0")
        faults.clear()
        assert faults.active().rules[0].kind == "crash"
        with pytest.raises(InjectedFaultError):
            faults.fire("sweep.run", key="#0:barnes")
        # Non-matching key passes through.
        faults.fire("sweep.run", key="#1:barnes")

    def test_injected_restores_previous_plan(self):
        with faults.injected("sweep.run crash"):
            assert faults.active()
            with faults.injected(faults.FaultPlan()):
                assert not faults.active()
            assert faults.active()
        assert not faults.active()

    def test_attempt_matching(self):
        with faults.injected("sweep.run crash attempts=2"):
            faults.set_attempt(2)
            with pytest.raises(InjectedFaultError):
                faults.fire("sweep.run", key="x")
            faults.set_attempt(3)
            faults.fire("sweep.run", key="x")  # attempt 3 > attempts=2

    def test_fires_cap_is_per_process(self):
        with faults.injected("io.write torn fires=2"):
            data = b"0123456789abcdef"
            assert faults.filter_bytes("io.write", "a.json", data) != data
            assert faults.filter_bytes("io.write", "b.json", data) != data
            # Cap reached: third write is untouched.
            assert faults.filter_bytes("io.write", "c.json", data) == data
            counts = faults.fire_counts()
            assert list(counts.values()) == [2]

    def test_corruption_is_deterministic(self):
        data = bytes(range(256))
        with faults.injected("io.write corrupt seed=9"):
            first = faults.filter_bytes("io.write", "x.ckpt", data)
        with faults.injected("io.write corrupt seed=9"):
            second = faults.filter_bytes("io.write", "x.ckpt", data)
        assert first == second != data
        with faults.injected("io.write corrupt seed=10"):
            third = faults.filter_bytes("io.write", "x.ckpt", data)
        assert third != first

    def test_slow_fault_falls_through(self):
        with faults.injected("sweep.run slow delay=0"):
            faults.fire("sweep.run", key="x")  # returns, does not raise


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_exponential_backoff(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.5)
        assert policy.delay_for(1) == 0.0
        assert policy.delay_for(2) == 0.5
        assert policy.delay_for(3) == 1.0
        assert policy.delay_for(4) == 2.0

    def test_zero_delay_stays_zero(self):
        assert RetryPolicy(max_attempts=3).delay_for(3) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_s": -1.0},
            {"timeout_s": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


# ----------------------------------------------------------------------
# Durable atomic writes
# ----------------------------------------------------------------------
class TestDurableWrites:
    def test_fsync_flushes_file_and_directory(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync

        def counting_fsync(fd):
            synced.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", counting_fsync)
        atomic_write_json(tmp_path / "plain.json", {"a": 1})
        assert synced == []  # durability is opt-in
        atomic_write_bytes(tmp_path / "durable.bin", b"payload", fsync=True)
        assert len(synced) == 2  # temp file, then parent directory

    def test_torn_write_fault_routes_through_writers(self, tmp_path):
        payload = {"numbers": list(range(64))}
        with faults.injected("io.write torn key=torn.json fires=1"):
            atomic_write_json(tmp_path / "torn.json", payload)
            atomic_write_json(tmp_path / "clean.json", payload)
        with pytest.raises(ValueError):
            json.loads((tmp_path / "torn.json").read_text())
        assert json.loads((tmp_path / "clean.json").read_text()) == payload


# ----------------------------------------------------------------------
# Self-healing snapshot cache
# ----------------------------------------------------------------------
class TestCacheSelfHealing:
    def _spec(self):
        return RunSpec("barnes", "baseline", settings=TINY)

    def test_corrupt_entry_is_quarantined(self, tmp_path):
        spec = self._spec()
        cache = SnapshotCache(tmp_path)
        path = cache.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json")
        assert cache.load(spec) is None
        assert cache.stats.quarantined == 1
        assert not path.exists()
        quarantined = path.with_name(path.name + ".corrupt")
        assert quarantined.read_text() == "{not json"
        # The damaged bytes are gone from the load path: the next load is
        # a clean miss, not another parse-and-reject of the same file.
        assert cache.load(spec) is None
        assert cache.stats.invalid == 1

    def test_digest_catches_tampered_but_parsable_entries(self, tmp_path):
        spec = self._spec()
        snapshot = execute_run_spec(spec)
        cache = SnapshotCache(tmp_path)
        path = cache.store(spec, snapshot)
        data = json.loads(path.read_text())
        data["snapshot"]["l2_misses"] += 1  # silent bit-rot stand-in
        path.write_text(json.dumps(data))
        assert cache.load(spec) is None
        assert cache.stats.quarantined == 1
        assert cache.load(spec) is None  # quarantined, not re-parsed

    def test_injected_torn_write_heals_on_next_sweep(self, tmp_path):
        spec = self._spec()
        baseline = execute_run_spec(spec)
        with faults.injected("io.write torn key=.json fires=1"):
            writer = SweepExecutor(cache_dir=tmp_path)
            writer.run(spec)
        # The torn entry is on disk; a fresh executor quarantines it,
        # re-executes, and ends bit-identical to the fault-free run.
        reader = SweepExecutor(cache_dir=tmp_path)
        healed = reader.run(spec)
        assert snapshot_diff(baseline, healed) == []
        assert reader.disk_cache.stats.quarantined == 1
        third = SweepExecutor(cache_dir=tmp_path)
        assert snapshot_diff(baseline, third.run(spec)) == []
        assert third.disk_cache.stats.hits == 1


# ----------------------------------------------------------------------
# Sweep executor under faults (tiny grid: retry machinery semantics)
# ----------------------------------------------------------------------
class TestSweepRetries:
    def _baseline(self, plan):
        return {
            result.spec: result.snapshot
            for result in SweepExecutor().run_plan(plan).results
        }

    def _assert_identical(self, outcome, baseline):
        assert len(outcome.results) == len(baseline)
        for result in outcome.results:
            assert snapshot_diff(baseline[result.spec], result.snapshot) == []

    def test_retry_until_success_is_bit_identical(self):
        plan = _tiny_plan()
        baseline = self._baseline(plan)
        with faults.injected("sweep.run crash key=#1: attempts=2"):
            outcome = SweepExecutor(
                workers=2, retry=RetryPolicy(max_attempts=3)
            ).run_plan(plan)
        assert outcome.ok and outcome.retries == 2
        self._assert_identical(outcome, baseline)

    def test_exhausted_attempts_raise_with_partial_outcome(self):
        plan = _tiny_plan()
        with faults.injected("sweep.run crash key=#1: attempts=99"):
            with pytest.raises(ExecutionError) as info:
                SweepExecutor(
                    workers=2, retry=RetryPolicy(max_attempts=2)
                ).run_plan(plan)
        assert len(info.value.failures) == 1
        failure = info.value.failures[0]
        assert failure.kind == "error" and failure.attempts == 2
        assert info.value.outcome is not None

    def test_keep_going_completes_the_rest_of_the_grid(self):
        plan = _tiny_plan()
        baseline = self._baseline(plan)
        with faults.injected("sweep.run crash key=#1: attempts=99"):
            outcome = SweepExecutor(
                workers=2, retry=RetryPolicy(max_attempts=2), keep_going=True
            ).run_plan(plan)
        assert not outcome.ok
        assert len(outcome.failures) == 1
        assert len(outcome.results) == len(plan) - 1
        for result in outcome.results:
            assert snapshot_diff(baseline[result.spec], result.snapshot) == []

    def test_worker_death_rebuilds_pool_and_requeues(self):
        plan = _tiny_plan()
        baseline = self._baseline(plan)
        with faults.injected("sweep.run exit key=#2: attempts=1"):
            outcome = SweepExecutor(
                workers=2, retry=RetryPolicy(max_attempts=3)
            ).run_plan(plan)
        assert outcome.ok and outcome.pool_rebuilds >= 1
        self._assert_identical(outcome, baseline)
        assert _no_leaked_children()

    def test_hung_worker_is_killed_at_the_deadline(self):
        plan = _tiny_plan(benchmarks=("barnes",))
        baseline = self._baseline(plan)
        with faults.injected("sweep.run hang key=#0: attempts=1 delay=3600"):
            outcome = SweepExecutor(
                workers=2, retry=RetryPolicy(max_attempts=2, timeout_s=4.0)
            ).run_plan(plan)
        assert outcome.ok and outcome.timeouts >= 1
        self._assert_identical(outcome, baseline)
        assert _no_leaked_children()

    def test_interrupt_preserves_finished_results(self):
        plan = _tiny_plan()
        with faults.injected("pool.collect interrupt key=0"):
            outcome = SweepExecutor(workers=2).run_plan(plan)
        assert outcome.interrupted and not outcome.ok
        assert len(outcome.results) >= 1
        assert len(outcome.results) + len(outcome.failures) == len(plan)
        assert all(f.kind == "interrupted" for f in outcome.failures)
        assert _no_leaked_children()

    def test_inline_serial_retry(self):
        plan = _tiny_plan(benchmarks=("barnes",))
        baseline = self._baseline(plan)
        with faults.injected("sweep.run crash key=#0: attempts=1"):
            outcome = SweepExecutor(
                workers=1, retry=RetryPolicy(max_attempts=2)
            ).run_plan(plan)
        assert outcome.ok and outcome.retries == 1
        self._assert_identical(outcome, baseline)


# ----------------------------------------------------------------------
# Checkpoint discovery under damage
# ----------------------------------------------------------------------
class TestCheckpointQuarantine:
    def test_latest_checkpoint_skips_and_quarantines_torn_files(self, tmp_path):
        good = encode_checkpoint({"epoch": 1})
        (tmp_path / "epoch-000001.ckpt").write_bytes(good)
        (tmp_path / "epoch-000002.ckpt").write_bytes(good[: len(good) // 2])
        found = latest_checkpoint(tmp_path)
        assert found is not None
        epoch, path = found
        assert epoch == 1 and path.name == "epoch-000001.ckpt"
        assert (tmp_path / "epoch-000002.ckpt.corrupt").exists()
        assert not (tmp_path / "epoch-000002.ckpt").exists()

    def test_unverified_scan_keeps_old_behaviour(self, tmp_path):
        good = encode_checkpoint({"epoch": 1})
        (tmp_path / "epoch-000001.ckpt").write_bytes(good)
        (tmp_path / "epoch-000002.ckpt").write_bytes(b"garbage")
        epoch, _path = latest_checkpoint(tmp_path, verify=False)
        assert epoch == 2
        assert (tmp_path / "epoch-000002.ckpt").exists()

    def test_verify_checkpoint_matches_decode_errors(self):
        blob = encode_checkpoint({"x": 1})
        assert verify_checkpoint(blob)
        with pytest.raises(SimulationError):
            verify_checkpoint(blob[:-1])


# ----------------------------------------------------------------------
# Golden-grid chaos gate (the acceptance criterion)
# ----------------------------------------------------------------------
def _grid():
    """Family-covering slice of the golden grid (as in test_shard)."""
    specs = golden_specs()
    return [specs[3], specs[11], specs[17]]


def _write_trace(spec, path):
    write_trace_v3(
        path,
        list(spec.access_stream()),
        block_records=BLOCK,
        epoch_records=EPOCH,
    )


def _plain_snapshot(config, trace, engine):
    accesses = (
        read_trace_chunks(trace) if engine == "batched" else read_trace(trace)
    )
    return simulate(config, accesses, engine=engine).snapshot


CHAOS_SWEEP_PLAN = (
    # Run 0 crashes on its first attempt, run 1's worker is OOM-killed,
    # and the first snapshot-cache write is torn on disk.
    "sweep.run crash key=#0: attempts=1; "
    "sweep.run exit key=#1: attempts=1; "
    "io.write torn key=.json fires=1"
)


@pytest.mark.parametrize("engine", ("packed", "batched"))
def test_golden_sweep_chaos_bit_identical(tmp_path, engine):
    plan = SweepPlan(
        name=f"chaos-golden-{engine}",
        specs=tuple(spec.with_engine(engine) for spec in _grid()),
    )
    baseline = {
        result.spec: result.snapshot
        for result in SweepExecutor().run_plan(plan).results
    }

    cache_dir = tmp_path / "cache"
    with faults.injected(CHAOS_SWEEP_PLAN):
        executor = SweepExecutor(
            workers=2, cache_dir=cache_dir, retry=RetryPolicy(max_attempts=3)
        )
        outcome = executor.run_plan(plan)
    assert outcome.ok
    assert outcome.retries >= 2  # the crash and the worker death
    for result in outcome.results:
        assert snapshot_diff(baseline[result.spec], result.snapshot) == []

    # One cache entry was torn on disk; a fresh fault-free executor
    # quarantines it, re-executes that one run, and the whole grid is
    # again bit-identical.
    healer = SweepExecutor(cache_dir=cache_dir)
    healed = healer.run_plan(plan)
    assert healed.ok
    assert healer.disk_cache.stats.quarantined == 1
    for result in healed.results:
        assert snapshot_diff(baseline[result.spec], result.snapshot) == []

    append_bench_entry(
        BENCH_LOG,
        {
            "bench": "faults",
            "engine": engine,
            "scenario": "sweep-crash-exit-torn",
            "runs": len(plan),
            "retries": outcome.retries,
            "timeouts": outcome.timeouts,
            "pool_rebuilds": outcome.pool_rebuilds,
            "quarantines": healer.disk_cache.stats.quarantined,
        },
        repo_root=REPO_ROOT,
    )


@pytest.mark.parametrize("engine", ("packed", "batched"))
def test_golden_checkpointed_replay_chaos_bit_identical(tmp_path, engine):
    spec = _grid()[0]
    config = spec.config()
    trace = tmp_path / "chaos.rpt3"
    _write_trace(spec, trace)
    base = _plain_snapshot(config, trace, engine)
    ckpt = tmp_path / "ck"

    # Attempt 1 tears the epoch-1 checkpoint on disk, then crashes at
    # the epoch-2 boundary.  The retry quarantines the torn checkpoint,
    # restarts from scratch (nothing intact remains), and completes.
    with faults.injected(
        "io.write torn key=epoch-000001 fires=1; "
        "sim.epoch crash key=#2 attempts=1"
    ):
        result = record_checkpoints(
            config, trace, EPOCH, ckpt, engine=engine,
            retry=RetryPolicy(max_attempts=2),
        )
    assert snapshot_diff(base, result.snapshot) == []
    assert (ckpt / "epoch-000001.ckpt.corrupt").exists()
    found = latest_checkpoint(ckpt)
    assert found is not None and found[0] >= 2

    # The refilled directory now serves a 4-shard replay whose first
    # span crashes once and is retried from its epoch checkpoint.
    with faults.injected("shard.span crash key=#0- attempts=1"):
        sharded = replay_sharded(
            config, trace, 4, ckpt, engine=engine,
            retry=RetryPolicy(max_attempts=2),
        )
    assert snapshot_diff(base, sharded.snapshot) == []
    assert len(sharded.spans) == 4

    append_bench_entry(
        BENCH_LOG,
        {
            "bench": "faults",
            "engine": engine,
            "scenario": "checkpoint-torn-crash-shard-crash",
            "runs": 1,
            "retries": 2,
            "timeouts": 0,
            "quarantines": 1,
        },
        repo_root=REPO_ROOT,
    )


def test_golden_sharded_hang_is_killed_and_retried(tmp_path):
    spec = _grid()[0]
    config = spec.config()
    trace = tmp_path / "hang.rpt3"
    _write_trace(spec, trace)
    base = _plain_snapshot(config, trace, "packed")
    ckpt = tmp_path / "ck"
    record_checkpoints(config, trace, EPOCH, ckpt, engine="packed")

    with faults.injected("shard.span hang key=#0- attempts=1 delay=3600"):
        sharded = replay_sharded(
            config, trace, 4, ckpt, engine="packed",
            retry=RetryPolicy(max_attempts=2, timeout_s=8.0),
        )
    assert snapshot_diff(base, sharded.snapshot) == []
    assert _no_leaked_children()


def test_sharded_span_failure_is_actionable(tmp_path):
    spec = _grid()[0]
    config = spec.config()
    trace = tmp_path / "fail.rpt3"
    _write_trace(spec, trace)
    ckpt = tmp_path / "ck"
    record_checkpoints(config, trace, EPOCH, ckpt, engine="packed")

    with faults.injected("shard.span crash key=#0- attempts=99"):
        with pytest.raises(ExecutionError, match="span"):
            replay_sharded(
                config, trace, 4, ckpt, engine="packed",
                retry=RetryPolicy(max_attempts=2),
            )


def test_retry_resume_restarts_from_epoch_checkpoint(tmp_path):
    """A retried serial replay resumes mid-trace, not from the world's start."""
    spec = _grid()[0]
    config = spec.config()
    trace = tmp_path / "resume.rpt3"
    _write_trace(spec, trace)
    base = _plain_snapshot(config, trace, "packed")
    ckpt = tmp_path / "ck"

    # Crash at epoch 3 on attempt 1; epochs 1-2 survive on disk intact.
    with faults.injected("sim.epoch crash key=#3 attempts=1"):
        result = record_checkpoints(
            config, trace, EPOCH, ckpt, engine="packed",
            retry=RetryPolicy(max_attempts=2),
        )
    assert snapshot_diff(base, result.snapshot) == []
    # Epochs 1-2 survived attempt 1 intact, so the retry resumed rather
    # than replaying from zero; the directory is fully refilled.
    found = latest_checkpoint(ckpt)
    assert found is not None and found[0] >= 3


# ----------------------------------------------------------------------
# Single-run fault tolerance (run() used to bypass run_tasks entirely)
# ----------------------------------------------------------------------
class TestSingleRunFaultTolerance:
    """``SweepExecutor.run`` honours the retry policy like ``run_plan``.

    The single-run path used to call ``execute_run_spec`` directly: no
    retries, no deadline, and the ``sweep.run`` fault site never fired,
    so every facade call and server request silently ran without the
    fault tolerance the executor advertised.
    """

    def _spec(self, engine):
        return RunSpec("barnes", "allarm", settings=TINY).with_engine(engine)

    @pytest.mark.parametrize("engine", ("packed", "batched"))
    def test_run_retries_and_heals(self, engine):
        spec = self._spec(engine)
        baseline = SweepExecutor().run(spec)
        with faults.injected("sweep.run crash key=#0: attempts=1"):
            executor = SweepExecutor(retry=RetryPolicy(max_attempts=2))
            healed = executor.run(spec)
            fired = sum(faults.fire_counts().values())
        assert fired >= 1  # the crash really hit the single-run path
        assert snapshot_diff(baseline, healed) == []

    @pytest.mark.parametrize("engine", ("packed", "batched"))
    def test_run_exhausted_attempts_raise(self, engine):
        spec = self._spec(engine)
        with faults.injected("sweep.run crash key=#0: attempts=99"):
            executor = SweepExecutor(retry=RetryPolicy(max_attempts=2))
            with pytest.raises(ExecutionError, match="permanently") as info:
                executor.run(spec)
        assert len(info.value.failures) == 1
        failure = info.value.failures[0]
        assert failure.spec == spec and failure.attempts == 2

    def test_run_hang_is_killed_at_the_deadline(self):
        spec = self._spec("packed")
        baseline = SweepExecutor().run(spec)
        with faults.injected("sweep.run hang key=#0: attempts=1 delay=3600"):
            executor = SweepExecutor(
                retry=RetryPolicy(max_attempts=2, timeout_s=4.0)
            )
            healed = executor.run(spec)
        assert snapshot_diff(baseline, healed) == []
        assert _no_leaked_children()

    def test_run_interrupt_propagates(self):
        spec = self._spec("packed")
        with faults.injected("pool.collect interrupt key=0"):
            with pytest.raises(KeyboardInterrupt):
                SweepExecutor().run(spec)

    def test_run_default_policy_still_fails_fast(self):
        spec = self._spec("packed")
        with faults.injected("sweep.run crash key=#0: attempts=1"):
            with pytest.raises(ExecutionError):
                SweepExecutor().run(spec)


# ----------------------------------------------------------------------
# Inline pool.collect parity (the 1-worker path used to skip the site)
# ----------------------------------------------------------------------
class TestInlineCollectParity:
    def test_inline_sweep_fires_pool_collect(self):
        plan = _tiny_plan()
        with faults.injected("pool.collect interrupt key=0"):
            outcome = SweepExecutor(workers=1).run_plan(plan)
        assert outcome.interrupted and not outcome.ok
        # The interrupt fired *after* run 0 was collected: its result is
        # preserved, the remainder is marked interrupted — exactly the
        # pooled path's semantics.
        assert len(outcome.results) == 1
        assert len(outcome.failures) == len(plan) - 1
        assert all(f.kind == "interrupted" for f in outcome.failures)

    def test_inline_collect_counts_match_pooled(self):
        payloads = [1, 2, 3]
        with faults.injected("pool.collect slow delay=0"):
            inline = run_tasks(payloads, _double, max_workers=1)
            inline_fired = sum(faults.fire_counts().values())
        faults.clear()
        with faults.injected("pool.collect slow delay=0"):
            pooled = run_tasks(payloads, _double, max_workers=2)
            pooled_fired = sum(faults.fire_counts().values())
        assert inline.results == pooled.results
        assert inline_fired == pooled_fired == len(payloads)


def _double(value):
    return value * 2


# ----------------------------------------------------------------------
# cached_fraction regression: failures count against the full plan
# ----------------------------------------------------------------------
def test_cached_fraction_counts_failures_against_plan(tmp_path):
    plan = _tiny_plan()  # 4 specs
    SweepExecutor(cache_dir=tmp_path).run_plan(plan)

    # Evict one entry so exactly one spec must re-execute — and fail.
    cache = SnapshotCache(tmp_path)
    cache.path_for(plan.specs[1]).unlink()
    with faults.injected("sweep.run crash key=#0: attempts=99"):
        outcome = SweepExecutor(
            cache_dir=tmp_path,
            retry=RetryPolicy(max_attempts=2),
            keep_going=True,
        ).run_plan(plan)

    assert not outcome.ok and len(outcome.failures) == 1
    assert len(outcome.results) == len(plan) - 1
    # 3 of 4 planned runs came from cache.  The old computation divided
    # by the completed-result count and reported 3/3 = 1.0, letting a
    # partly failed sweep sail through --min-cache-fraction gates.
    assert outcome.cached_fraction == pytest.approx(3 / 4)
