"""Tests for frame pools, page tables and NUMA placement policies."""

from __future__ import annotations

import pytest

from repro.errors import AddressError, AllocationError, ConfigurationError
from repro.memory.address import AddressMap
from repro.numa.allocator import NumaAllocator, available_placement_policies
from repro.numa.frames import FrameAllocator
from repro.numa.page_table import PageTable


def small_map() -> AddressMap:
    """A tiny machine: 4 nodes, 16 pages each."""
    return AddressMap(node_count=4, memory_bytes=4 * 16 * 4096)


class TestFrameAllocator:
    def test_prefers_requested_node(self):
        frames = FrameAllocator(small_map())
        frame = frames.allocate_on(2)
        assert small_map().home_node_of_frame(frame) == 2

    def test_spills_when_node_exhausted(self):
        amap = small_map()
        frames = FrameAllocator(amap, frames_per_node=2)
        for _ in range(2):
            frames.allocate_on(0)
        spilled = frames.allocate_on(0)
        assert amap.home_node_of_frame(spilled) != 0
        assert frames.spill_count() == 1

    def test_exhaustion_raises(self):
        frames = FrameAllocator(small_map(), frames_per_node=1)
        for node in range(4):
            frames.allocate_on(node)
        with pytest.raises(AllocationError):
            frames.allocate_on(0)

    def test_release_returns_frame(self):
        frames = FrameAllocator(small_map(), frames_per_node=1)
        frame = frames.allocate_on(1)
        assert frames.free_frames(1) == 0
        frames.release(frame)
        assert frames.free_frames(1) == 1

    def test_unknown_node_rejected(self):
        frames = FrameAllocator(small_map())
        with pytest.raises(ConfigurationError):
            frames.allocate_on(9)


class TestPageTable:
    def test_map_and_lookup(self):
        table = PageTable(process_id=1)
        table.map_page(10, physical_frame=99, node=3, first_toucher=7)
        mapping = table.lookup(10)
        assert mapping is not None
        assert mapping.physical_frame == 99
        assert mapping.node == 3
        assert mapping.first_toucher == 7
        assert mapping.touches == 1

    def test_double_map_rejected(self):
        table = PageTable()
        table.map_page(1, 2, 0, 0)
        with pytest.raises(AddressError):
            table.map_page(1, 3, 0, 0)

    def test_fault_counted(self):
        table = PageTable()
        assert table.lookup(5) is None
        assert table.stats.faults == 1

    def test_remap_counts_migration(self):
        table = PageTable()
        table.map_page(1, 2, 0, 0)
        table.remap_page(1, 7, 3)
        mapping = table.lookup(1)
        assert mapping.physical_frame == 7
        assert mapping.node == 3
        assert table.stats.migrations == 1

    def test_unmap(self):
        table = PageTable()
        table.map_page(1, 2, 0, 0)
        table.unmap(1)
        assert not table.is_mapped(1)
        with pytest.raises(AddressError):
            table.unmap(1)

    def test_pages_on_node(self):
        table = PageTable()
        table.map_page(1, 2, 0, 0)
        table.map_page(2, 3, 0, 0)
        table.map_page(3, 4, 1, 0)
        assert table.pages_on_node(0) == 2
        assert table.pages_on_node(1) == 1


class TestNumaAllocator:
    def test_available_policies(self):
        assert set(available_placement_policies()) == {
            "first-touch",
            "next-touch",
            "interleaved",
            "fixed",
        }

    def test_first_touch_places_locally(self):
        allocator = NumaAllocator(small_map(), policy="first-touch")
        paddr = allocator.translate(process_id=0, core=2, vaddr=0x5000)
        assert allocator.home_node(paddr) == 2
        assert allocator.stats.first_touch_local == 1

    def test_translation_is_stable(self):
        allocator = NumaAllocator(small_map())
        first = allocator.translate(0, 1, 0x5000)
        second = allocator.translate(0, 3, 0x5000)  # different core, same page
        assert first == second
        assert allocator.home_node(second) == 1

    def test_offsets_preserved(self):
        allocator = NumaAllocator(small_map())
        base = allocator.translate(0, 0, 0x5000)
        offset = allocator.translate(0, 0, 0x5123)
        assert offset - base == 0x123

    def test_interleaved_spreads_pages(self):
        allocator = NumaAllocator(small_map(), policy="interleaved")
        nodes = set()
        for page in range(4):
            paddr = allocator.translate(0, 0, page * 4096)
            nodes.add(allocator.home_node(paddr))
        assert nodes == {0, 1, 2, 3}

    def test_fixed_places_on_node_zero(self):
        allocator = NumaAllocator(small_map(), policy="fixed")
        for page in range(4):
            paddr = allocator.translate(0, 3, page * 4096)
            assert allocator.home_node(paddr) == 0

    def test_spill_to_remote_counted(self):
        allocator = NumaAllocator(small_map(), frames_per_node=1)
        allocator.translate(0, 0, 0x0000)
        allocator.translate(0, 0, 0x1000)  # node 0 pool exhausted, spills
        assert allocator.stats.spilled_remote == 1

    def test_separate_page_tables_per_process(self):
        allocator = NumaAllocator(small_map())
        a = allocator.translate(process_id=0, core=0, vaddr=0x5000)
        b = allocator.translate(process_id=1, core=1, vaddr=0x5000)
        assert a != b
        assert allocator.home_node(a) == 0
        assert allocator.home_node(b) == 1

    def test_next_touch_migrates_page(self):
        allocator = NumaAllocator(small_map(), policy="next-touch")
        allocator.translate(0, 0, 0x5000)  # first touch by core 0
        marked = allocator.mark_next_touch(0, [5])  # virtual page 5 = 0x5000
        assert marked == 1
        paddr = allocator.translate(0, 2, 0x5000)  # next touch by core 2
        assert allocator.home_node(paddr) == 2
        assert allocator.stats.next_touch_migrations == 1

    def test_mark_next_touch_ignored_for_first_touch_policy(self):
        allocator = NumaAllocator(small_map(), policy="first-touch")
        assert allocator.mark_next_touch(0, [5]) == 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            NumaAllocator(small_map(), policy="striped")

    def test_unknown_core_rejected(self):
        allocator = NumaAllocator(small_map())
        with pytest.raises(ConfigurationError):
            allocator.translate(0, 99, 0x1000)

    def test_unknown_core_rejected_on_memoized_page(self):
        allocator = NumaAllocator(small_map())
        allocator.translate(0, 0, 0x1000)  # warms the memo for page 1
        with pytest.raises(ConfigurationError):
            allocator.translate(0, 99, 0x1000)

    def test_pages_on_node_accounting(self):
        allocator = NumaAllocator(small_map())
        for page in range(3):
            allocator.translate(0, 1, page * 4096)
        assert allocator.pages_on_node(1) == 3

    def test_memoized_translation_counts_like_a_walk(self):
        allocator = NumaAllocator(small_map())
        for _ in range(3):
            allocator.translate(0, 0, 0x5000)
        table = allocator.page_table(0)
        assert table.stats.lookups == 3
        # First translate is a fault (no touch), the two memoized repeats
        # count one touch each, and this lookup adds the third.
        assert table.lookup(5).touches == 3

    def test_remap_invalidates_memoized_translation(self):
        allocator = NumaAllocator(small_map())
        before = allocator.translate(0, 0, 0x5000)  # memoizes page 5
        new_frame = allocator.frames.allocate_on(1)
        allocator.page_table(0).remap_page(5, new_frame, 1)
        after = allocator.translate(0, 0, 0x5000)
        assert after != before
        assert allocator.home_node(after) == 1

    def test_unmap_invalidates_memoized_translation(self):
        allocator = NumaAllocator(small_map())
        first = allocator.translate(0, 0, 0x5000)
        allocator.page_table(0).unmap(5)
        # The page is gone; the next touch must re-allocate (possibly the
        # same frame) rather than silently serving the stale translation.
        second = allocator.translate(0, 2, 0x5000)
        assert allocator.page_table(0).lookup(5).first_toucher == 2
        assert allocator.home_node(second) == 2
