"""Conformance-first differential fuzzing: all engines vs. reference, mid-run.

The cross-engine suite (``test_cross_engine.py``) compares snapshots at
the *end* of each run; a divergence that a later access happens to cancel
out would slip through.  This harness adopts the LITMUS-RT workload
generator's idiom — parameterized randomized stress streams as the
primary correctness instrument — and tightens the contract: hypothesis
drives long random access streams through packed, batched and reference
machines *in lock-step* and asserts
:func:`repro.stats.compare.snapshot_diff` is empty at a sampled step
cadence, not just at the end.  Streams shrink like any hypothesis
example, so a failure minimises to the shortest diverging prefix.

The grid covers process layouts (1p / 2p / 4p: how process ids map onto
cores, which steers NUMA placement and the local/remote request mix),
both directory policies, every eviction-notification mode and the non-LRU
replacement policies.  A miss-heavy dual-engine smoke over the
false-sharing and migratory families rides along for the CI cross-engine
gate (those families are the ones the packed miss path exists for).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.plan import ExperimentSettings, RunSpec
from repro.stats.compare import assert_snapshots_identical, snapshot_diff
from repro.stats.snapshot import collect
from repro.system.config import (
    CoreConfig,
    DirectoryConfig,
    NetworkConfig,
    SystemConfig,
)
from repro.system.batchcore import AccessChunk, BatchedMachine
from repro.system.fastcore import PackedMachine, build_machine
from repro.system.simulator import Simulator
from repro.trace.record import AccessRecord, AccessType
from repro.workloads.registry import MICROBENCH_FAMILIES

CORES = 4
PAGES = 6
LINES_PER_PAGE = 4
BASE_VADDR = 0x4000_0000

#: Process-id layouts: how the stream's accesses map onto processes.
#: ``1p`` = one address space shared by all cores, ``2p`` = two processes
#: on alternating cores, ``4p`` = one process per core.
LAYOUTS = ("1p", "2p", "4p")


def tiny_config(
    policy: str,
    eviction_notification: str = "dirty",
    replacement: str = "lru",
    pf_coverage: int = 2048,
    l2_size: int = 2048,
) -> SystemConfig:
    """A 4-node machine small enough that every structure thrashes."""
    return SystemConfig(
        core_count=CORES,
        core=CoreConfig(
            l1i_size=1024, l1d_size=1024, l2_size=l2_size, replacement=replacement
        ),
        directory=DirectoryConfig(
            probe_filter_coverage=pf_coverage,
            memory_bytes=64 * 1024 * 1024,
            eviction_notification=eviction_notification,
        ),
        network=NetworkConfig(mesh_width=2, mesh_height=2),
        directory_policy=policy,
    )


def process_of(layout: str, core: int) -> int:
    if layout == "1p":
        return 0
    if layout == "2p":
        return core % 2
    return core


def run_lockstep(
    config: SystemConfig, stream, layout: str, cadence: int, structural_defer=None
):
    """Drive all three engines in lock-step; diff snapshots every *cadence*.

    Replays the stream exactly the way ``Simulator.run`` does (same clock
    and instruction accounting), so the sampled snapshots are the ones a
    real run would have produced had it stopped there.  The reference
    and packed machines replay access-by-access; the batched machine
    consumes the same accesses as :class:`AccessChunk` blocks flushed at
    each cadence boundary, so the sampled cadences (7/17/33) double as
    odd chunk sizes exercising the chunk-boundary protocol.  Returns the
    packed machine so callers can pin its miss-path counters.
    *structural_defer* pins the forced-deferral set of both fast
    machines; pass ``()`` for tests whose counters assume the default
    fast path even when ``REPRO_PACKED_DEFER`` is set in the environment.
    """
    machines = [
        build_machine(config, "reference"),
        PackedMachine(config, structural_defer=structural_defer),
    ]
    batched = BatchedMachine(config, structural_defer=structural_defer)
    pending = AccessChunk()
    work_ns = config.core.cpu_work_per_access_ns
    for step, (core, page, line, kind) in enumerate(stream, start=1):
        vaddr = BASE_VADDR + page * 4096 + line * 64
        is_write = kind is AccessType.WRITE
        is_instruction = kind is AccessType.INSTRUCTION
        for machine in machines:
            clock = machine.nodes[core].clock
            clock.instructions += 1
            clock.now_ns += work_ns
            latency = machine.perform_access(
                core, process_of(layout, core), vaddr, is_write, is_instruction
            )
            clock.now_ns += latency
            clock.stall_ns += latency
        pending.append_record(
            AccessRecord(
                core=core,
                vaddr=vaddr,
                access_type=kind,
                process_id=process_of(layout, core),
            )
        )
        if step % cadence == 0 or step == len(stream):
            batched.perform_chunk(pending, work_ns)
            pending = AccessChunk()
            reference_snapshot = collect(machines[0])
            for name, machine in (("packed", machines[1]), ("batched", batched)):
                diffs = snapshot_diff(reference_snapshot, collect(machine))
                assert diffs == [], (
                    f"{name} engine diverged at step {step}/{len(stream)} "
                    f"(layout {layout}): {diffs}"
                )
    return machines[1]


access_strategy = st.tuples(
    st.integers(min_value=0, max_value=CORES - 1),
    st.integers(min_value=0, max_value=PAGES - 1),
    st.integers(min_value=0, max_value=LINES_PER_PAGE - 1),
    st.sampled_from(
        [AccessType.READ, AccessType.READ, AccessType.WRITE, AccessType.INSTRUCTION]
    ),
)

stream_strategy = st.lists(access_strategy, min_size=1, max_size=200)

#: Snapshot sampling cadences (steps between mid-run comparisons).
cadence_strategy = st.sampled_from([7, 17, 33])

layout_strategy = st.sampled_from(LAYOUTS)


class TestLockstepFuzz:
    """Random streams, bit-identity checked mid-run at sampled cadences."""

    @settings(max_examples=10, deadline=None)
    @given(stream=stream_strategy, cadence=cadence_strategy, layout=layout_strategy)
    @pytest.mark.parametrize("mode", ["none", "dirty", "owned"])
    @pytest.mark.parametrize("policy", ["baseline", "allarm"])
    def test_policy_eviction_grid(self, policy, mode, stream, cadence, layout):
        run_lockstep(
            tiny_config(policy, eviction_notification=mode), stream, layout, cadence
        )

    @settings(max_examples=8, deadline=None)
    @given(stream=stream_strategy, cadence=cadence_strategy, layout=layout_strategy)
    @pytest.mark.parametrize("replacement", ["plru", "random"])
    @pytest.mark.parametrize("policy", ["baseline", "allarm"])
    def test_replacement_grid(self, policy, replacement, stream, cadence, layout):
        run_lockstep(
            tiny_config(policy, replacement=replacement), stream, layout, cadence
        )

    @settings(max_examples=8, deadline=None)
    @given(stream=stream_strategy, cadence=cadence_strategy, layout=layout_strategy)
    def test_thrashing_probe_filter(self, stream, cadence, layout):
        # The smallest legal filter maximises eviction pressure; since
        # PR 5 the eviction fan-out is packed, so even here nothing may
        # leave the fast path.
        packed = run_lockstep(
            tiny_config("allarm", pf_coverage=1024),
            stream,
            layout,
            cadence,
            structural_defer=(),
        )
        assert packed.deferred_misses == 0

    @settings(max_examples=6, deadline=None)
    @given(stream=stream_strategy, cadence=cadence_strategy, layout=layout_strategy)
    @pytest.mark.parametrize("policy", ["baseline", "allarm"])
    def test_tiny_pf_tiny_l2_thrash(self, policy, stream, cadence, layout):
        # Starve the probe filter AND the L2 at once: probe-filter
        # evictions (fan-out) and L2 evictions (notifications) interleave
        # on nearly every miss — the structural grid PR 4 always
        # deferred.  Bit-identity must hold with zero deferrals.
        packed = run_lockstep(
            tiny_config(policy, pf_coverage=1024, l2_size=1024),
            stream,
            layout,
            cadence,
            structural_defer=(),
        )
        assert packed.deferred_misses == 0
        assert packed.miss_path_summary()["deferred_by_cause"] == {
            "pf_eviction": 0,
            "l2_notification": 0,
        }


class TestStructuralCrossProduct:
    """Eviction-notification × replacement grid, pinned to the fast path.

    Every cell forces probe-filter evictions (starved filter) and L2
    eviction notifications (starved L2) under each replacement policy —
    the cross product whose structural events previously always deferred
    to the reference machinery.  A deterministic conflict-heavy stream
    keeps the grid cheap while guaranteeing both event kinds fire.
    """

    def conflict_stream(self):
        stream = []
        for round_number in range(3):
            for page in range(PAGES):
                for core in range(CORES):
                    kind = AccessType.WRITE if (core + page) % 2 else AccessType.READ
                    stream.append((core, page, (core + round_number) % LINES_PER_PAGE, kind))
        return stream

    @pytest.mark.parametrize("replacement", ["lru", "plru", "random"])
    @pytest.mark.parametrize("mode", ["none", "dirty", "owned"])
    def test_mode_replacement_cell_runs_fast(self, mode, replacement):
        config = tiny_config(
            "allarm",
            eviction_notification=mode,
            replacement=replacement,
            pf_coverage=1024,
            l2_size=1024,
        )
        packed = run_lockstep(
            config, self.conflict_stream(), "2p", cadence=16, structural_defer=()
        )
        assert packed.deferred_misses == 0
        assert packed.fast_misses > 0
        assert sum(n.probe_filter.evictions for n in packed.nodes) > 0
        assert sum(n.caches.l2.evictions for n in packed.nodes) > 0
        if mode != "none":
            assert (
                sum(n.directory.stats.cache_eviction_notices for n in packed.nodes)
                > 0
            )


class TestMicroFamilyZeroDeferral:
    """Acceptance gate: no registered micro family defers under defaults."""

    @pytest.mark.parametrize("family", MICROBENCH_FAMILIES)
    @pytest.mark.parametrize("policy", ["baseline", "allarm"])
    def test_family_never_defers(self, family, policy, monkeypatch):
        # Default behaviour is the claim: neutralise any ambient
        # REPRO_PACKED_DEFER before asserting zero deferrals.
        monkeypatch.delenv("REPRO_PACKED_DEFER", raising=False)
        spec = RunSpec(family, policy, settings=MISS_HEAVY)
        simulator = Simulator(spec.config(), engine="packed")
        simulator.run(spec.access_stream(), family)
        machine = simulator.machine
        assert machine.deferred_misses == 0
        assert machine.miss_path_summary()["deferred_by_cause"] == {
            "pf_eviction": 0,
            "l2_notification": 0,
        }
        assert machine.fast_misses > 0


#: Small but genuinely miss-heavy settings for the family smoke.
MISS_HEAVY = ExperimentSettings(
    scale=16, accesses=4000, multiprocess_accesses=2000, seed=3
)

#: The families whose misses the packed directory fast path exists for.
MISS_HEAVY_FAMILIES = ("false-sharing", "migratory")


#: Generator seed of the sampled-family lock-step smoke (the CI
#: ``scenario-fuzz`` job selects this class with ``-k scenario``).
SCENARIO_FUZZ_SEED = 11
SCENARIO_FUZZ_COUNT = 4


def run_lockstep_records(config, records, cadence):
    """Record-driven sibling of :func:`run_lockstep`.

    Same contract — reference and packed replay access-by-access, the
    batched machine consumes the identical records as chunks flushed at
    each cadence boundary, snapshots are diffed at every flush — but
    driven by real :class:`AccessRecord` streams (a generated family's
    init + phased compute output) instead of the synthetic tuple grid.
    """
    machines = [build_machine(config, "reference"), PackedMachine(config)]
    batched = BatchedMachine(config)
    pending = AccessChunk()
    work_ns = config.core.cpu_work_per_access_ns
    for step, record in enumerate(records, start=1):
        for machine in machines:
            clock = machine.nodes[record.core].clock
            clock.instructions += 1
            clock.now_ns += work_ns
            latency = machine.perform_access(
                record.core,
                record.process_id,
                record.vaddr,
                record.access_type is AccessType.WRITE,
                record.access_type is AccessType.INSTRUCTION,
            )
            clock.now_ns += latency
            clock.stall_ns += latency
        pending.append_record(record)
        if step % cadence == 0 or step == len(records):
            batched.perform_chunk(pending, work_ns)
            pending = AccessChunk()
            reference_snapshot = collect(machines[0])
            for name, machine in (("packed", machines[1]), ("batched", batched)):
                diffs = snapshot_diff(reference_snapshot, collect(machine))
                assert diffs == [], (
                    f"{name} engine diverged at step {step}/{len(records)}: "
                    f"{diffs[:5]}"
                )


class TestScenarioFamilyLockstep:
    """Sampled scenario families, three engines in lock-step mid-run.

    The generated families compose multi-phase DSL streams (fill →
    mix → thrash) whose phase boundaries land mid-chunk at the odd
    cadence — the exact seam satellite 1's bugfix and the batched
    chunk protocol must agree on.  The CI ``scenario-fuzz`` job runs
    this class (``-k scenario``) over a freshly sampled manifest.
    """

    @pytest.mark.parametrize("index", range(SCENARIO_FUZZ_COUNT))
    @pytest.mark.parametrize("policy", ["baseline", "allarm"])
    def test_sampled_family_lockstep(self, index, policy):
        from repro.workloads.generator import sample_scenarios

        family = sample_scenarios(SCENARIO_FUZZ_SEED, SCENARIO_FUZZ_COUNT).families[
            index
        ]
        spec = RunSpec(family.name, policy, settings=MISS_HEAVY)
        records = list(spec.access_stream())
        run_lockstep_records(spec.config(), records, cadence=997)


class TestMissHeavyDualEngineSmoke:
    """False-sharing + migratory on both engines, via the real RunSpec path.

    These are the workloads where PR 3's engine degenerated to reference
    speed; they drive probe-filter hits, invalidation fan-out, ownership
    handoff and upgrade traffic through the packed miss path at volume.
    Referenced by the CI cross-engine gate as the miss-heavy smoke.
    """

    @pytest.mark.parametrize("family", MISS_HEAVY_FAMILIES)
    @pytest.mark.parametrize("policy", ["baseline", "allarm"])
    def test_family_is_bit_identical(self, family, policy):
        spec = RunSpec(family, policy, settings=MISS_HEAVY)
        records = list(spec.access_stream())
        packed = Simulator(spec.config(), engine="packed")
        reference = Simulator(spec.config(), engine="reference")
        packed_result = packed.run(records, family)
        reference_result = reference.run(records, family)
        assert_snapshots_identical(
            reference_result.snapshot,
            packed_result.snapshot,
            context=f"{family}/{policy}",
        )
        # The smoke must actually exercise the packed miss path, not the
        # L1 fast path: misses must dominate and be serviced fast.
        assert packed_result.snapshot.l2_misses > len(records) // 10
        assert packed.machine.fast_misses > 0
