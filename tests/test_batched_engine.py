"""Residue-compaction and chunk-protocol tests for the batched engine.

The batched kernel (:mod:`repro.system.batchcore`) vectorises the
common case and replays everything else — the *residue* — through the
inherited packed per-access path.  Its contract is the same as the
packed engine's: bit-identical snapshots, now at chunk granularity.
This suite attacks the seams of that contract directly:

* same-set conflict storms *inside one chunk*, where residue accesses
  displace lines the classification already blessed as hits;
* misses placed exactly at chunk boundaries, across a spread of chunk
  sizes including degenerate ones;
* a ``max_accesses`` cap cutting a chunk mid-way;
* the pure-``array`` fallback (``REPRO_BATCH_FORCE_FALLBACK``), the
  non-LRU and non-dyadic bail-outs, and the residue-ratio accounting
  the benches report.
"""

from __future__ import annotations

import importlib.util

import pytest

from repro.analysis.plan import ExperimentSettings, RunSpec
from repro.errors import ConfigurationError, SimulationError
from repro.stats.compare import assert_snapshots_identical, snapshot_diff
from repro.stats.snapshot import collect
from repro.system.batchcore import (
    DEFAULT_CHUNK_RECORDS,
    AccessChunk,
    BatchedMachine,
    chunk_records,
    iter_chunks,
)
from repro.system.config import (
    CoreConfig,
    DirectoryConfig,
    NetworkConfig,
    SystemConfig,
)
from repro.system.fastcore import ENGINES, PackedMachine, build_machine, resolve_engine
from repro.system.simulator import Simulator
from repro.trace.record import AccessRecord, AccessType

#: Vector-path assertions need numpy (the ``[fast]`` extra); everything
#: else in this suite runs — and must pass — on the stdlib fallback.
requires_numpy = pytest.mark.skipif(
    importlib.util.find_spec("numpy") is None,
    reason="vector path requires numpy (install the [fast] extra)",
)

CORES = 4
BASE_VADDR = 0x4000_0000
TINY = ExperimentSettings(scale=16, accesses=2000, multiprocess_accesses=1000, seed=7)


def tiny_config(policy: str = "baseline", replacement: str = "lru") -> SystemConfig:
    """A 4-node machine small enough that conflict streams thrash it."""
    return SystemConfig(
        core_count=CORES,
        core=CoreConfig(
            l1i_size=1024, l1d_size=1024, l2_size=2048, replacement=replacement
        ),
        directory=DirectoryConfig(
            probe_filter_coverage=2048, memory_bytes=64 * 1024 * 1024
        ),
        network=NetworkConfig(mesh_width=2, mesh_height=2),
        directory_policy=policy,
    )


def read(core: int, line: int, page: int = 0, pid: int = 0) -> AccessRecord:
    return AccessRecord(
        core=core,
        vaddr=BASE_VADDR + page * 4096 + line * 64,
        access_type=AccessType.READ,
        process_id=pid,
    )


def write(core: int, line: int, page: int = 0, pid: int = 0) -> AccessRecord:
    return AccessRecord(
        core=core,
        vaddr=BASE_VADDR + page * 4096 + line * 64,
        access_type=AccessType.WRITE,
        process_id=pid,
    )


def hit_stream(n: int, lines: int = 8) -> list:
    """Hot-line reads on core 0: everything after warm-up is an L1 hit."""
    return [read(0, i % lines) for i in range(n)]


def run_engines(config: SystemConfig, records, engines=("packed", "batched"), **kw):
    """Run *records* on each engine; return {engine: SimulationResult}."""
    return {
        engine: Simulator(config, engine=engine).run(list(records), "t", **kw)
        for engine in engines
    }


def assert_engines_identical(config, records, **kw):
    results = run_engines(config, records, **kw)
    assert_snapshots_identical(
        results["packed"].snapshot, results["batched"].snapshot, context="batched"
    )
    return results


class TestEngineRegistration:
    def test_batched_is_a_registered_engine(self):
        assert "batched" in ENGINES
        assert resolve_engine("batched") == "batched"

    def test_env_selects_batched(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "batched")
        assert resolve_engine(None) == "batched"

    def test_build_machine_returns_batched_machine(self):
        machine = build_machine(tiny_config(), "batched")
        assert isinstance(machine, BatchedMachine)
        assert isinstance(machine, PackedMachine)  # inherits the packed path

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="chunk size"):
            BatchedMachine(tiny_config(), chunk_records=0)

    def test_chunk_size_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_CHUNK", "1024")
        assert BatchedMachine(tiny_config()).chunk_records == 1024
        monkeypatch.delenv("REPRO_BATCH_CHUNK")
        assert BatchedMachine(tiny_config()).chunk_records == DEFAULT_CHUNK_RECORDS


class TestChunkHelpers:
    def test_chunk_records_packs_columns(self):
        records = [read(1, 3, page=2, pid=1), write(2, 5), read(0, 0)]
        chunks = list(chunk_records(records, chunk_size=2))
        assert [len(c) for c in chunks] == [2, 1]
        assert list(chunks[0].cores) == [1, 2]
        assert list(chunks[0].types) == [0, 1]  # READ, WRITE codes
        back = [r for c in chunks for r in c.records()]
        assert back == records

    def test_truncated_keeps_prefix(self):
        chunk = next(chunk_records([read(0, i) for i in range(10)], chunk_size=10))
        cut = chunk.truncated(3)
        assert len(cut) == 3
        assert list(cut.vaddrs) == list(chunk.vaddrs[:3])

    def test_iter_chunks_passes_chunks_through(self):
        chunk = next(chunk_records(hit_stream(16), chunk_size=16))
        assert list(iter_chunks([chunk])) == [chunk]

    def test_iter_chunks_packs_record_streams(self):
        chunks = list(iter_chunks(hit_stream(10), chunk_size=4))
        assert [len(c) for c in chunks] == [4, 4, 2]

    def test_iter_chunks_rejects_mixed_streams(self):
        chunk = next(chunk_records(hit_stream(4), chunk_size=4))
        with pytest.raises(SimulationError, match="mixed chunk/record"):
            list(iter_chunks([chunk, read(0, 0)]))


class TestResidueCompaction:
    """The seams where residue replay and bulk commits interleave."""

    @requires_numpy
    def test_same_set_conflicts_within_one_chunk(self):
        # Alternate A-way-exceeding same-set lines with hot-line hits so
        # residue evictions land *between* classified hit runs inside a
        # single chunk — the disturbance/poison machinery must demote the
        # stale classifications instead of bulk-committing them.
        config = tiny_config()
        probe = BatchedMachine(config)
        l1d = probe.nodes[0].caches.l1d
        set_span = (l1d.set_mask + 1) << l1d.line_shift
        assert set_span <= 4096, "conflict stride must stay inside one page"
        conflicts = l1d.associativity * 2
        stream = []
        for i in range(conflicts * 8):
            stream.append(read(0, (i % conflicts) * (set_span // 64)))
            stream.append(read(0, 1))  # hot line: classified hit candidate
            stream.append(write(0, 2))  # hot write: needs writable L2 copy
        machine = BatchedMachine(config)
        machine.perform_chunk(
            next(chunk_records(stream, chunk_size=len(stream))), 1.0
        )
        packed = PackedMachine(config)
        for r in stream:
            clock = packed.nodes[r.core].clock
            clock.instructions += 1
            clock.now_ns += 1.0
            latency = packed.perform_access(
                r.core,
                r.process_id,
                r.vaddr,
                r.access_type is AccessType.WRITE,
                r.access_type is AccessType.INSTRUCTION,
            )
            clock.now_ns += latency
            clock.stall_ns += latency
        assert snapshot_diff(collect(packed), collect(machine)) == []
        # The stream must actually have thrashed the set...
        assert sum(n.caches.l1d.evictions for n in machine.nodes) > 0
        # ... and the kernel must still have committed hits in bulk.
        assert machine.batch_residue > 0
        assert machine.batch_bulk_hits > 0

    @pytest.mark.parametrize("chunk_size", [1, 3, 16, 50, 128])
    def test_misses_at_chunk_boundaries(self, chunk_size):
        # A fresh cold line every `chunk_size` accesses puts a miss at
        # the first slot of every chunk; the remainder are hits whose
        # classification was taken after the boundary miss.
        stream = []
        for i in range(chunk_size * 6 + chunk_size // 2 + 1):
            if i % chunk_size == 0:
                stream.append(read(i % CORES, i % 64, page=i % 6))
            else:
                stream.append(read(0, i % 4))
        config = tiny_config()
        machine = BatchedMachine(config, chunk_records=chunk_size)
        simulator = Simulator.__new__(Simulator)  # reuse run() with our machine
        simulator.config = config
        simulator.engine = "batched"
        simulator.machine = machine
        simulator._finished = False
        batched = simulator.run(stream, "t")
        packed = Simulator(config, engine="packed").run(stream, "t")
        assert_snapshots_identical(
            packed.snapshot, batched.snapshot, context=f"chunk={chunk_size}"
        )

    def test_chunk_size_does_not_change_results(self, monkeypatch):
        stream = [
            read(i % CORES, (i * 7) % 48, page=i % 5, pid=i % 2) for i in range(900)
        ]
        baseline = None
        for size in (4, 37, 256):
            monkeypatch.setenv("REPRO_BATCH_CHUNK", str(size))
            snapshot = (
                Simulator(tiny_config(), engine="batched").run(stream, "t").snapshot
            )
            if baseline is None:
                baseline = snapshot
            else:
                assert_snapshots_identical(
                    baseline, snapshot, context=f"chunk={size}"
                )

    def test_max_accesses_cuts_mid_chunk(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_CHUNK", "64")
        stream = [read(i % CORES, (i * 3) % 40, page=i % 4) for i in range(500)]
        for cap in (1, 63, 64, 65, 250, 333):
            results = assert_engines_identical(
                tiny_config(), stream, max_accesses=cap
            )
            assert results["batched"].accesses_simulated == cap
            assert results["packed"].accesses_simulated == cap

    def test_bad_core_raises_like_packed(self):
        stream = hit_stream(10) + [read(CORES + 3, 0)]
        with pytest.raises(SimulationError, match="core 7"):
            Simulator(tiny_config(), engine="batched").run(stream, "t")


class TestFallbacks:
    """Every degraded mode must still be bit-identical, just slower."""

    def test_force_fallback_is_bit_identical(self, monkeypatch):
        stream = [read(i % CORES, (i * 5) % 32, page=i % 3) for i in range(600)]
        config = tiny_config()
        vector = Simulator(config, engine="batched").run(stream, "t").snapshot
        monkeypatch.setenv("REPRO_BATCH_FORCE_FALLBACK", "1")
        simulator = Simulator(config, engine="batched")
        assert simulator.machine.batch_summary()["vector_path"] is False
        fallback = simulator.run(stream, "t").snapshot
        assert_snapshots_identical(vector, fallback, context="fallback")
        assert simulator.machine.batch_fallback_accesses == len(stream)

    def test_fallback_machine_never_imports_numpy_paths(self, monkeypatch):
        # The import guard: with the fallback forced, the kernel must not
        # touch its numpy handle at all during replay.
        monkeypatch.setenv("REPRO_BATCH_FORCE_FALLBACK", "1")
        machine = BatchedMachine(tiny_config())
        assert machine._numpy is None
        chunk = next(chunk_records(hit_stream(64), chunk_size=64))
        machine.perform_chunk(chunk, 1.0)
        assert machine.batch_fallback_accesses == 64

    @pytest.mark.parametrize("replacement", ["plru", "random"])
    def test_non_lru_replacement_degrades_not_diverges(self, replacement):
        stream = [read(i % CORES, (i * 5) % 32, page=i % 3) for i in range(400)]
        config = tiny_config(replacement=replacement)
        simulator = Simulator(config, engine="batched")
        assert simulator.machine.batch_summary()["vector_path"] is False
        batched = simulator.run(stream, "t").snapshot
        packed = Simulator(config, engine="packed").run(stream, "t").snapshot
        assert_snapshots_identical(packed, batched, context=replacement)

    def test_non_dyadic_work_falls_back_sequential(self):
        # 0.3 ns is not a multiple of 2**-12: bulk k*(work+latency) would
        # not be bit-exact, so the chunk must replay sequentially.
        config = tiny_config()
        machine = BatchedMachine(config)
        chunk = next(chunk_records(hit_stream(128), chunk_size=128))
        machine.perform_chunk(chunk, 0.3)
        assert machine.batch_fallback_accesses == len(chunk)
        packed = PackedMachine(config)
        for r in hit_stream(128):
            clock = packed.nodes[r.core].clock
            clock.instructions += 1
            clock.now_ns += 0.3
            latency = packed.perform_access(r.core, r.process_id, r.vaddr, False, False)
            clock.now_ns += latency
            clock.stall_ns += latency
        assert snapshot_diff(collect(packed), collect(machine)) == []


class TestResidueAccounting:
    @requires_numpy
    def test_hit_dominated_stream_has_low_residue(self):
        machine = BatchedMachine(tiny_config(), chunk_records=512)
        for chunk in chunk_records(hit_stream(4096), chunk_size=512):
            machine.perform_chunk(chunk, 1.0)
        assert machine.batched_residue_ratio < 0.10
        summary = machine.batch_summary()
        assert summary["chunks"] == 8
        assert summary["accesses"] == 4096
        assert summary["bulk_hits"] + summary["residue"] == 4096
        assert summary["chunk_records"] == 512
        assert summary["vector_path"] is True

    def test_miss_heavy_stream_has_high_residue(self):
        # Every access a fresh page: nothing is ever a classified hit.
        stream = [read(i % CORES, 0, page=i) for i in range(256)]
        machine = BatchedMachine(tiny_config(), chunk_records=256)
        machine.perform_chunk(next(chunk_records(stream, chunk_size=256)), 1.0)
        assert machine.batched_residue_ratio > 0.5

    def test_empty_machine_reports_zero_ratio(self):
        assert BatchedMachine(tiny_config()).batched_residue_ratio == 0.0


class TestPhasedWorkloads:
    """Multi-phase DSL streams through the chunked path (PR 10).

    A phase switch changes the access pattern mid-stream — a
    sequential fill becomes a stationary mix becomes a stride thrash —
    and with odd chunk sizes the switch lands *inside* an
    ``AccessChunk``.  Classifications taken before the boundary must
    not be bulk-committed past it: the engine may classify
    conservatively (more residue), but bit-identity with packed is
    non-negotiable.
    """

    def phased_spec(self, total_accesses=3000):
        # Needs phases AND <= CORES threads (the tiny 4-node machine).
        from repro.workloads.generator import build_family_spec

        for index in range(16):
            spec = build_family_spec(11, index, total_accesses=total_accesses)
            if spec.phases and spec.thread_count <= CORES:
                return spec
        raise AssertionError("no small phased family in scenario set 11")

    def phased_stream(self, total_accesses=3000):
        from repro.workloads.base import SyntheticWorkload

        return list(SyntheticWorkload(self.phased_spec(total_accesses)).generate())

    @pytest.mark.parametrize("chunk_size", [1, 7, 63, 8191])
    def test_phase_switch_mid_chunk_is_bit_identical(self, chunk_size, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_CHUNK", str(chunk_size))
        stream = self.phased_stream()
        config = tiny_config()
        batched = Simulator(config, engine="batched").run(stream, "t").snapshot
        packed = Simulator(config, engine="packed").run(stream, "t").snapshot
        assert_snapshots_identical(
            packed, batched, context=f"phased chunk={chunk_size}"
        )

    def test_phased_residue_accounting_stays_sane(self):
        stream = self.phased_stream()
        machine = BatchedMachine(tiny_config(), chunk_records=256)
        for chunk in chunk_records(stream, chunk_size=256):
            machine.perform_chunk(chunk, 1.0)
        summary = machine.batch_summary()
        assert summary["accesses"] == len(stream)
        assert summary["bulk_hits"] + summary["residue"] == len(stream)
        assert 0.0 <= machine.batched_residue_ratio <= 1.0

    @pytest.mark.parametrize("policy", ["baseline", "allarm"])
    def test_scenario_runspec_matches_packed(self, policy):
        from repro.analysis.executor import execute_run_spec

        spec = RunSpec(self.phased_spec().name, policy, settings=TINY)
        packed = execute_run_spec(spec.with_engine("packed"))
        batched = execute_run_spec(spec.with_engine("batched"))
        assert batched.to_dict() == packed.to_dict()


class TestRunSpecPath:
    """The real harness path: RunSpec → executor → chunked replay."""

    @pytest.mark.parametrize("policy", ["baseline", "allarm"])
    def test_family_run_matches_packed(self, policy):
        from repro.analysis.executor import execute_run_spec

        spec = RunSpec("barnes", policy, settings=TINY)
        packed = execute_run_spec(spec.with_engine("packed"))
        batched = execute_run_spec(spec.with_engine("batched"))
        assert batched.to_dict() == packed.to_dict()

    def test_workload_chunk_emission_matches_record_stream(self):
        spec = RunSpec("barnes", "baseline", settings=TINY)
        from_records = Simulator(spec.config(), engine="batched").run(
            spec.access_stream(), "t"
        )
        from_chunks = Simulator(spec.config(), engine="batched").run(
            spec.access_chunks(chunk_size=777), "t"
        )
        assert_snapshots_identical(
            from_records.snapshot, from_chunks.snapshot, context="chunk emission"
        )
