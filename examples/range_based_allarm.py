#!/usr/bin/env python3
"""Range-registered ALLARM and per-directory opt-out (Section II-C / III-A).

The paper proposes two deployment controls for ALLARM: boot-time range
registers (MTRR-like) that restrict the policy to chosen physical ranges,
and a per-directory disable for workloads such as fluidanimate where
capacity misses dominate and ALLARM cannot help.  This example exercises
both:

1. runs fluidanimate with ALLARM fully enabled, fully disabled, and
   enabled only on the lower half of physical memory (range registers);
2. prints the resulting eviction and traffic numbers so the effect of each
   control is visible.

Usage::

    python examples/range_based_allarm.py [accesses]
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro.core.policy import PhysicalRange
from repro.system.config import experiment_config
from repro.system.simulator import simulate
from repro.workloads.base import SyntheticWorkload
from repro.workloads.registry import build_spec

SCALE = 16
BENCH = "fluidanimate"


def run(label: str, config, accesses: int):
    """Run fluidanimate on *config* and print one summary row."""
    spec = build_spec(BENCH, total_accesses=accesses).with_footprint_scale(SCALE)
    snapshot = simulate(config, SyntheticWorkload(spec).generate(), BENCH).snapshot
    print(f"{label:<34} {snapshot.execution_time_ns / 1e3:10.1f} "
          f"{snapshot.pf_evictions:10d} {snapshot.pf_allocations:12d} "
          f"{snapshot.network_bytes:11d}")
    return snapshot


def main() -> int:
    accesses = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000

    baseline_cfg = experiment_config("baseline", scale=SCALE)
    allarm_cfg = experiment_config("allarm", scale=SCALE)

    # Range registers: ALLARM active only on the lower half of physical
    # memory (the first eight nodes' memory), baseline behaviour elsewhere.
    half_memory = baseline_cfg.directory.memory_bytes // 2
    ranged_cfg = replace(
        allarm_cfg, allarm_ranges=(PhysicalRange(0, half_memory),)
    )

    # Per-directory opt-out: ALLARM disabled on the odd-numbered nodes.
    disabled_cfg = replace(
        allarm_cfg, allarm_disabled_nodes=tuple(range(1, 16, 2))
    )

    print(f"fluidanimate, {accesses} accesses, machine scaled by 1/{SCALE}")
    print(f"{'configuration':<34} {'exec (us)':>10} {'evictions':>10} "
          f"{'allocations':>12} {'net bytes':>11}")
    baseline = run("baseline", baseline_cfg, accesses)
    full = run("ALLARM (all memory)", allarm_cfg, accesses)
    ranged = run("ALLARM (lower half via ranges)", ranged_cfg, accesses)
    half_disabled = run("ALLARM (odd directories disabled)", disabled_cfg, accesses)

    print()
    print("Allocation reduction vs baseline:")
    for label, snap in (
        ("all memory", full),
        ("ranged", ranged),
        ("odd directories disabled", half_disabled),
    ):
        reduction = 1 - snap.pf_allocations / max(baseline.pf_allocations, 1)
        print(f"  {label:<28} {reduction * 100:5.1f}%")
    print()
    print("The ranged and per-directory configurations land between the "
          "baseline and full ALLARM, which is exactly the control the paper "
          "proposes for capacity-bound workloads like fluidanimate.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
