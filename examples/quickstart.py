#!/usr/bin/env python3
"""Quickstart: compare a baseline sparse directory against ALLARM.

Runs one synthetic SPLASH2-like benchmark (barnes) on the scaled-down
16-node NUMA machine under both directory allocation policies and prints
the headline metrics the paper reports: speedup, probe-filter evictions,
network traffic and dynamic energy.

Usage::

    python examples/quickstart.py [benchmark] [accesses]

Defaults to ``barnes`` with 20,000 compute accesses (a few seconds).
"""

from __future__ import annotations

import sys

from repro import experiment_config, simulate
from repro.energy.mcpat import McPatModel
from repro.stats.compare import RunComparison
from repro.workloads.base import SyntheticWorkload
from repro.workloads.registry import benchmark_names, build_spec

SCALE = 16


def run_policy(policy: str, bench: str, accesses: int):
    """Simulate *bench* under one directory policy and return the snapshot."""
    spec = build_spec(bench, total_accesses=accesses).with_footprint_scale(SCALE)
    config = experiment_config(policy, scale=SCALE)
    result = simulate(config, SyntheticWorkload(spec).generate(), bench)
    return result.snapshot, config


def main() -> int:
    bench = sys.argv[1] if len(sys.argv) > 1 else "barnes"
    accesses = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000
    if bench not in benchmark_names():
        print(f"unknown benchmark {bench!r}; choose from {benchmark_names()}")
        return 1

    print(f"Simulating {bench!r} with {accesses} accesses per policy "
          f"(machine and footprints scaled by 1/{SCALE})...")
    baseline, config = run_policy("baseline", bench, accesses)
    allarm, _ = run_policy("allarm", bench, accesses)

    comparison = RunComparison(baseline=baseline, experiment=allarm)
    energy = McPatModel().normalized(
        baseline, allarm, config.directory.probe_filter_coverage
    )

    print()
    print(f"{'metric':<36} {'baseline':>12} {'ALLARM':>12}")
    print(f"{'execution time (us)':<36} {baseline.execution_time_ns / 1e3:12.1f} "
          f"{allarm.execution_time_ns / 1e3:12.1f}")
    print(f"{'probe-filter evictions':<36} {baseline.pf_evictions:12d} "
          f"{allarm.pf_evictions:12d}")
    print(f"{'probe-filter allocations':<36} {baseline.pf_allocations:12d} "
          f"{allarm.pf_allocations:12d}")
    print(f"{'network bytes':<36} {baseline.network_bytes:12d} "
          f"{allarm.network_bytes:12d}")
    print(f"{'L2 misses':<36} {baseline.l2_misses:12d} {allarm.l2_misses:12d}")
    print()
    print(f"speedup:                   {comparison.speedup:.3f}")
    print(f"eviction reduction:        {comparison.eviction_reduction * 100:.1f}%")
    print(f"traffic reduction:         {comparison.traffic_reduction * 100:.1f}%")
    print(f"NoC dynamic energy ratio:  {energy.noc:.3f}")
    print(f"PF dynamic energy ratio:   {energy.probe_filter:.3f}")
    print(f"local request fraction:    {baseline.local_fraction:.2f}")
    print(f"local probe hidden:        {allarm.probe_hidden_fraction * 100:.1f}% "
          f"of remote probe-filter misses")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
