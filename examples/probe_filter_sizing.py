#!/usr/bin/env python3
"""Probe-filter sizing study (the scenario behind Figures 3h and 4).

A system architect wants to know how much sparse-directory SRAM can be
handed back to the last-level cache once ALLARM stops tracking
thread-local data.  This example sweeps the probe-filter coverage for a
multi-programmed workload (two single-threaded copies of a benchmark,
Section III-B of the paper), reports how execution time and evictions
respond under both policies, and prices the SRAM saved with the area
model.

Usage::

    python examples/probe_filter_sizing.py [benchmark] [accesses_per_copy]
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro.analysis.experiments import FIG4_PF_SIZES
from repro.energy.area import ProbeFilterAreaModel
from repro.system.config import experiment_config
from repro.system.simulator import simulate
from repro.workloads.multiprocess import (
    build_multiprocess_spec,
    generate_multiprocess,
    multiprocess_benchmarks,
)

SCALE = 16


def run(policy: str, bench: str, pf_size: int, accesses: int):
    """One two-process run at one nominal probe-filter size."""
    mp_spec = build_multiprocess_spec(bench, total_accesses_per_copy=accesses)
    mp_spec = replace(
        mp_spec,
        copies=tuple(copy.with_footprint_scale(SCALE) for copy in mp_spec.copies),
    )
    config = experiment_config(
        policy, scale=SCALE, nominal_probe_filter_coverage=pf_size
    )
    return simulate(config, generate_multiprocess(mp_spec), f"{bench}-2p").snapshot


def main() -> int:
    bench = sys.argv[1] if len(sys.argv) > 1 else "ocean-cont"
    accesses = int(sys.argv[2]) if len(sys.argv) > 2 else 8_000
    if bench not in multiprocess_benchmarks():
        print(f"choose one of {multiprocess_benchmarks()}")
        return 1

    area_model = ProbeFilterAreaModel()
    print(f"Two single-threaded copies of {bench!r}, {accesses} accesses each.")
    print(f"{'pf size':>9} {'policy':<9} {'exec (us)':>10} {'evictions':>10} "
          f"{'net bytes':>10} {'area (mm^2)':>12}")

    reference = {}
    for pf_size in FIG4_PF_SIZES:
        for policy in ("baseline", "allarm"):
            snapshot = run(policy, bench, pf_size, accesses)
            reference.setdefault(policy, snapshot)
            print(f"{pf_size // 1024:7d}kB {policy:<9} "
                  f"{snapshot.execution_time_ns / 1e3:10.1f} "
                  f"{snapshot.pf_evictions:10d} {snapshot.network_bytes:10d} "
                  f"{area_model.area_mm2(pf_size):12.2f}")

    saved = area_model.area_saved_mm2(FIG4_PF_SIZES[0], FIG4_PF_SIZES[-1])
    print()
    print(f"Shrinking the probe filters from "
          f"{FIG4_PF_SIZES[0] // 1024}kB to {FIG4_PF_SIZES[-1] // 1024}kB releases "
          f"{saved:.2f} mm^2 of SRAM that can be returned to the cache — viable "
          f"only if, as with ALLARM, the smaller directory does not reintroduce "
          f"eviction pressure.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
