"""MOESI coherence states and transition helpers.

The paper evaluates ALLARM on top of the AMD Hammer protocol, a
broadcast-assisted MOESI protocol with a sparse directory (probe filter)
acting as a snoop filter.  We model the stable states only; transient
states are not needed because the simulator services each transaction
atomically (transaction-level simulation).
"""

from __future__ import annotations

from enum import Enum


class LineState(Enum):
    """Stable MOESI state of a cache line in a private cache."""

    MODIFIED = "M"
    OWNED = "O"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    # ------------------------------------------------------------------
    @property
    def is_valid(self) -> bool:
        """True when the line holds usable data."""
        return self is not LineState.INVALID

    @property
    def is_dirty(self) -> bool:
        """True when the line must be written back on eviction."""
        return self in (LineState.MODIFIED, LineState.OWNED)

    @property
    def can_write(self) -> bool:
        """True when a store may complete without a coherence transaction."""
        return self in (LineState.MODIFIED, LineState.EXCLUSIVE)

    @property
    def can_read(self) -> bool:
        """True when a load may complete without a coherence transaction."""
        return self.is_valid

    @property
    def is_owner(self) -> bool:
        """True when this cache is responsible for supplying data."""
        return self in (LineState.MODIFIED, LineState.OWNED, LineState.EXCLUSIVE)

    # ------------------------------------------------------------------
    def after_local_write(self) -> "LineState":
        """State after the local core writes a line it may write."""
        if not self.can_write:
            raise ValueError(f"cannot silently write a line in state {self}")
        return LineState.MODIFIED

    def after_remote_read(self) -> "LineState":
        """State after a remote core reads this line (owner keeps data).

        Under MOESI the owner downgrades M/E to O/S and continues to supply
        data; a shared copy simply stays shared.
        """
        if self is LineState.MODIFIED:
            return LineState.OWNED
        if self is LineState.EXCLUSIVE:
            return LineState.SHARED
        if self in (LineState.OWNED, LineState.SHARED):
            return self
        raise ValueError(f"remote read of a line in state {self}")

    def after_remote_write(self) -> "LineState":
        """State after a remote core gains exclusive ownership."""
        return LineState.INVALID


def fill_state(is_write: bool, had_other_sharers: bool) -> LineState:
    """State in which a requester installs a newly fetched line.

    A write always installs in MODIFIED.  A read installs in EXCLUSIVE when
    no other cache holds the line (enabling later silent upgrade), and in
    SHARED otherwise.
    """
    if is_write:
        return LineState.MODIFIED
    return LineState.SHARED if had_other_sharers else LineState.EXCLUSIVE
