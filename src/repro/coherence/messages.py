"""Coherence message types, sizes and accounting.

The paper's traffic results (Figures 3c, 3d, 4c, 4f) are measured in bytes
on the on-chip network, with control messages of 8 bytes and data messages
of 72 bytes (64-byte line plus 8-byte header) carried in 4-byte flits
(Table I).  This module defines the message vocabulary used by the
directory controller and the cache controllers, and a small factory that
stamps each message with its size and flit count.

ALLARM adds exactly one message type to the baseline protocol
(:attr:`MessageType.LOCAL_STATE_PROBE`) together with its response, which
is the "extra message type needed to query a local cache about the current
state of a line" described in Section II-C of the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.errors import ConfigurationError


class MessageClass(Enum):
    """Coarse classification used for sizing and energy accounting."""

    CONTROL = "control"
    DATA = "data"


class MessageType(Enum):
    """Every message the protocol engine can place on the network."""

    # Request flow (requester -> home directory)
    GET_SHARED = "GetS"
    GET_EXCLUSIVE = "GetX"
    UPGRADE = "Upgrade"

    # Directory -> cache probes
    FORWARD_GET_SHARED = "FwdGetS"
    FORWARD_GET_EXCLUSIVE = "FwdGetX"
    INVALIDATE = "Inv"

    # ALLARM addition: query the local cache for the state of a line that
    # has no probe-filter entry (Section II-C of the paper).
    LOCAL_STATE_PROBE = "LocalProbe"
    LOCAL_STATE_RESPONSE = "LocalProbeResp"

    # Responses
    DATA_FROM_MEMORY = "DataMem"
    DATA_FROM_OWNER = "DataOwner"
    ACK = "Ack"
    WRITEBACK_ACK = "WbAck"

    # Cache -> directory eviction traffic
    PUT_SHARED = "PutS"
    PUT_EXCLUSIVE = "PutE"
    WRITEBACK_DATA = "WbData"

    @property
    def message_class(self) -> MessageClass:
        """Whether the message carries a full cache line."""
        if self in _DATA_MESSAGES:
            return MessageClass.DATA
        return MessageClass.CONTROL


_DATA_MESSAGES = frozenset(
    {
        MessageType.DATA_FROM_MEMORY,
        MessageType.DATA_FROM_OWNER,
        MessageType.WRITEBACK_DATA,
    }
)


_message_ids = itertools.count()


@dataclass
class Message:
    """A single coherence message travelling between two nodes.

    Messages between caches and directories on the *same* node never enter
    the mesh; the network model reports zero hops and zero traffic for
    them, matching the paper's observation that local requests generate no
    coherence network traffic.
    """

    msg_type: MessageType
    src: int
    dst: int
    line_address: int
    size_bytes: int
    flits: int
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    transaction_id: Optional[int] = None

    @property
    def is_data(self) -> bool:
        """True when the message carries a cache line payload."""
        return self.msg_type.message_class is MessageClass.DATA

    @property
    def is_local(self) -> bool:
        """True when source and destination are the same node."""
        return self.src == self.dst


@dataclass(frozen=True)
class MessageSizing:
    """Byte and flit sizes used to stamp messages (Table I defaults)."""

    control_bytes: int = 8
    data_bytes: int = 72
    flit_bytes: int = 4

    def __post_init__(self) -> None:
        if self.control_bytes <= 0 or self.data_bytes <= 0:
            raise ConfigurationError("message sizes must be positive")
        if self.flit_bytes <= 0:
            raise ConfigurationError("flit size must be positive")
        if self.data_bytes < self.control_bytes:
            raise ConfigurationError("data messages cannot be smaller than control")

    def size_of(self, msg_type: MessageType) -> int:
        """Return the size in bytes of a message of the given type."""
        if msg_type.message_class is MessageClass.DATA:
            return self.data_bytes
        return self.control_bytes

    def flits_of(self, msg_type: MessageType) -> int:
        """Return the number of flits needed to carry a message."""
        size = self.size_of(msg_type)
        return -(-size // self.flit_bytes)  # ceiling division


class MessageFactory:
    """Creates :class:`Message` objects stamped with size and flit count."""

    def __init__(self, sizing: Optional[MessageSizing] = None) -> None:
        self.sizing = sizing or MessageSizing()

    def make(
        self,
        msg_type: MessageType,
        src: int,
        dst: int,
        line_address: int,
        transaction_id: Optional[int] = None,
    ) -> Message:
        """Create a message of *msg_type* from *src* to *dst*."""
        return Message(
            msg_type=msg_type,
            src=src,
            dst=dst,
            line_address=line_address,
            size_bytes=self.sizing.size_of(msg_type),
            flits=self.sizing.flits_of(msg_type),
            transaction_id=transaction_id,
        )
