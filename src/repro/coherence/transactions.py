"""Transaction records produced by the directory protocol engine.

Each L2 miss becomes one :class:`Transaction`.  The protocol engine
resolves it atomically (transaction-level simulation) and fills in the
timing breakdown, the list of messages exchanged, and bookkeeping flags
that the evaluation figures need (probe-filter hit/miss, whether an entry
was allocated, whether the ALLARM local probe was on the critical path,
and so on).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import List

from repro.coherence.messages import Message


class RequestKind(Enum):
    """What the requesting core is trying to do with the line."""

    READ = "read"
    WRITE = "write"

    @property
    def is_write(self) -> bool:
        """True for store / read-for-ownership requests."""
        return self is RequestKind.WRITE


class DataSource(Enum):
    """Where the requested line's data ultimately came from."""

    MEMORY = "memory"
    OWNER_CACHE = "owner"
    LOCAL_CACHE = "local"
    NONE = "none"


_transaction_ids = itertools.count()


@dataclass
class Transaction:
    """One coherence transaction from request to data return.

    Attributes
    ----------
    requester:
        Node issuing the request (the core whose L2 missed).
    home:
        Node whose directory / memory controller owns the address.
    latency_ns:
        End-to-end latency charged to the requesting core.
    probe_filter_hit:
        Whether the home directory found an entry for the line.
    allocated_entry:
        Whether servicing this request allocated a new probe-filter entry.
    caused_eviction:
        Whether that allocation evicted another probe-filter entry.
    local_probe_sent:
        Whether the ALLARM local-state probe was issued.
    local_probe_hidden:
        Whether that probe was off the critical path (overlapped with the
        DRAM access) — the quantity plotted in Figure 3g.
    """

    requester: int
    home: int
    line_address: int
    kind: RequestKind
    txn_id: int = field(default_factory=lambda: next(_transaction_ids))

    latency_ns: float = 0.0
    data_source: DataSource = DataSource.NONE
    probe_filter_hit: bool = False
    allocated_entry: bool = False
    caused_eviction: bool = False
    local_probe_sent: bool = False
    local_probe_hidden: bool = False
    local_probe_found_line: bool = False
    invalidations_sent: int = 0
    messages: List[Message] = field(default_factory=list)

    @property
    def is_local_request(self) -> bool:
        """True when the requester is the home node's own core."""
        return self.requester == self.home

    @property
    def network_bytes(self) -> int:
        """Total bytes this transaction injected into the mesh."""
        return sum(m.size_bytes for m in self.messages if not m.is_local)

    @property
    def message_count(self) -> int:
        """Total number of messages (local ones included)."""
        return len(self.messages)

    def add_message(self, message: Message) -> None:
        """Attach a message to this transaction's record."""
        message.transaction_id = self.txn_id
        self.messages.append(message)
