"""Coherence substrate: MOESI states, messages and transactions."""

from repro.coherence.messages import (
    Message,
    MessageClass,
    MessageFactory,
    MessageSizing,
    MessageType,
)
from repro.coherence.states import LineState, fill_state
from repro.coherence.transactions import DataSource, RequestKind, Transaction

__all__ = [
    "LineState",
    "fill_state",
    "Message",
    "MessageClass",
    "MessageFactory",
    "MessageSizing",
    "MessageType",
    "DataSource",
    "RequestKind",
    "Transaction",
]
