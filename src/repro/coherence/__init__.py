"""Coherence substrate: MOESI states, messages, transactions, invariants."""

from repro.coherence.invariants import (
    cached_line_states,
    check_machine_invariants,
)
from repro.coherence.messages import (
    Message,
    MessageClass,
    MessageFactory,
    MessageSizing,
    MessageType,
)
from repro.coherence.states import LineState, fill_state
from repro.coherence.transactions import DataSource, RequestKind, Transaction

__all__ = [
    "cached_line_states",
    "check_machine_invariants",
    "LineState",
    "fill_state",
    "Message",
    "MessageClass",
    "MessageFactory",
    "MessageSizing",
    "MessageType",
    "DataSource",
    "RequestKind",
    "Transaction",
]
