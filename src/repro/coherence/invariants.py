"""Machine-wide coherence invariants, checkable after any access.

Litmus-style randomized validation (in the spirit of DateSAT's
constraint-driven exploration of input spaces) drives a
:class:`~repro.system.machine.Machine` with arbitrary access streams and
asserts, after every step, the safety properties the protocol must never
violate no matter what the workload does:

* **single-writer / multiple-reader** — at most one cache holds a line
  in a writable (M/E) state, and while one does, no other cache holds
  the line at all; at most one cache is the line's owner (M/O/E).
* **directory-cache agreement** — a probe-filter entry's recorded
  holders must cover every cache that actually holds the line (entries
  may *over*-approximate, because clean sharers drop lines silently
  under the default ``"dirty"`` eviction-notification mode, but an
  under-approximation would let a stale copy survive an invalidation).
* **probe-filter inclusivity** — every cached line is tracked by its
  home directory, with the single documented exception: under ALLARM,
  the home node's *own* cache may hold lines of local memory untracked
  (that is the paper's optimization).
* **structural sanity** — no duplicate probe-filter entries, entries
  sit in the set their address hashes to, holder fields name real nodes
  (a flipped sharer bit or corrupted owner id is caught), occupancy
  never exceeds capacity.  Both filter representations are understood:
  the reference per-set dicts and the packed flat arrays of
  :class:`~repro.core.packed_directory.PackedProbeFilter`.
* **packed eviction bookkeeping** — on the packed engine, a freed or
  victimised slot (cache or probe filter) keeps no residual LRU stamp
  or MOESI code, stamps never exceed the monotonic counter, and PLRU
  bit words stay inside their tree — the in-place eviction paths must
  leave no recency residue that would bias a later victim choice.
* **MSHR quiescence** — no miss-status register is outstanding while
  the machine is idle (misses are serviced atomically, so a dangling
  entry means a miss path leaked its slot).

Violations raise :class:`~repro.errors.ProtocolError` naming the line
and nodes involved.  The checks walk every cache and probe filter, so
they are meant for tests and debugging, not for the simulation hot path.
"""

from __future__ import annotations

from typing import Dict, List

from repro.coherence.states import LineState
from repro.errors import ProtocolError


def cached_line_states(machine) -> Dict[int, Dict[int, LineState]]:
    """Map each cached physical line to ``{node: coherence state}``.

    The L2 image is the coherence-visible truth of each node (the L1s
    are inclusive shadows), so only L2s are walked.
    """
    lines: Dict[int, Dict[int, LineState]] = {}
    for node in machine.nodes:
        for line in node.caches.l2.resident_lines():
            lines.setdefault(line.line_address, {})[node.node_id] = line.state
    return lines


def check_single_writer(machine) -> None:
    """Assert at most one writer and at most one owner per line."""
    for line_address, holders in cached_line_states(machine).items():
        writers = [n for n, s in holders.items() if s.can_write]
        owners = [n for n, s in holders.items() if s.is_owner]
        if len(writers) > 1:
            raise ProtocolError(
                f"line {line_address:#x}: multiple writable copies "
                f"on nodes {sorted(writers)} ({holders})"
            )
        if writers and len(holders) > 1:
            raise ProtocolError(
                f"line {line_address:#x}: node {writers[0]} holds a writable "
                f"copy while nodes {sorted(set(holders) - set(writers))} "
                f"also hold the line ({holders})"
            )
        if len(owners) > 1:
            raise ProtocolError(
                f"line {line_address:#x}: multiple owners "
                f"on nodes {sorted(owners)} ({holders})"
            )


def check_inclusion(machine) -> None:
    """Assert every L1-resident line is also L2-resident (inclusive L2s)."""
    for node in machine.nodes:
        l2 = node.caches.l2
        for l1 in (node.caches.l1i, node.caches.l1d):
            for line in l1.resident_lines():
                if not l2.contains(line.line_address):
                    raise ProtocolError(
                        f"node {node.node_id}: line {line.line_address:#x} in "
                        f"{l1.name} but not in {l2.name}"
                    )


def check_directory_tracking(machine) -> None:
    """Assert probe filters track (at least) every actual holder.

    Under the baseline policy every cached line must be tracked by its
    home directory.  Under ALLARM the home node's own cache may hold
    lines homed in its local memory untracked — but any *remote* holder
    must always be tracked, and when an entry exists its holder set must
    cover every actual holder.
    """
    allarm = machine.config.uses_allarm
    for line_address, holders in cached_line_states(machine).items():
        home_node = machine.address_map.home_node(line_address)
        entry = machine.node(home_node).probe_filter.peek(line_address)
        if entry is None:
            untrackable = {home_node} if allarm else set()
            untracked = set(holders) - untrackable
            if untracked:
                raise ProtocolError(
                    f"line {line_address:#x} (home {home_node}): cached by "
                    f"nodes {sorted(untracked)} but not tracked by the home "
                    f"probe filter"
                )
            continue
        missing = set(holders) - entry.holders
        if allarm:
            missing.discard(home_node)
        if missing:
            raise ProtocolError(
                f"line {line_address:#x} (home {home_node}): probe-filter "
                f"entry lists holders {sorted(entry.holders)} but nodes "
                f"{sorted(missing)} actually hold the line"
            )


def check_probe_filter_structure(machine) -> None:
    """Assert each probe filter's structural integrity.

    Walks the backing storage directly (rather than the flattened
    ``entries()`` view) so that an entry filed in a set its address does
    not hash to — which ``lookup``/``peek`` would silently miss — is
    caught too.  Both representations are understood: the reference
    filter's per-set entry dicts and the packed filter's flat
    tag/owner/sharer-word arrays.  Holder fields are additionally
    range-checked against the machine's node count, catching a flipped
    sharer bit or a corrupted owner id that points outside the mesh.
    """
    node_count = len(machine.nodes)
    for node in machine.nodes:
        probe_filter = node.probe_filter
        if hasattr(probe_filter, "_sets"):
            count = _walk_reference_filter_sets(node, probe_filter, node_count)
        else:
            count = _walk_packed_filter_arrays(node, probe_filter, node_count)
        if count != probe_filter.occupancy():
            raise ProtocolError(
                f"probe filter {node.node_id}: occupancy() reports "
                f"{probe_filter.occupancy()} but {count} entries exist"
            )
        if count > probe_filter.entry_count:
            raise ProtocolError(
                f"probe filter {node.node_id}: {count} entries exceed "
                f"capacity {probe_filter.entry_count}"
            )


def _check_holder_range(node, line_address: int, owner, sharers, node_count: int) -> None:
    """Owner/sharer ids must name real nodes (catches flipped mask bits)."""
    if owner is not None and not 0 <= owner < node_count:
        raise ProtocolError(
            f"probe filter {node.node_id}: entry for {line_address:#x} "
            f"records owner {owner} outside the {node_count}-node machine"
        )
    bogus = [s for s in sharers if not 0 <= s < node_count]
    if bogus:
        raise ProtocolError(
            f"probe filter {node.node_id}: entry for {line_address:#x} "
            f"records sharers {sorted(bogus)} outside the "
            f"{node_count}-node machine"
        )


def _walk_reference_filter_sets(node, probe_filter, node_count: int) -> int:
    seen: Dict[int, int] = {}
    count = 0
    for set_number, fset in enumerate(probe_filter._sets):
        for way, entry in fset.entries.items():
            count += 1
            if entry.line_address in seen:
                raise ProtocolError(
                    f"probe filter {node.node_id}: duplicate entries for "
                    f"line {entry.line_address:#x}"
                )
            seen[entry.line_address] = entry.way
            if probe_filter.set_index(entry.line_address) != set_number:
                raise ProtocolError(
                    f"probe filter {node.node_id}: entry for "
                    f"{entry.line_address:#x} filed in set {set_number} "
                    f"but hashes to set "
                    f"{probe_filter.set_index(entry.line_address)}"
                )
            if way != entry.way or not 0 <= way < probe_filter.associativity:
                raise ProtocolError(
                    f"probe filter {node.node_id}: entry for "
                    f"{entry.line_address:#x} in impossible way "
                    f"{entry.way} (stored under {way})"
                )
            _check_holder_range(
                node, entry.line_address, entry.owner, entry.sharers, node_count
            )
    return count


def _walk_packed_filter_arrays(node, probe_filter, node_count: int) -> int:
    seen: Dict[int, int] = {}
    count = 0
    associativity = probe_filter.associativity
    tags = probe_filter.tags
    owners = probe_filter.owners
    sharer_bits = probe_filter.sharer_bits
    for slot in range(probe_filter.entry_count):
        tag = tags[slot]
        if tag < 0:
            if owners[slot] >= 0 or sharer_bits[slot]:
                raise ProtocolError(
                    f"probe filter {node.node_id}: free way "
                    f"{slot % associativity} of set {slot // associativity} "
                    f"still records holders"
                )
            continue
        count += 1
        if tag in seen:
            raise ProtocolError(
                f"probe filter {node.node_id}: duplicate entries for "
                f"line {tag:#x}"
            )
        seen[tag] = slot
        set_number = slot // associativity
        if probe_filter.set_index(tag) != set_number:
            raise ProtocolError(
                f"probe filter {node.node_id}: entry for {tag:#x} filed in "
                f"set {set_number} but hashes to set "
                f"{probe_filter.set_index(tag)}"
            )
        mask = sharer_bits[slot]
        if mask < 0:
            raise ProtocolError(
                f"probe filter {node.node_id}: entry for {tag:#x} has a "
                f"negative sharer word"
            )
        sharers = set()
        while mask:
            low = mask & -mask
            sharers.add(low.bit_length() - 1)
            mask ^= low
        owner = owners[slot]
        _check_holder_range(
            node, tag, owner if owner >= 0 else None, sharers, node_count
        )
    return count


def _check_packed_store_bookkeeping(node, label: str, store) -> None:
    """Shared walk for one packed tag/recency store (cache or filter).

    *store* is anything with the packed layout contract: ``tags``,
    ``stamps``, ``stamp``, ``plru_bits``, ``associativity`` and ``kind``
    (plus ``states`` for caches).  The in-place eviction bookkeeping
    must leave no residue: a freed or victimised slot that keeps its old
    LRU stamp (or a cache slot its old MOESI code) would bias every
    future replacement decision in that set — a divergence the
    snapshot differ cannot see until a victim choice finally differs.
    """
    tags = store.tags
    stamps = store.stamps
    states = getattr(store, "states", None)
    for slot in range(len(tags)):
        if tags[slot] < 0:
            if stamps[slot] != 0:
                raise ProtocolError(
                    f"node {node.node_id} {label}: free slot {slot} keeps "
                    f"residual LRU stamp {stamps[slot]}"
                )
            if states is not None and states[slot] != 0:
                raise ProtocolError(
                    f"node {node.node_id} {label}: free slot {slot} keeps "
                    f"residual state code {states[slot]}"
                )
        elif stamps[slot] > store.stamp:
            raise ProtocolError(
                f"node {node.node_id} {label}: slot {slot} stamp "
                f"{stamps[slot]} exceeds the monotonic counter {store.stamp}"
            )
    assoc = store.associativity
    for set_index, bits in enumerate(store.plru_bits):
        if not 0 <= bits < (1 << assoc):
            raise ProtocolError(
                f"node {node.node_id} {label}: set {set_index} PLRU word "
                f"{bits:#x} outside the {assoc}-way tree"
            )


def check_packed_eviction_bookkeeping(machine) -> None:
    """Assert packed stores carry no stale recency/state after evictions.

    Applies to the packed engine only (reference stores drop per-line
    objects wholesale, so they cannot leak this way); walks every
    packed cache and packed probe filter.  Reference machines pass
    vacuously.
    """
    for node in machine.nodes:
        caches = node.caches
        for cache in (caches.l1i, caches.l1d, caches.l2):
            if hasattr(cache, "stamps") and hasattr(cache, "tags"):
                _check_packed_store_bookkeeping(node, cache.name, cache)
        probe_filter = node.probe_filter
        if not hasattr(probe_filter, "_sets") and hasattr(probe_filter, "stamps"):
            _check_packed_store_bookkeeping(node, "probe filter", probe_filter)


def check_mshr_quiescence(machine) -> None:
    """Assert no MSHR entry is outstanding while the machine is idle.

    The simulator services each miss atomically, so between accesses the
    MSHR files must be empty; a dangling entry means a miss path exited
    without releasing its slot (and would wedge a real machine once the
    file filled up).
    """
    for node in machine.nodes:
        mshrs = node.caches.mshrs
        if mshrs.occupancy:
            lines = sorted(
                f"{entry.line_address:#x}" for entry in mshrs._entries.values()
            )
            raise ProtocolError(
                f"node {node.node_id}: {mshrs.occupancy} dangling MSHR "
                f"entr{'y' if mshrs.occupancy == 1 else 'ies'} for "
                f"line(s) {', '.join(lines)} while the machine is idle"
            )


#: The individual checks run by :func:`check_machine_invariants`.
ALL_CHECKS = (
    check_single_writer,
    check_inclusion,
    check_directory_tracking,
    check_probe_filter_structure,
    check_packed_eviction_bookkeeping,
    check_mshr_quiescence,
)


def check_machine_invariants(machine) -> None:
    """Run every coherence invariant check against *machine*.

    Raises :class:`~repro.errors.ProtocolError` on the first violation;
    returns ``None`` when the machine state is coherent.
    """
    for check in ALL_CHECKS:
        check(machine)


def holder_summary(machine) -> List[str]:
    """Human-readable dump of every cached line's holders (debug aid)."""
    rows = []
    for line_address, holders in sorted(cached_line_states(machine).items()):
        states = ", ".join(
            f"{node}:{state.value}" for node, state in sorted(holders.items())
        )
        rows.append(f"{line_address:#x}: {states}")
    return rows
