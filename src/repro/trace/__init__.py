"""Trace format: access records and file I/O (v1 text, v2 binary)."""

from repro.trace.binary import (
    TRACE_V2_MAGIC,
    BinaryTraceWriter,
    TraceInfo,
    inspect_trace,
    read_trace_v2,
    write_trace_v2,
)
from repro.trace.io import (
    FORMAT_BINARY,
    FORMAT_TEXT,
    count_records,
    read_trace,
    sniff_format,
    write_trace,
)
from repro.trace.record import AccessRecord, AccessType

__all__ = [
    "AccessRecord",
    "AccessType",
    "BinaryTraceWriter",
    "FORMAT_BINARY",
    "FORMAT_TEXT",
    "TRACE_V2_MAGIC",
    "TraceInfo",
    "count_records",
    "inspect_trace",
    "read_trace",
    "read_trace_v2",
    "sniff_format",
    "write_trace",
    "write_trace_v2",
]
