"""Trace format: access records and file I/O (v1 text, v2 binary, v3 blocked)."""

from repro.trace.binary import (
    TRACE_V2_MAGIC,
    TRACE_V3_MAGIC,
    BinaryTraceWriter,
    BlockedTraceWriter,
    TraceInfo,
    inspect_trace,
    read_trace_v2,
    read_trace_v3,
    read_trace_v3_chunks,
    v3_epoch_index,
    write_trace_v2,
    write_trace_v3,
)
from repro.trace.io import (
    FORMAT_BINARY,
    FORMAT_BLOCKED,
    FORMAT_TEXT,
    count_records,
    read_trace,
    read_trace_chunks,
    sniff_format,
    write_trace,
)
from repro.trace.record import AccessRecord, AccessType

__all__ = [
    "AccessRecord",
    "AccessType",
    "BinaryTraceWriter",
    "BlockedTraceWriter",
    "FORMAT_BINARY",
    "FORMAT_BLOCKED",
    "FORMAT_TEXT",
    "TRACE_V2_MAGIC",
    "TRACE_V3_MAGIC",
    "TraceInfo",
    "count_records",
    "inspect_trace",
    "read_trace",
    "read_trace_chunks",
    "read_trace_v2",
    "read_trace_v3",
    "read_trace_v3_chunks",
    "sniff_format",
    "v3_epoch_index",
    "write_trace",
    "write_trace_v2",
    "write_trace_v3",
]
