"""Trace format: access records and file I/O."""

from repro.trace.io import count_records, read_trace, write_trace
from repro.trace.record import AccessRecord, AccessType

__all__ = [
    "AccessRecord",
    "AccessType",
    "read_trace",
    "write_trace",
    "count_records",
]
