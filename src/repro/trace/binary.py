"""Binary trace format v2: packed, delta-encoded access records.

The v1 text format (:mod:`repro.trace.io`) spends ~18 bytes and three
``int()`` parses per access, which makes million-record traces both large
and slow to replay.  Format v2 packs each record into a few bytes by
exploiting the structure real traces have:

* **Predictable stream interleaving.**  Workload generators interleave
  (process, core) streams round-robin, so the next record's stream is
  almost always either the same as the last one or the *next stream in
  first-seen order* (wrapping).  Both coder sides keep that first-seen
  ring, and both cases are encoded in the header byte with no payload at
  all — including the wrap from the last core back to the first and the
  strict process alternation of the two-process workloads.
* **Per-stream address registers.**  Each (process, core) stream keeps
  four *address registers*.  A record's address is delta-encoded against
  one of them (the header says which), and that register is then updated
  to the new address.  Because the writer steers each data region a
  stream touches onto its own register, the alternation between, say, a
  thread's private heap and a shared table costs a small intra-region
  delta instead of a multi-megabyte jump.
* **Line-aligned deltas.**  Nearly every delta is a multiple of the
  64-byte line size; such deltas are stored in line units (one varint
  bit flags the unit), and deltas of 0 and ±1 line (repeated hot line,
  sequential scan) are folded into the header byte entirely.

The resulting layout is::

    magic   8 bytes   b"\\x89RPT2\\r\\n\\x1a"  (PNG-style, detects text-mode damage)
    count   8 bytes   little-endian record count; all-ones when unknown
    records ...       one variable-length record per access, to EOF

Each record starts with one header byte::

    bits 0-1  access type: 0=READ, 1=WRITE, 2=INSTRUCTION (3 invalid)
    bits 2-3  stream: 0=same as previous, 1=next stream in the ring,
              2=core varint follows (process unchanged),
              3=core varint then process-id varint follow
    bits 4-5  address register index within the record's stream
    bits 6-7  delta: 0=varint follows, 1=zero, 2=+1 line, 3=-1 line

followed by the optional core, process and delta varints, in that order.
Varints are LEB128 (7 bits per byte, high bit continues).  A delta varint
carries ``zigzag(delta_in_units) << 1 | line_flag`` where ``line_flag``
says whether the unit is one 64-byte line or one byte.  Decoder state
(the stream ring starting at (process 0, core 0), all registers zero) is
deterministic, so any prefix of a trace decodes identically to the
stream it was truncated from.  Explicitly-coded streams (modes 2/3) are
appended to the ring on first sight; the register *choice* is encoded in
the record, so the writer's steering heuristic can evolve without
touching the reader.

On the workload mixes in this repository the format is 6-8x smaller than
v1 text and replays about 3x faster (see
``benchmarks/test_trace_perf.py``).
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Tuple, Union

from repro.errors import WorkloadError
from repro.trace.record import AccessRecord, AccessType

PathLike = Union[str, Path]

#: Magic prefix identifying a v2 binary trace (and, PNG-style, catching
#: text-mode newline translation or 7-bit truncation of the file).
TRACE_V2_MAGIC = b"\x89RPT2\r\n\x1a"

#: Byte offset of the little-endian record-count field.
_COUNT_OFFSET = len(TRACE_V2_MAGIC)

#: Sentinel stored in the count field while it is unknown.
_COUNT_UNKNOWN = (1 << 64) - 1

#: Total header size: magic plus the record-count field.
HEADER_SIZE = _COUNT_OFFSET + 8

#: Address-delta unit used when a delta's line flag is set.
_LINE_UNIT = 64

#: Address registers per (process, core) stream.
_REGISTER_COUNT = 4

#: Writer heuristic: a jump farther than this from every live register is
#: treated as entering a new data region and opens a fresh register (the
#: workload layout separates regions by at least a 1 MiB gap).
_NEW_REGION_BYTES = 1 << 20

#: Stream keys pack the process id above the core id; cores are machine
#: core numbers and never approach this bound.
_STREAM_SHIFT = 48

_TYPE_CODES: Dict[AccessType, int] = {
    AccessType.READ: 0,
    AccessType.WRITE: 1,
    AccessType.INSTRUCTION: 2,
}
_TYPES_BY_CODE: Tuple[AccessType, ...] = (
    AccessType.READ,
    AccessType.WRITE,
    AccessType.INSTRUCTION,
)


def _append_uvarint(buffer: bytearray, value: int) -> None:
    """Append *value* (non-negative) to *buffer* as a LEB128 varint."""
    while value >= 0x80:
        buffer.append((value & 0x7F) | 0x80)
        value >>= 7
    buffer.append(value)


def _zigzag(value: int) -> int:
    """Map a signed integer to an unsigned one, small magnitudes first."""
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


class BinaryTraceWriter:
    """Streaming writer for v2 binary traces.

    Records are encoded incrementally and flushed in chunks, so traces
    larger than memory can be captured.  The record count in the header
    is patched in on :meth:`close` (the file is opened by path and is
    therefore seekable).  Usable as a context manager.
    """

    #: Flush the encode buffer to disk once it exceeds this many bytes.
    FLUSH_BYTES = 1 << 20

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._handle = self.path.open("wb")
        self._handle.write(TRACE_V2_MAGIC)
        self._handle.write(_COUNT_UNKNOWN.to_bytes(8, "little"))
        self._buffer = bytearray()
        self._count = 0
        # Stream ring in first-seen order.  Each entry is
        # [core, process_id, registers, registers_in_use]; entry 0 is the
        # implicit initial stream (process 0, core 0).
        self._ring: List[List] = [[0, 0, [0] * _REGISTER_COUNT, 1]]
        self._ring_index: Dict[int, int] = {0: 0}
        self._ring_pos = 0
        self._closed = False

    # ------------------------------------------------------------------
    def write(self, record: AccessRecord) -> None:
        """Encode and buffer one record."""
        buffer = self._buffer
        header = _TYPE_CODES[record.access_type]
        core = record.core
        process_id = record.process_id
        vaddr = record.vaddr

        ring = self._ring
        pos = self._ring_pos
        entry = ring[pos]
        core_payload = ()
        if core != entry[0] or process_id != entry[1]:
            next_pos = pos + 1
            if next_pos == len(ring):
                next_pos = 0
            candidate = ring[next_pos]
            if core == candidate[0] and process_id == candidate[1]:
                header |= 1 << 2
                pos = next_pos
                entry = candidate
            else:
                key = (process_id << _STREAM_SHIFT) | core
                index = self._ring_index.get(key)
                if index is None:
                    index = len(ring)
                    self._ring_index[key] = index
                    ring.append([core, process_id, [0] * _REGISTER_COUNT, 1])
                if process_id == entry[1]:
                    header |= 2 << 2
                    core_payload = (core,)
                else:
                    header |= 3 << 2
                    core_payload = (core, process_id)
                pos = index
                entry = ring[pos]
            self._ring_pos = pos
        regs, used = entry[2], entry[3]

        # Pick the live register closest to the new address; a jump far
        # from all of them means the stream entered a new data region, so
        # open a fresh register for it while one is free.
        best_index = 0
        best_delta = vaddr - regs[0]
        best_magnitude = abs(best_delta)
        for index in range(1, used):
            delta = vaddr - regs[index]
            magnitude = abs(delta)
            if magnitude < best_magnitude:
                best_index, best_delta, best_magnitude = index, delta, magnitude
        if best_magnitude > _NEW_REGION_BYTES and used < _REGISTER_COUNT:
            best_index = used
            best_delta = vaddr
            entry[3] = used + 1
        regs[best_index] = vaddr
        header |= best_index << 4

        delta = best_delta
        if delta == 0:
            header |= 1 << 6
            delta_payload = None
        elif delta == _LINE_UNIT:
            header |= 2 << 6
            delta_payload = None
        elif delta == -_LINE_UNIT:
            header |= 3 << 6
            delta_payload = None
        elif delta % _LINE_UNIT == 0:
            delta_payload = _zigzag(delta // _LINE_UNIT) << 1 | 1
        else:
            delta_payload = _zigzag(delta) << 1

        buffer.append(header)
        for value in core_payload:
            _append_uvarint(buffer, value)
        if delta_payload is not None:
            _append_uvarint(buffer, delta_payload)

        self._count += 1
        if len(buffer) >= self.FLUSH_BYTES:
            self._handle.write(buffer)
            buffer.clear()

    def write_all(self, records: Iterable[AccessRecord]) -> int:
        """Write every record of *records*; return how many were written."""
        before = self._count
        for record in records:
            self.write(record)
        return self._count - before

    # ------------------------------------------------------------------
    @property
    def record_count(self) -> int:
        """Number of records written so far."""
        return self._count

    def close(self) -> None:
        """Flush, patch the header record count and close the file."""
        if self._closed:
            return
        self._closed = True
        try:
            if self._buffer:
                self._handle.write(self._buffer)
                self._buffer.clear()
            self._handle.seek(_COUNT_OFFSET)
            self._handle.write(self._count.to_bytes(8, "little"))
        finally:
            self._handle.close()

    def __enter__(self) -> "BinaryTraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def write_trace_v2(path: PathLike, records: Iterable[AccessRecord]) -> int:
    """Write *records* to *path* in binary v2; return the record count.

    The write is atomic: records are encoded into a temporary file in the
    target directory which is renamed over *path* only once complete, so
    concurrent readers (and parallel sweep workers recording the same
    stream) never observe a torn trace.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent), prefix=target.name, suffix=".tmp"
    )
    os.close(fd)
    try:
        with BinaryTraceWriter(tmp_name) as writer:
            count = writer.write_all(records)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return count


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
def _check_header(data: bytes, source: Path) -> int:
    """Validate magic and return the stored record count (or the sentinel)."""
    if len(data) < HEADER_SIZE or not data.startswith(TRACE_V2_MAGIC):
        raise WorkloadError(f"{source}: not a v2 binary trace (bad magic)")
    return int.from_bytes(data[_COUNT_OFFSET:HEADER_SIZE], "little")


def stored_record_count(path: PathLike) -> int:
    """Return the header record count, or -1 when the header says unknown.

    Only the fixed-size header is read, so this is O(1) regardless of
    trace length — the fast path behind
    :func:`repro.trace.io.count_records`.
    """
    source = Path(path)
    try:
        with source.open("rb") as handle:
            data = handle.read(HEADER_SIZE)
    except OSError as exc:
        raise WorkloadError(f"trace file {source} cannot be read: {exc}") from exc
    count = _check_header(data, source)
    return -1 if count == _COUNT_UNKNOWN else count


def read_trace_v2(path: PathLike) -> Iterator[AccessRecord]:
    """Yield the records of the v2 binary trace at *path*.

    The file is read into memory in one call (a million-record trace is a
    few megabytes) and decoded with a tight loop; malformed input raises
    :class:`~repro.errors.WorkloadError` naming the file, the record
    index and the byte offset of the offending record.  This loop is the
    replay hot path: records are built with ``tuple.__new__`` (inputs are
    structurally non-negative by construction, and the address is checked
    explicitly), which is what buys replay its speed margin over text.
    """
    source = Path(path)
    if not source.exists():
        raise WorkloadError(f"trace file {source} does not exist")
    data = source.read_bytes()
    stored = _check_header(data, source)

    pos = HEADER_SIZE
    end = len(data)
    # Stream ring mirroring the writer: entries are [core, process_id,
    # registers], appended in first-explicit-sight order after the
    # implicit initial (process 0, core 0) stream.
    ring: List[List] = [[0, 0, [0] * _REGISTER_COUNT]]
    ring_index: Dict[int, int] = {0: 0}
    ring_pos = 0
    core, process_id, regs = 0, 0, ring[0][2]
    types = _TYPES_BY_CODE
    new = tuple.__new__
    cls = AccessRecord
    line_unit = _LINE_UNIT
    index = 0

    while pos < end:
        record_start = pos
        try:
            header = data[pos]
            pos += 1

            type_code = header & 3
            if type_code == 3:
                raise WorkloadError("invalid access-type code 3")

            stream_mode = (header >> 2) & 3
            if stream_mode:
                if stream_mode == 1:
                    ring_pos += 1
                    if ring_pos == len(ring):
                        ring_pos = 0
                    entry = ring[ring_pos]
                else:
                    byte = data[pos]
                    pos += 1
                    if byte < 0x80:
                        core = byte
                    else:
                        core = byte & 0x7F
                        shift = 7
                        while True:
                            byte = data[pos]
                            pos += 1
                            core |= (byte & 0x7F) << shift
                            if byte < 0x80:
                                break
                            shift += 7
                    if stream_mode == 3:
                        byte = data[pos]
                        pos += 1
                        if byte < 0x80:
                            process_id = byte
                        else:
                            process_id = byte & 0x7F
                            shift = 7
                            while True:
                                byte = data[pos]
                                pos += 1
                                process_id |= (byte & 0x7F) << shift
                                if byte < 0x80:
                                    break
                                shift += 7
                    key = (process_id << _STREAM_SHIFT) | core
                    ring_pos = ring_index.get(key, -1)
                    if ring_pos < 0:
                        ring_pos = len(ring)
                        ring_index[key] = ring_pos
                        ring.append([core, process_id, [0] * _REGISTER_COUNT])
                    entry = ring[ring_pos]
                core, process_id, regs = entry

            delta_tag = header >> 6
            if delta_tag == 0:
                byte = data[pos]
                pos += 1
                if byte < 0x80:
                    raw = byte
                else:
                    raw = byte & 0x7F
                    shift = 7
                    while True:
                        byte = data[pos]
                        pos += 1
                        raw |= (byte & 0x7F) << shift
                        if byte < 0x80:
                            break
                        shift += 7
                unit = line_unit if raw & 1 else 1
                raw >>= 1
                delta = (raw >> 1) if not (raw & 1) else -((raw + 1) >> 1)
                delta *= unit
            elif delta_tag == 1:
                delta = 0
            elif delta_tag == 2:
                delta = line_unit
            else:
                delta = -line_unit

            register = (header >> 4) & 3
            vaddr = regs[register] + delta
            if vaddr < 0:
                raise WorkloadError(f"negative decoded address {vaddr:#x}")
            regs[register] = vaddr
        except IndexError:
            raise WorkloadError(
                f"{source}: record {index} at byte {record_start}: "
                f"truncated trace"
            ) from None
        except WorkloadError as exc:
            raise WorkloadError(
                f"{source}: record {index} at byte {record_start}: {exc}"
            ) from None
        yield new(cls, (core, vaddr, types[type_code], process_id))
        index += 1

    if stored != _COUNT_UNKNOWN and index != stored:
        raise WorkloadError(
            f"{source}: header promises {stored} records but the file "
            f"holds {index}"
        )


# ----------------------------------------------------------------------
# Inspection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceInfo:
    """Summary of one trace file, either format (``trace info`` CLI)."""

    path: str
    format: str
    records: int
    file_bytes: int
    reads: int
    writes: int
    instructions: int
    core_count: int
    process_count: int

    @property
    def bytes_per_record(self) -> float:
        """Average encoded size of one record."""
        if self.records == 0:
            return 0.0
        return self.file_bytes / self.records


def inspect_trace(path: PathLike) -> TraceInfo:
    """Scan a trace (either format) and return its :class:`TraceInfo`."""
    # Imported here, not at module top, to keep binary.py importable from
    # io.py without a cycle.
    from repro.trace.io import read_trace, sniff_format

    source = Path(path)
    fmt = sniff_format(source)
    reads = writes = instructions = 0
    cores = set()
    processes = set()
    count = 0
    for record in read_trace(source):
        count += 1
        cores.add(record.core)
        processes.add(record.process_id)
        if record.access_type is AccessType.WRITE:
            writes += 1
        elif record.access_type is AccessType.INSTRUCTION:
            instructions += 1
        else:
            reads += 1
    return TraceInfo(
        path=str(source),
        format=fmt,
        records=count,
        file_bytes=source.stat().st_size,
        reads=reads,
        writes=writes,
        instructions=instructions,
        core_count=len(cores),
        process_count=len(processes),
    )
