"""Binary trace format v2: packed, delta-encoded access records.

The v1 text format (:mod:`repro.trace.io`) spends ~18 bytes and three
``int()`` parses per access, which makes million-record traces both large
and slow to replay.  Format v2 packs each record into a few bytes by
exploiting the structure real traces have:

* **Predictable stream interleaving.**  Workload generators interleave
  (process, core) streams round-robin, so the next record's stream is
  almost always either the same as the last one or the *next stream in
  first-seen order* (wrapping).  Both coder sides keep that first-seen
  ring, and both cases are encoded in the header byte with no payload at
  all — including the wrap from the last core back to the first and the
  strict process alternation of the two-process workloads.
* **Per-stream address registers.**  Each (process, core) stream keeps
  four *address registers*.  A record's address is delta-encoded against
  one of them (the header says which), and that register is then updated
  to the new address.  Because the writer steers each data region a
  stream touches onto its own register, the alternation between, say, a
  thread's private heap and a shared table costs a small intra-region
  delta instead of a multi-megabyte jump.
* **Line-aligned deltas.**  Nearly every delta is a multiple of the
  64-byte line size; such deltas are stored in line units (one varint
  bit flags the unit), and deltas of 0 and ±1 line (repeated hot line,
  sequential scan) are folded into the header byte entirely.

The resulting layout is::

    magic   8 bytes   b"\\x89RPT2\\r\\n\\x1a"  (PNG-style, detects text-mode damage)
    count   8 bytes   little-endian record count; all-ones when unknown
    records ...       one variable-length record per access, to EOF

Each record starts with one header byte::

    bits 0-1  access type: 0=READ, 1=WRITE, 2=INSTRUCTION (3 invalid)
    bits 2-3  stream: 0=same as previous, 1=next stream in the ring,
              2=core varint follows (process unchanged),
              3=core varint then process-id varint follow
    bits 4-5  address register index within the record's stream
    bits 6-7  delta: 0=varint follows, 1=zero, 2=+1 line, 3=-1 line

followed by the optional core, process and delta varints, in that order.
Varints are LEB128 (7 bits per byte, high bit continues).  A delta varint
carries ``zigzag(delta_in_units) << 1 | line_flag`` where ``line_flag``
says whether the unit is one 64-byte line or one byte.  Decoder state
(the stream ring starting at (process 0, core 0), all registers zero) is
deterministic, so any prefix of a trace decodes identically to the
stream it was truncated from.  Explicitly-coded streams (modes 2/3) are
appended to the ring on first sight; the register *choice* is encoded in
the record, so the writer's steering heuristic can evolve without
touching the reader.

On the workload mixes in this repository the format is 6-8x smaller than
v1 text and replays about 3x faster (see
``benchmarks/test_trace_perf.py``).
"""

from __future__ import annotations

import os
import struct
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import WorkloadError
from repro.trace.record import AccessRecord, AccessType

PathLike = Union[str, Path]

#: Magic prefix identifying a v2 binary trace (and, PNG-style, catching
#: text-mode newline translation or 7-bit truncation of the file).
TRACE_V2_MAGIC = b"\x89RPT2\r\n\x1a"

#: Magic prefix identifying a v3 blocked columnar trace (same scheme).
TRACE_V3_MAGIC = b"\x89RPT3\r\n\x1a"

#: Byte offset of the little-endian record-count field.
_COUNT_OFFSET = len(TRACE_V2_MAGIC)

#: Sentinel stored in the count field while it is unknown.
_COUNT_UNKNOWN = (1 << 64) - 1

#: Total header size: magic plus the record-count field.
HEADER_SIZE = _COUNT_OFFSET + 8

#: Address-delta unit used when a delta's line flag is set.
_LINE_UNIT = 64

#: Address registers per (process, core) stream.
_REGISTER_COUNT = 4

#: Writer heuristic: a jump farther than this from every live register is
#: treated as entering a new data region and opens a fresh register (the
#: workload layout separates regions by at least a 1 MiB gap).
_NEW_REGION_BYTES = 1 << 20

#: Stream keys pack the process id above the core id; cores are machine
#: core numbers and never approach this bound.
_STREAM_SHIFT = 48

_TYPE_CODES: Dict[AccessType, int] = {
    AccessType.READ: 0,
    AccessType.WRITE: 1,
    AccessType.INSTRUCTION: 2,
}
_TYPES_BY_CODE: Tuple[AccessType, ...] = (
    AccessType.READ,
    AccessType.WRITE,
    AccessType.INSTRUCTION,
)


def _append_uvarint(buffer: bytearray, value: int) -> None:
    """Append *value* (non-negative) to *buffer* as a LEB128 varint."""
    while value >= 0x80:
        buffer.append((value & 0x7F) | 0x80)
        value >>= 7
    buffer.append(value)


def _zigzag(value: int) -> int:
    """Map a signed integer to an unsigned one, small magnitudes first."""
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


class BinaryTraceWriter:
    """Streaming writer for v2 binary traces.

    Records are encoded incrementally and flushed in chunks, so traces
    larger than memory can be captured.  The record count in the header
    is patched in on :meth:`close` (the file is opened by path and is
    therefore seekable).  Usable as a context manager.
    """

    #: Flush the encode buffer to disk once it exceeds this many bytes.
    FLUSH_BYTES = 1 << 20

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._handle = self.path.open("wb")
        self._handle.write(TRACE_V2_MAGIC)
        self._handle.write(_COUNT_UNKNOWN.to_bytes(8, "little"))
        self._buffer = bytearray()
        self._count = 0
        # Stream ring in first-seen order.  Each entry is
        # [core, process_id, registers, registers_in_use]; entry 0 is the
        # implicit initial stream (process 0, core 0).
        self._ring: List[List] = [[0, 0, [0] * _REGISTER_COUNT, 1]]
        self._ring_index: Dict[int, int] = {0: 0}
        self._ring_pos = 0
        self._closed = False

    # ------------------------------------------------------------------
    def write(self, record: AccessRecord) -> None:
        """Encode and buffer one record."""
        buffer = self._buffer
        header = _TYPE_CODES[record.access_type]
        core = record.core
        process_id = record.process_id
        vaddr = record.vaddr

        ring = self._ring
        pos = self._ring_pos
        entry = ring[pos]
        core_payload = ()
        if core != entry[0] or process_id != entry[1]:
            next_pos = pos + 1
            if next_pos == len(ring):
                next_pos = 0
            candidate = ring[next_pos]
            if core == candidate[0] and process_id == candidate[1]:
                header |= 1 << 2
                pos = next_pos
                entry = candidate
            else:
                key = (process_id << _STREAM_SHIFT) | core
                index = self._ring_index.get(key)
                if index is None:
                    index = len(ring)
                    self._ring_index[key] = index
                    ring.append([core, process_id, [0] * _REGISTER_COUNT, 1])
                if process_id == entry[1]:
                    header |= 2 << 2
                    core_payload = (core,)
                else:
                    header |= 3 << 2
                    core_payload = (core, process_id)
                pos = index
                entry = ring[pos]
            self._ring_pos = pos
        regs, used = entry[2], entry[3]

        # Pick the live register closest to the new address; a jump far
        # from all of them means the stream entered a new data region, so
        # open a fresh register for it while one is free.
        best_index = 0
        best_delta = vaddr - regs[0]
        best_magnitude = abs(best_delta)
        for index in range(1, used):
            delta = vaddr - regs[index]
            magnitude = abs(delta)
            if magnitude < best_magnitude:
                best_index, best_delta, best_magnitude = index, delta, magnitude
        if best_magnitude > _NEW_REGION_BYTES and used < _REGISTER_COUNT:
            best_index = used
            best_delta = vaddr
            entry[3] = used + 1
        regs[best_index] = vaddr
        header |= best_index << 4

        delta = best_delta
        if delta == 0:
            header |= 1 << 6
            delta_payload = None
        elif delta == _LINE_UNIT:
            header |= 2 << 6
            delta_payload = None
        elif delta == -_LINE_UNIT:
            header |= 3 << 6
            delta_payload = None
        elif delta % _LINE_UNIT == 0:
            delta_payload = _zigzag(delta // _LINE_UNIT) << 1 | 1
        else:
            delta_payload = _zigzag(delta) << 1

        buffer.append(header)
        for value in core_payload:
            _append_uvarint(buffer, value)
        if delta_payload is not None:
            _append_uvarint(buffer, delta_payload)

        self._count += 1
        if len(buffer) >= self.FLUSH_BYTES:
            self._handle.write(buffer)
            buffer.clear()

    def write_all(self, records: Iterable[AccessRecord]) -> int:
        """Write every record of *records*; return how many were written."""
        before = self._count
        for record in records:
            self.write(record)
        return self._count - before

    # ------------------------------------------------------------------
    @property
    def record_count(self) -> int:
        """Number of records written so far."""
        return self._count

    def close(self) -> None:
        """Flush, patch the header record count and close the file."""
        if self._closed:
            return
        self._closed = True
        try:
            if self._buffer:
                self._handle.write(self._buffer)
                self._buffer.clear()
            self._handle.seek(_COUNT_OFFSET)
            self._handle.write(self._count.to_bytes(8, "little"))
        finally:
            self._handle.close()

    def __enter__(self) -> "BinaryTraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def write_trace_v2(path: PathLike, records: Iterable[AccessRecord]) -> int:
    """Write *records* to *path* in binary v2; return the record count.

    The write is atomic: records are encoded into a temporary file in the
    target directory which is renamed over *path* only once complete, so
    concurrent readers (and parallel sweep workers recording the same
    stream) never observe a torn trace.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent), prefix=target.name, suffix=".tmp"
    )
    os.close(fd)
    try:
        with BinaryTraceWriter(tmp_name) as writer:
            count = writer.write_all(records)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return count


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
def _check_header(data: bytes, source: Path) -> int:
    """Validate the v2 magic and return the stored count (or the sentinel)."""
    if len(data) < HEADER_SIZE or not data.startswith(TRACE_V2_MAGIC):
        raise WorkloadError(f"{source}: not a v2 binary trace (bad magic)")
    return int.from_bytes(data[_COUNT_OFFSET:HEADER_SIZE], "little")


def stored_record_count(path: PathLike) -> int:
    """Return the header record count, or -1 when the header says unknown.

    Works for both binary formats (v2 varint and v3 blocked share the
    8-byte-magic + 8-byte-count header layout).  Only the fixed-size
    header is read, so this is O(1) regardless of trace length — the
    fast path behind :func:`repro.trace.io.count_records`.
    """
    source = Path(path)
    try:
        with source.open("rb") as handle:
            data = handle.read(HEADER_SIZE)
    except OSError as exc:
        raise WorkloadError(f"trace file {source} cannot be read: {exc}") from exc
    if len(data) < HEADER_SIZE or not (
        data.startswith(TRACE_V2_MAGIC) or data.startswith(TRACE_V3_MAGIC)
    ):
        raise WorkloadError(f"{source}: not a binary trace (bad magic)")
    count = int.from_bytes(data[_COUNT_OFFSET:HEADER_SIZE], "little")
    return -1 if count == _COUNT_UNKNOWN else count


def read_trace_v2(path: PathLike) -> Iterator[AccessRecord]:
    """Yield the records of the v2 binary trace at *path*.

    The file is read into memory in one call (a million-record trace is a
    few megabytes) and decoded with a tight loop; malformed input raises
    :class:`~repro.errors.WorkloadError` naming the file, the record
    index and the byte offset of the offending record.  This loop is the
    replay hot path: records are built with ``tuple.__new__`` (inputs are
    structurally non-negative by construction, and the address is checked
    explicitly), which is what buys replay its speed margin over text.
    """
    source = Path(path)
    if not source.exists():
        raise WorkloadError(f"trace file {source} does not exist")
    data = source.read_bytes()
    stored = _check_header(data, source)

    pos = HEADER_SIZE
    end = len(data)
    # Stream ring mirroring the writer: entries are [core, process_id,
    # registers], appended in first-explicit-sight order after the
    # implicit initial (process 0, core 0) stream.
    ring: List[List] = [[0, 0, [0] * _REGISTER_COUNT]]
    ring_index: Dict[int, int] = {0: 0}
    ring_pos = 0
    core, process_id, regs = 0, 0, ring[0][2]
    types = _TYPES_BY_CODE
    new = tuple.__new__
    cls = AccessRecord
    line_unit = _LINE_UNIT
    index = 0

    while pos < end:
        record_start = pos
        try:
            header = data[pos]
            pos += 1

            type_code = header & 3
            if type_code == 3:
                raise WorkloadError("invalid access-type code 3")

            stream_mode = (header >> 2) & 3
            if stream_mode:
                if stream_mode == 1:
                    ring_pos += 1
                    if ring_pos == len(ring):
                        ring_pos = 0
                    entry = ring[ring_pos]
                else:
                    byte = data[pos]
                    pos += 1
                    if byte < 0x80:
                        core = byte
                    else:
                        core = byte & 0x7F
                        shift = 7
                        while True:
                            byte = data[pos]
                            pos += 1
                            core |= (byte & 0x7F) << shift
                            if byte < 0x80:
                                break
                            shift += 7
                    if stream_mode == 3:
                        byte = data[pos]
                        pos += 1
                        if byte < 0x80:
                            process_id = byte
                        else:
                            process_id = byte & 0x7F
                            shift = 7
                            while True:
                                byte = data[pos]
                                pos += 1
                                process_id |= (byte & 0x7F) << shift
                                if byte < 0x80:
                                    break
                                shift += 7
                    key = (process_id << _STREAM_SHIFT) | core
                    ring_pos = ring_index.get(key, -1)
                    if ring_pos < 0:
                        ring_pos = len(ring)
                        ring_index[key] = ring_pos
                        ring.append([core, process_id, [0] * _REGISTER_COUNT])
                    entry = ring[ring_pos]
                core, process_id, regs = entry

            delta_tag = header >> 6
            if delta_tag == 0:
                byte = data[pos]
                pos += 1
                if byte < 0x80:
                    raw = byte
                else:
                    raw = byte & 0x7F
                    shift = 7
                    while True:
                        byte = data[pos]
                        pos += 1
                        raw |= (byte & 0x7F) << shift
                        if byte < 0x80:
                            break
                        shift += 7
                unit = line_unit if raw & 1 else 1
                raw >>= 1
                delta = (raw >> 1) if not (raw & 1) else -((raw + 1) >> 1)
                delta *= unit
            elif delta_tag == 1:
                delta = 0
            elif delta_tag == 2:
                delta = line_unit
            else:
                delta = -line_unit

            register = (header >> 4) & 3
            vaddr = regs[register] + delta
            if vaddr < 0:
                raise WorkloadError(f"negative decoded address {vaddr:#x}")
            regs[register] = vaddr
        except IndexError:
            raise WorkloadError(
                f"{source}: record {index} at byte {record_start}: "
                f"truncated trace"
            ) from None
        except WorkloadError as exc:
            raise WorkloadError(
                f"{source}: record {index} at byte {record_start}: {exc}"
            ) from None
        yield new(cls, (core, vaddr, types[type_code], process_id))
        index += 1

    if stored != _COUNT_UNKNOWN and index != stored:
        raise WorkloadError(
            f"{source}: header promises {stored} records but the file "
            f"holds {index}"
        )


# ----------------------------------------------------------------------
# Format v3: blocked columnar records
# ----------------------------------------------------------------------
#: Records per block the v3 writer emits by default.  Matches the batched
#: engine's default chunk size so one decoded block feeds one kernel
#: chunk with no re-blocking.
DEFAULT_BLOCK_RECORDS = 8192

#: Per-block header: u32 record count + u32 reserved (keeps the address
#: column 8-byte aligned relative to the block start).
_BLOCK_HEADER = struct.Struct("<II")

# ----------------------------------------------------------------------
# v3.1 epoch index (optional seekable footer)
# ----------------------------------------------------------------------
#: Marker opening the epoch-index footer and closing its trailer.
EPOCH_INDEX_MAGIC = b"\x89RPT3EI\x1a"

#: Fixed-size trailer at EOF: u64 footer byte length (from footer magic
#: up to but excluding the trailer itself) + the marker again.  Readers
#: discover the footer by seeking 16 bytes back from EOF, so a v3.1 file
#: stays a valid v3 stream for block scanners that stop at the footer.
_EPOCH_TRAILER = struct.Struct("<Q8s")

#: Footer body layout: marker, u64 records-per-epoch, u64 epoch count,
#: then per epoch a u64 byte offset of its first block and a u64 record
#: count (the final epoch may hold fewer than records-per-epoch).
_EPOCH_FOOTER_HEAD = struct.Struct("<8sQQ")
_EPOCH_ENTRY = struct.Struct("<QQ")


def _require_numpy():
    """Return numpy, or None when absent or explicitly disabled."""
    if os.environ.get("REPRO_BATCH_FORCE_FALLBACK"):
        return None
    try:
        import numpy
    except ImportError:
        return None
    return numpy


class BlockedTraceWriter:
    """Streaming writer for v3 blocked columnar traces.

    Where v2 optimises *bytes per record* (varint deltas, implicit stream
    coding — inherently sequential to decode), v3 optimises *decode
    bandwidth*: records are laid out in fixed-size blocks of fixed-width
    columns (addresses as little-endian ``int64``, cores/processes/types
    as single bytes), so a reader turns a whole block into parallel
    arrays with four buffer reinterpretations and no per-record
    arithmetic.  The ~11 bytes/record cost over v2's ~2 is the price of
    replay-speed decode; the batched engine consumes the blocks as
    :class:`~repro.system.batchcore.AccessChunk` columns directly.

    Layout::

        magic   8 bytes   b"\\x89RPT3\\r\\n\\x1a"
        count   8 bytes   little-endian record count; all-ones when unknown
        blocks  ...       until EOF, each:
            n        u32    records in this block (non-zero)
            reserved u32    zero
            addrs    n*i64  virtual addresses, little-endian
            cores    n*u8
            pids     n*u8
            types    n*u8   0=READ 1=WRITE 2=INSTRUCTION
            pad      0-7 bytes of zeros to the next 8-byte boundary

    Cores and process ids must fit a byte — true of every machine this
    harness models; the writer raises :class:`WorkloadError` otherwise.

    With ``epoch_records`` (v3.1), the writer additionally appends a
    seekable epoch-index footer on :meth:`close`: every *epoch_records*
    records start a new epoch, and the footer records each epoch's first
    block byte offset and record count so readers can decode any epoch
    range without scanning the blocks before it.  Epoch boundaries must
    coincide with block boundaries, so *epoch_records* must be a
    positive multiple of *block_records*.  The footer lives after the
    last block with a fixed-size trailer at EOF; v3.0 readers of this
    harness stop at the footer, and footer-less files stay fully
    readable.
    """

    def __init__(
        self,
        path: PathLike,
        block_records: int = DEFAULT_BLOCK_RECORDS,
        epoch_records: Optional[int] = None,
    ) -> None:
        if block_records <= 0:
            raise WorkloadError("block_records must be positive")
        if epoch_records is not None and (
            epoch_records <= 0 or epoch_records % block_records != 0
        ):
            raise WorkloadError(
                f"epoch_records ({epoch_records}) must be a positive "
                f"multiple of block_records ({block_records}) so epoch "
                f"boundaries fall on block boundaries"
            )
        self.path = Path(path)
        self.block_records = block_records
        self.epoch_records = epoch_records
        self._handle = self.path.open("wb")
        self._handle.write(TRACE_V3_MAGIC)
        self._handle.write(_COUNT_UNKNOWN.to_bytes(8, "little"))
        self._count = 0
        self._addrs: List[int] = []
        self._cores = bytearray()
        self._pids = bytearray()
        self._types = bytearray()
        self._write_offset = HEADER_SIZE
        self._epochs: List[List[int]] = []  # [first-block offset, records]
        self._closed = False

    # ------------------------------------------------------------------
    def write(self, record: AccessRecord) -> None:
        """Encode and buffer one record; flush on a full block."""
        core = record.core
        process_id = record.process_id
        if core > 0xFF or process_id > 0xFF:
            raise WorkloadError(
                f"v3 blocked traces store cores and process ids as bytes; "
                f"got core {core}, process {process_id}"
            )
        self._addrs.append(record.vaddr)
        self._cores.append(core)
        self._pids.append(process_id)
        self._types.append(_TYPE_CODES[record.access_type])
        self._count += 1
        if len(self._addrs) >= self.block_records:
            self._flush_block()

    def write_all(self, records: Iterable[AccessRecord]) -> int:
        """Write every record of *records*; return how many were written."""
        before = self._count
        for record in records:
            self.write(record)
        return self._count - before

    def _flush_block(self) -> None:
        n = len(self._addrs)
        if not n:
            return
        try:
            addr_bytes = struct.pack(f"<{n}q", *self._addrs)
        except struct.error as exc:
            raise WorkloadError(f"address out of int64 range: {exc}") from exc
        block = bytearray(_BLOCK_HEADER.pack(n, 0))
        block += addr_bytes
        block += self._cores
        block += self._pids
        block += self._types
        block += b"\x00" * (-len(block) % 8)
        if self.epoch_records is not None:
            # Blocks flush at exactly block_records (epoch_records is a
            # multiple of it), so a new epoch always starts on a block.
            if not self._epochs or self._epochs[-1][1] >= self.epoch_records:
                self._epochs.append([self._write_offset, 0])
            self._epochs[-1][1] += n
        self._handle.write(block)
        self._write_offset += len(block)
        self._addrs.clear()
        self._cores.clear()
        self._pids.clear()
        self._types.clear()

    # ------------------------------------------------------------------
    @property
    def record_count(self) -> int:
        """Number of records written so far."""
        return self._count

    def close(self) -> None:
        """Flush, append the epoch footer (v3.1), patch the count, close.

        The footer and the header count are the last things written, so
        a writer killed mid-stream leaves a footer-less file with the
        unknown-count sentinel — readers fall back to a full block scan.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._flush_block()
            if self.epoch_records is not None:
                footer = bytearray(
                    _EPOCH_FOOTER_HEAD.pack(
                        EPOCH_INDEX_MAGIC, self.epoch_records, len(self._epochs)
                    )
                )
                for offset, records in self._epochs:
                    footer += _EPOCH_ENTRY.pack(offset, records)
                self._handle.write(footer)
                self._handle.write(
                    _EPOCH_TRAILER.pack(len(footer), EPOCH_INDEX_MAGIC)
                )
            self._handle.seek(_COUNT_OFFSET)
            self._handle.write(self._count.to_bytes(8, "little"))
        finally:
            self._handle.close()

    def __enter__(self) -> "BlockedTraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def write_trace_v3(
    path: PathLike,
    records: Iterable[AccessRecord],
    block_records: int = DEFAULT_BLOCK_RECORDS,
    epoch_records: Optional[int] = None,
) -> int:
    """Write *records* to *path* in blocked columnar v3; return the count.

    Atomic like :func:`write_trace_v2`: encoded into a sibling temporary
    file and renamed over *path* only once complete.  Passing
    ``epoch_records`` appends the v3.1 seekable epoch-index footer (see
    :class:`BlockedTraceWriter`).
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent), prefix=target.name, suffix=".tmp"
    )
    os.close(fd)
    try:
        with BlockedTraceWriter(
            tmp_name, block_records=block_records, epoch_records=epoch_records
        ) as writer:
            count = writer.write_all(records)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return count


def _v3_layout(
    data: bytes, source: Path
) -> Tuple[int, int, Optional[List[Tuple[int, int]]]]:
    """Locate the optional v3.1 epoch-index footer.

    Returns ``(blocks_end, epoch_records, entries)``: the byte offset
    where the block region ends (EOF for footer-less files), the
    records-per-epoch the footer was written with (0 without a footer)
    and the per-epoch ``(first_block_offset, record_count)`` table
    (``None`` without a footer).  A present-but-inconsistent footer
    raises :class:`WorkloadError` rather than silently scanning garbage.
    """
    end = len(data)
    if end < HEADER_SIZE + _EPOCH_TRAILER.size:
        return end, 0, None
    footer_size, marker = _EPOCH_TRAILER.unpack_from(data, end - _EPOCH_TRAILER.size)
    if marker != EPOCH_INDEX_MAGIC:
        return end, 0, None
    footer_start = end - _EPOCH_TRAILER.size - footer_size
    if (
        footer_size < _EPOCH_FOOTER_HEAD.size
        or footer_start < HEADER_SIZE
        or data[footer_start : footer_start + 8] != EPOCH_INDEX_MAGIC
    ):
        raise WorkloadError(
            f"{source}: corrupt epoch-index footer (trailer points "
            f"{footer_size} bytes back but no footer marker is there); "
            f"re-record the trace to repair the index"
        )
    _marker, epoch_records, count = _EPOCH_FOOTER_HEAD.unpack_from(
        data, footer_start
    )
    expected_size = _EPOCH_FOOTER_HEAD.size + count * _EPOCH_ENTRY.size
    if footer_size != expected_size:
        raise WorkloadError(
            f"{source}: corrupt epoch-index footer ({count} epochs need "
            f"{expected_size} bytes, trailer says {footer_size})"
        )
    entries = [
        (offset, records)
        for offset, records in _EPOCH_ENTRY.iter_unpack(
            data[footer_start + _EPOCH_FOOTER_HEAD.size : footer_start + footer_size]
        )
    ]
    return footer_start, epoch_records, entries


def v3_epoch_index(path: PathLike) -> Optional[Dict[str, object]]:
    """Return the epoch index of a v3.1 trace, or None for plain v3.

    The index is ``{"epoch_records": N, "entries": [(offset, records),
    ...]}`` — one entry per epoch, in trace order.  Sharded replay uses
    it to map checkpoint epochs to byte ranges without scanning.
    """
    source = Path(path)
    if not source.exists():
        raise WorkloadError(f"trace file {source} does not exist")
    data = source.read_bytes()
    if not data.startswith(TRACE_V3_MAGIC):
        raise WorkloadError(f"{source}: not a v3 blocked trace (bad magic)")
    _blocks_end, epoch_records, entries = _v3_layout(data, source)
    if entries is None:
        return None
    return {"epoch_records": epoch_records, "entries": entries}


def _iter_v3_blocks(
    data: bytes,
    source: Path,
    start: int = HEADER_SIZE,
    end: Optional[int] = None,
) -> Iterator[Tuple[int, int, int]]:
    """Yield ``(offset_of_addrs, n, next_block_offset)`` per v3 block.

    *start*/*end* bound the scan to a byte range of whole blocks — the
    epoch-sliced read path passes offsets straight from the footer, and
    full scans pass the block-region end so the footer itself is never
    misread as a block.
    """
    pos = start
    if end is None:
        end = len(data)
    index = 0
    while pos < end:
        if end - pos < _BLOCK_HEADER.size:
            raise WorkloadError(
                f"{source}: block {index} at byte {pos}: truncated block header"
            )
        n, _reserved = _BLOCK_HEADER.unpack_from(data, pos)
        if n == 0:
            raise WorkloadError(
                f"{source}: block {index} at byte {pos}: empty block"
            )
        body = pos + _BLOCK_HEADER.size
        payload = 11 * n  # 8-byte address + 3 column bytes per record
        next_pos = body + payload + (-(body + payload) % 8)
        if next_pos > end:
            raise WorkloadError(
                f"{source}: block {index} at byte {pos}: truncated block body"
            )
        yield body, n, next_pos
        pos = next_pos
        index += 1


def read_trace_v3_chunks(
    path: PathLike,
    start_epoch: Optional[int] = None,
    end_epoch: Optional[int] = None,
):
    """Yield the blocks of a v3 trace as ``AccessChunk`` column sets.

    This is the batched engine's native ingestion path: with numpy, each
    block decodes with four zero-copy buffer views; without it, with
    ``array``/``memoryview`` reinterpretation — either way no per-record
    Python object is created.

    ``start_epoch``/``end_epoch`` (inclusive/exclusive) restrict the
    read to an epoch range of a v3.1 trace: the epoch-index footer maps
    the range to a byte span, so a shard worker decodes only the blocks
    it replays.  Requesting an epoch range on a trace without an epoch
    index raises :class:`WorkloadError`.
    """
    # Imported lazily: repro.trace.__init__ imports this module, and
    # batchcore imports repro.trace.record, so a module-level import
    # would cycle through the package initialisation.
    from array import array

    from repro.system.batchcore import AccessChunk

    source = Path(path)
    if not source.exists():
        raise WorkloadError(f"trace file {source} does not exist")
    data = source.read_bytes()
    if not data.startswith(TRACE_V3_MAGIC):
        raise WorkloadError(f"{source}: not a v3 blocked trace (bad magic)")
    stored = int.from_bytes(data[_COUNT_OFFSET:HEADER_SIZE], "little")
    blocks_end, _epoch_records, entries = _v3_layout(data, source)
    if start_epoch is None and end_epoch is None:
        scan_start, scan_end = HEADER_SIZE, blocks_end
        expected = None if stored == _COUNT_UNKNOWN else stored
        promise = "header"
    else:
        if entries is None:
            raise WorkloadError(
                f"{source}: epoch range requested but the trace has no "
                f"epoch index; re-record it with epoch_records set "
                f"(trace record --epoch-records) to enable sharded replay"
            )
        epochs = len(entries)
        lo = 0 if start_epoch is None else start_epoch
        hi = epochs if end_epoch is None else end_epoch
        if not 0 <= lo <= hi <= epochs:
            raise WorkloadError(
                f"{source}: epoch range [{lo}, {hi}) outside the trace's "
                f"{epochs} epochs"
            )
        scan_start = entries[lo][0] if lo < epochs else blocks_end
        scan_end = entries[hi][0] if hi < epochs else blocks_end
        expected = sum(records for _offset, records in entries[lo:hi])
        promise = "epoch index"
    np = _require_numpy()
    total = 0
    for body, n, _next_pos in _iter_v3_blocks(data, source, scan_start, scan_end):
        addrs = array("q")
        addrs.frombytes(data[body : body + 8 * n])
        if sys.byteorder != "little":  # pragma: no cover - exotic hosts
            addrs.byteswap()
        col = body + 8 * n
        if np is not None:
            bytes_view = np.frombuffer(data, dtype=np.uint8, offset=col, count=3 * n)
            cores = array("q")
            cores.frombytes(bytes_view[:n].astype(np.int64).tobytes())
            pids = array("q")
            pids.frombytes(bytes_view[n : 2 * n].astype(np.int64).tobytes())
            types = array("q")
            types.frombytes(bytes_view[2 * n :].astype(np.int64).tobytes())
            bad = int(bytes_view[2 * n :].max()) > 2 or int(
                np.frombuffer(data, dtype="<i8", offset=body, count=n).min()
            ) < 0
        else:
            # array('q', <bytes>) would reinterpret raw bytes; build from
            # int lists (C-speed iteration over the byte columns).
            cores = array("q", list(data[col : col + n]))
            pids = array("q", list(data[col + n : col + 2 * n]))
            types = array("q", list(data[col + 2 * n : col + 3 * n]))
            bad = max(types) > 2 or min(addrs) < 0
        if bad:
            raise WorkloadError(
                f"{source}: block at byte {body - _BLOCK_HEADER.size}: "
                f"invalid access-type code or negative address"
            )
        total += n
        yield AccessChunk(cores, addrs, types, pids)
    if expected is not None and total != expected:
        raise WorkloadError(
            f"{source}: {promise} promises {expected} records but the "
            f"file holds {total}"
        )


def read_trace_v3(path: PathLike) -> Iterator[AccessRecord]:
    """Yield the records of the v3 blocked trace at *path*."""
    for chunk in read_trace_v3_chunks(path):
        yield from chunk.records()


def v3_block_stats(path: PathLike) -> Dict[str, float]:
    """Block-level statistics of a v3 trace (``trace info`` CLI)."""
    source = Path(path)
    data = source.read_bytes()
    if not data.startswith(TRACE_V3_MAGIC):
        raise WorkloadError(f"{source}: not a v3 blocked trace (bad magic)")
    blocks_end, epoch_records, entries = _v3_layout(data, source)
    sizes = [
        n for _body, n, _next in _iter_v3_blocks(data, source, end=blocks_end)
    ]
    records = sum(sizes)
    return {
        "blocks": len(sizes),
        "records_per_block": records / len(sizes) if sizes else 0.0,
        "max_block_records": max(sizes) if sizes else 0,
        "epochs": len(entries) if entries is not None else 0,
        "epoch_records": epoch_records,
    }


# ----------------------------------------------------------------------
# Inspection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceInfo:
    """Summary of one trace file, any format (``trace info`` CLI).

    Beyond the access mix, the summary carries the columnar-replay
    figures the batched engine cares about: per-stream record counts
    (one stream per (process, core) pair), how the records group into
    blocks (stored blocks for v3, would-be decode chunks for v1/v2) and
    a measured decode rate for the scan itself.
    """

    path: str
    format: str
    records: int
    file_bytes: int
    reads: int
    writes: int
    instructions: int
    core_count: int
    process_count: int
    #: Records per (process, core) stream, keyed ``"p<process>/c<core>"``.
    stream_records: Dict[str, int] = field(default_factory=dict)
    #: Blocks the trace decodes into: stored blocks for v3, chunks of
    #: :data:`DEFAULT_BLOCK_RECORDS` for the sequential formats.
    blocks: int = 0
    #: Average records per block/chunk.
    records_per_block: float = 0.0
    #: Epochs in the v3.1 seekable index; 0 when the trace has none.
    epochs: int = 0
    #: Records per full epoch the index was written with (0 without one).
    epoch_records: int = 0
    #: Decode throughput of the inspection scan itself, in MB/s.
    decode_mb_s: float = 0.0

    @property
    def bytes_per_record(self) -> float:
        """Average encoded size of one record."""
        if self.records == 0:
            return 0.0
        return self.file_bytes / self.records


def inspect_trace(path: PathLike) -> TraceInfo:
    """Scan a trace (any format) and return its :class:`TraceInfo`."""
    # Imported here, not at module top, to keep binary.py importable from
    # io.py without a cycle.
    import time

    from repro.trace.io import read_trace, sniff_format

    source = Path(path)
    fmt = sniff_format(source)
    reads = writes = instructions = 0
    streams: Dict[Tuple[int, int], int] = {}
    count = 0
    started = time.perf_counter()
    for record in read_trace(source):
        count += 1
        key = (record.process_id, record.core)
        streams[key] = streams.get(key, 0) + 1
        if record.access_type is AccessType.WRITE:
            writes += 1
        elif record.access_type is AccessType.INSTRUCTION:
            instructions += 1
        else:
            reads += 1
    elapsed = time.perf_counter() - started
    file_bytes = source.stat().st_size
    if fmt == "blocked":
        stats = v3_block_stats(source)
        blocks = int(stats["blocks"])
        records_per_block = stats["records_per_block"]
        epochs = int(stats["epochs"])
        epoch_records = int(stats["epoch_records"])
    else:
        blocks = -(-count // DEFAULT_BLOCK_RECORDS) if count else 0
        records_per_block = count / blocks if blocks else 0.0
        epochs = 0
        epoch_records = 0
    return TraceInfo(
        path=str(source),
        format=fmt,
        records=count,
        file_bytes=file_bytes,
        reads=reads,
        writes=writes,
        instructions=instructions,
        core_count=len({core for _pid, core in streams}),
        process_count=len({pid for pid, _core in streams}),
        stream_records={
            f"p{pid}/c{core}": n
            for (pid, core), n in sorted(streams.items())
        },
        blocks=blocks,
        records_per_block=records_per_block,
        epochs=epochs,
        epoch_records=epoch_records,
        decode_mb_s=(file_bytes / elapsed / 1e6) if elapsed > 0 else 0.0,
    )
