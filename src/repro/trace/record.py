"""Trace records: the unit of work the trace-driven simulator consumes.

A trace is an ordered sequence of :class:`AccessRecord` objects, each
describing one memory reference made by one core of one process.  Synthetic
workload generators produce these records directly; the reader/writer pair
in :mod:`repro.trace` serialises them to disk so traces can be captured
once and replayed against many machine configurations.

:class:`AccessRecord` is a :class:`typing.NamedTuple` rather than a frozen
dataclass: tens of millions are created per sweep (one per simulated
memory reference), and tuple construction is several times cheaper than a
frozen dataclass's ``object.__setattr__`` per field — which is visible
directly in generation and trace-replay throughput.  The public surface
(keyword construction, field access, equality, hashing, pickling,
validation on construction) is unchanged.
"""

from __future__ import annotations

from enum import Enum
from typing import NamedTuple

from repro.errors import WorkloadError


class AccessType(Enum):
    """Kind of memory reference."""

    READ = "R"
    WRITE = "W"
    INSTRUCTION = "I"

    @property
    def is_write(self) -> bool:
        """True for store references."""
        return self is AccessType.WRITE

    @property
    def is_instruction(self) -> bool:
        """True for instruction-fetch references."""
        return self is AccessType.INSTRUCTION

    @classmethod
    def from_code(cls, code: str) -> "AccessType":
        """Parse the single-character trace code (``R``/``W``/``I``)."""
        for member in cls:
            if member.value == code:
                return member
        raise WorkloadError(f"unknown access type code {code!r}")


class _AccessRecordFields(NamedTuple):
    core: int
    vaddr: int
    access_type: AccessType
    process_id: int = 0


class AccessRecord(_AccessRecordFields):
    """One memory reference in a trace.

    Attributes
    ----------
    core:
        The core (hardware thread) issuing the reference.
    vaddr:
        Virtual address referenced.
    access_type:
        Read, write or instruction fetch.
    process_id:
        Simulated process; distinct processes have distinct page tables
        (used by the multi-process experiments of Section III-B).
    """

    __slots__ = ()

    def __new__(
        cls,
        core: int,
        vaddr: int,
        access_type: AccessType,
        process_id: int = 0,
    ) -> "AccessRecord":
        if core < 0:
            raise WorkloadError(f"negative core id {core}")
        if vaddr < 0:
            raise WorkloadError(f"negative virtual address {vaddr:#x}")
        if process_id < 0:
            raise WorkloadError(f"negative process id {process_id}")
        return tuple.__new__(cls, (core, vaddr, access_type, process_id))

    @property
    def is_write(self) -> bool:
        """True for store references."""
        return self.access_type.is_write

    @property
    def is_instruction(self) -> bool:
        """True for instruction-fetch references."""
        return self.access_type.is_instruction

    def to_line(self) -> str:
        """Serialise to the one-line text trace format."""
        return (
            f"{self.process_id} {self.core} {self.access_type.value} {self.vaddr:#x}"
        )

    @classmethod
    def from_line(cls, line: str) -> "AccessRecord":
        """Parse a record from the one-line text trace format."""
        parts = line.split()
        if len(parts) != 4:
            raise WorkloadError(f"malformed trace line: {line!r}")
        process_id, core, code, vaddr = parts
        try:
            return cls(
                core=int(core),
                vaddr=int(vaddr, 0),
                access_type=AccessType.from_code(code),
                process_id=int(process_id),
            )
        except ValueError as exc:
            raise WorkloadError(f"malformed trace line: {line!r}") from exc
