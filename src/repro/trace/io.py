"""Trace file reader and writer, with transparent format sniffing.

Two on-disk formats exist:

* **v1 text** — one access per line, ``<process> <core> <R|W|I> <hex
  address>`` with ``#`` comment lines.  Deliberately simple so traces
  from other tools (or from the real SPLASH2/Parsec binaries run under a
  binary-instrumentation tool) can be converted with a one-line awk
  script.
* **v2 binary** (:mod:`repro.trace.binary`) — packed, varint
  delta-encoded records, 5-8x smaller and more than twice as fast to
  replay; the format the sweep engine records and replays.

:func:`read_trace` sniffs the file's leading bytes and dispatches, so
every consumer — the simulator, the CLI, the sweep executor — handles
both formats without caring which one it was given.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.errors import WorkloadError
from repro.trace.binary import (
    TRACE_V2_MAGIC,
    read_trace_v2,
    stored_record_count,
    write_trace_v2,
)
from repro.trace.record import AccessRecord

PathLike = Union[str, Path]

#: Format labels returned by :func:`sniff_format`.
FORMAT_TEXT = "text"
FORMAT_BINARY = "binary"


def sniff_format(path: PathLike) -> str:
    """Return ``"binary"`` or ``"text"`` for the trace file at *path*.

    A file is binary exactly when it starts with the v2 magic; anything
    else (including an empty file) is treated as v1 text, whose reader
    reports malformed content with line numbers.
    """
    source = Path(path)
    if not source.exists():
        raise WorkloadError(f"trace file {source} does not exist")
    try:
        with source.open("rb") as handle:
            prefix = handle.read(len(TRACE_V2_MAGIC))
    except OSError as exc:
        # E.g. a directory or an unreadable file.
        raise WorkloadError(f"trace file {source} cannot be read: {exc}") from exc
    return FORMAT_BINARY if prefix == TRACE_V2_MAGIC else FORMAT_TEXT


def write_trace(
    path: PathLike, records: Iterable[AccessRecord], format: str = FORMAT_TEXT
) -> int:
    """Write *records* to *path*; return the number of records written.

    *format* selects v1 ``"text"`` (the default, interoperable) or v2
    ``"binary"`` (compact, fast to replay).
    """
    if format == FORMAT_BINARY:
        return write_trace_v2(path, records)
    if format != FORMAT_TEXT:
        raise WorkloadError(
            f"unknown trace format {format!r}; expected "
            f"{FORMAT_TEXT!r} or {FORMAT_BINARY!r}"
        )
    count = 0
    target = Path(path)
    with target.open("w", encoding="utf-8") as handle:
        handle.write("# repro trace v1: <process> <core> <R|W|I> <address>\n")
        for record in records:
            handle.write(record.to_line())
            handle.write("\n")
            count += 1
    return count


def read_trace(path: PathLike) -> Iterator[AccessRecord]:
    """Yield the records stored in the trace file at *path* (either format)."""
    if sniff_format(path) == FORMAT_BINARY:
        return read_trace_v2(path)
    return _read_trace_text(path)


def _read_trace_text(path: PathLike) -> Iterator[AccessRecord]:
    """Yield the records of a v1 text trace."""
    source = Path(path)
    if not source.exists():
        raise WorkloadError(f"trace file {source} does not exist")
    with source.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                yield AccessRecord.from_line(stripped)
            except WorkloadError as exc:
                raise WorkloadError(
                    f"{source}:{line_number}: {exc}"
                ) from exc


def count_records(path: PathLike) -> int:
    """Return the number of access records in a trace file.

    Binary traces store their record count in the header, making this
    O(1); text traces (and binary traces whose writer never closed
    cleanly) fall back to a full scan.
    """
    if sniff_format(path) == FORMAT_BINARY:
        stored = stored_record_count(path)
        if stored >= 0:
            return stored
    return sum(1 for _ in read_trace(path))
