"""Trace file reader and writer, with transparent format sniffing.

Three on-disk formats exist:

* **v1 text** — one access per line, ``<process> <core> <R|W|I> <hex
  address>`` with ``#`` comment lines.  Deliberately simple so traces
  from other tools (or from the real SPLASH2/Parsec binaries run under a
  binary-instrumentation tool) can be converted with a one-line awk
  script.
* **v2 binary** (:mod:`repro.trace.binary`) — packed, varint
  delta-encoded records, 5-8x smaller and more than twice as fast to
  replay than text; the most compact format, but inherently sequential
  to decode.
* **v3 blocked** (:mod:`repro.trace.binary`) — fixed-width columnar
  blocks that decode into parallel arrays with no per-record work; the
  format the batched engine replays at trace-file bandwidth.  Larger on
  disk than v2, by design: it trades bytes for decode speed.

:func:`read_trace` sniffs the file's leading bytes and dispatches, so
every consumer — the simulator, the CLI, the sweep executor — handles
all formats without caring which one it was given.  :func:`read_trace_chunks`
is the columnar variant: it yields
:class:`~repro.system.batchcore.AccessChunk` blocks (natively for v3,
by packing for v1/v2) for the batched engine.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from repro.errors import WorkloadError
from repro.trace.binary import (
    TRACE_V2_MAGIC,
    TRACE_V3_MAGIC,
    read_trace_v2,
    read_trace_v3,
    read_trace_v3_chunks,
    stored_record_count,
    write_trace_v2,
    write_trace_v3,
)
from repro.trace.record import AccessRecord

PathLike = Union[str, Path]

#: Format labels returned by :func:`sniff_format`.
FORMAT_TEXT = "text"
FORMAT_BINARY = "binary"
FORMAT_BLOCKED = "blocked"

_MAGIC_LENGTH = max(len(TRACE_V2_MAGIC), len(TRACE_V3_MAGIC))


def sniff_format(path: PathLike) -> str:
    """Return ``"blocked"``, ``"binary"`` or ``"text"`` for *path*.

    A file is v3 blocked or v2 binary exactly when it starts with the
    corresponding magic; anything else (including an empty file) is
    treated as v1 text, whose reader reports malformed content with line
    numbers.
    """
    source = Path(path)
    if not source.exists():
        raise WorkloadError(f"trace file {source} does not exist")
    try:
        with source.open("rb") as handle:
            prefix = handle.read(_MAGIC_LENGTH)
    except OSError as exc:
        # E.g. a directory or an unreadable file.
        raise WorkloadError(f"trace file {source} cannot be read: {exc}") from exc
    if prefix.startswith(TRACE_V3_MAGIC):
        return FORMAT_BLOCKED
    if prefix.startswith(TRACE_V2_MAGIC):
        return FORMAT_BINARY
    return FORMAT_TEXT


def write_trace(
    path: PathLike,
    records: Iterable[AccessRecord],
    format: str = FORMAT_TEXT,
    epoch_records: Optional[int] = None,
) -> int:
    """Write *records* to *path*; return the number of records written.

    *format* selects v1 ``"text"`` (the default, interoperable), v2
    ``"binary"`` (compact) or v3 ``"blocked"`` (columnar, fastest to
    replay).  *epoch_records* (blocked only) adds the v3.1 seekable
    epoch index that sharded replay needs.
    """
    if epoch_records is not None and format != FORMAT_BLOCKED:
        raise WorkloadError(
            f"epoch_records requires the {FORMAT_BLOCKED!r} format; "
            f"the sequential formats cannot be seeked by epoch"
        )
    if format == FORMAT_BINARY:
        return write_trace_v2(path, records)
    if format == FORMAT_BLOCKED:
        return write_trace_v3(path, records, epoch_records=epoch_records)
    if format != FORMAT_TEXT:
        raise WorkloadError(
            f"unknown trace format {format!r}; expected {FORMAT_TEXT!r}, "
            f"{FORMAT_BINARY!r} or {FORMAT_BLOCKED!r}"
        )
    count = 0
    target = Path(path)
    with target.open("w", encoding="utf-8") as handle:
        handle.write("# repro trace v1: <process> <core> <R|W|I> <address>\n")
        for record in records:
            handle.write(record.to_line())
            handle.write("\n")
            count += 1
    return count


def read_trace(path: PathLike) -> Iterator[AccessRecord]:
    """Yield the records stored in the trace file at *path* (any format)."""
    fmt = sniff_format(path)
    if fmt == FORMAT_BLOCKED:
        return read_trace_v3(path)
    if fmt == FORMAT_BINARY:
        return read_trace_v2(path)
    return _read_trace_text(path)


def read_trace_chunks(path: PathLike, chunk_size: int = 8192):
    """Yield the trace at *path* as ``AccessChunk`` column blocks.

    v3 blocked traces stream their stored blocks directly (no per-record
    Python work; *chunk_size* is ignored — blocks keep their stored
    size); v1/v2 traces are decoded sequentially and packed into chunks
    of *chunk_size* records.
    """
    if sniff_format(path) == FORMAT_BLOCKED:
        return read_trace_v3_chunks(path)
    from repro.system.batchcore import chunk_records

    return chunk_records(read_trace(path), chunk_size)


def _read_trace_text(path: PathLike) -> Iterator[AccessRecord]:
    """Yield the records of a v1 text trace."""
    source = Path(path)
    if not source.exists():
        raise WorkloadError(f"trace file {source} does not exist")
    with source.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                yield AccessRecord.from_line(stripped)
            except WorkloadError as exc:
                raise WorkloadError(
                    f"{source}:{line_number}: {exc}"
                ) from exc


def count_records(path: PathLike) -> int:
    """Return the number of access records in a trace file.

    v2 and v3 traces store their record count in the header, making this
    O(1); text traces (and binary traces whose writer never closed
    cleanly) fall back to a full scan.
    """
    if sniff_format(path) in (FORMAT_BINARY, FORMAT_BLOCKED):
        stored = stored_record_count(path)
        if stored >= 0:
            return stored
    return sum(1 for _ in read_trace(path))
