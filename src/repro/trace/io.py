"""Trace file reader and writer.

Traces are stored as plain text, one access per line, in the format
``<process> <core> <R|W|I> <hex address>`` with ``#`` comment lines.  The
format is deliberately simple so that traces from other tools (or from the
real SPLASH2/Parsec binaries run under a binary-instrumentation tool) can
be converted with a one-line awk script and replayed through the same
simulator.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.errors import WorkloadError
from repro.trace.record import AccessRecord

PathLike = Union[str, Path]


def write_trace(path: PathLike, records: Iterable[AccessRecord]) -> int:
    """Write *records* to *path*; return the number of records written."""
    count = 0
    target = Path(path)
    with target.open("w", encoding="utf-8") as handle:
        handle.write("# repro trace v1: <process> <core> <R|W|I> <address>\n")
        for record in records:
            handle.write(record.to_line())
            handle.write("\n")
            count += 1
    return count


def read_trace(path: PathLike) -> Iterator[AccessRecord]:
    """Yield the records stored in the trace file at *path*."""
    source = Path(path)
    if not source.exists():
        raise WorkloadError(f"trace file {source} does not exist")
    with source.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                yield AccessRecord.from_line(stripped)
            except WorkloadError as exc:
                raise WorkloadError(
                    f"{source}:{line_number}: {exc}"
                ) from exc


def count_records(path: PathLike) -> int:
    """Return the number of access records in a trace file."""
    return sum(1 for _ in read_trace(path))
