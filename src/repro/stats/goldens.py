"""Golden-snapshot conformance corpus: frozen history the engines must match.

The differential suites (cross-engine, lock-step fuzzing) compare the two
*in-process* engines against each other, so a bug that lands in **both**
engines at once — a refactor that changes a counter's semantics, a
"harmless" reordering of float additions — sails straight through them.
This module closes that hole the way Monat et al.'s dual-implementation
semantics and DateSAT's exhaustive grids anchor their reproductions: a
small canonical grid of :class:`~repro.analysis.plan.RunSpec`\\ s is run
once, each resulting :class:`~repro.stats.snapshot.MachineSnapshot` is
reduced to a SHA-256 digest of its canonical JSON, and the digests are
committed to ``tests/golden/corpus.json``.  Every future engine, refactor
or optimisation then diffs against *frozen history*, not just against the
sibling implementation of the same session.

The corpus grid is chosen to cover the structural paths the packed engine
services in place: both policies over every microbenchmark family at the
paper's nominal probe-filter size **and** a starved filter (constant
probe-filter evictions with their invalidation fan-out, L2 eviction
notifications, cold translation fills), plus a two-process layout run.
Settings are pinned literally — never read from the environment — so a
``REPRO_BENCH_*`` override can never silently re-key the corpus.

Workflow::

    python -m repro golden record            # (re)write the corpus
    python -m repro golden check             # verify current code against it
    python -m repro golden check --engine reference

``check`` runs every spec with the requested engine (default: packed) and
reports any digest mismatch together with the headline counters recorded
beside each digest, so a divergence reads as a protocol diagnosis.  A
legitimate behaviour change (a new counter, a fixed bug) is expected to
fail ``check``: re-record with ``golden record`` and commit the new
corpus alongside the change, leaving the review trail in git history.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.plan import ExperimentSettings, RunSpec
from repro.errors import SimulationError
from repro.ioutil import atomic_write_json
from repro.stats.snapshot import MachineSnapshot
from repro.system.simulator import simulate
from repro.workloads.registry import MICROBENCH_FAMILIES

#: Version of the corpus file layout (not of the snapshots inside it —
#: those carry their own ``SNAPSHOT_SCHEMA_VERSION`` via the digest).
GOLDEN_SCHEMA_VERSION = 1

#: Where the committed corpus lives, relative to the repo root (the CLI
#: default; tests and tools may point elsewhere).
DEFAULT_CORPUS_PATH = "tests/golden/corpus.json"

#: Harness settings for every golden run — pinned literally so that
#: environment overrides (REPRO_BENCH_*) can never re-key the corpus.
GOLDEN_SETTINGS = ExperimentSettings(
    scale=16, accesses=4_000, multiprocess_accesses=2_000, seed=1
)

#: Nominal probe-filter sizes per family: the paper's default and a
#: starved filter that keeps the eviction fan-out path hot.
GOLDEN_PF_SIZES: Tuple[int, ...] = (512 * 1024, 32 * 1024)

#: Generated-scenario slice of the corpus: a pinned generator seed and
#: family count (multi-phase DSL streams whose fill/thrash regimes the
#: hand-written grid lacks).  Scenario names are self-describing, so the
#: grid rebuilds identically on every machine with no manifest file.
GOLDEN_SCENARIO_SEED = 11
GOLDEN_SCENARIO_COUNT = 4

#: The starved filter only: the scenario families' thrash phases are
#: what the second size exists for, so one size keeps the grid cheap.
GOLDEN_SCENARIO_PF_SIZE = 32 * 1024

#: Headline counters stored beside each digest as a mismatch diagnosis
#: aid (the digest alone says "different", these say roughly *where*).
HEADLINE_FIELDS: Tuple[str, ...] = (
    "execution_time_ns",
    "l2_misses",
    "pf_evictions",
    "pf_allocations",
    "eviction_messages",
    "invalidations_sent",
    "network_bytes",
    "dram_writes",
)


def golden_specs() -> Tuple[RunSpec, ...]:
    """The canonical corpus grid, rebuilt identically on every machine."""
    specs: List[RunSpec] = []
    for family in MICROBENCH_FAMILIES:
        for policy in ("baseline", "allarm"):
            for pf_size in GOLDEN_PF_SIZES:
                specs.append(
                    RunSpec(
                        family,
                        policy,
                        pf_size=pf_size,
                        settings=GOLDEN_SETTINGS,
                    )
                )
    for policy in ("baseline", "allarm"):
        specs.append(
            RunSpec(
                "barnes",
                policy,
                pf_size=32 * 1024,
                layout="2p",
                settings=GOLDEN_SETTINGS,
            )
        )
    from repro.workloads.generator import sample_scenarios

    scenario_names = sample_scenarios(
        GOLDEN_SCENARIO_SEED, GOLDEN_SCENARIO_COUNT
    ).names
    for family in scenario_names:
        for policy in ("baseline", "allarm"):
            specs.append(
                RunSpec(
                    family,
                    policy,
                    pf_size=GOLDEN_SCENARIO_PF_SIZE,
                    settings=GOLDEN_SETTINGS,
                )
            )
    return tuple(specs)


def spec_key(spec: RunSpec) -> str:
    """Engine-independent identity of a golden run.

    Both engines must reproduce the same snapshot, so the corpus is
    keyed by everything *except* the engine (and the trace source, which
    is an execution strategy, not an identity).
    """
    identity = {
        name: value
        for name, value in spec.describe().items()
        if name not in ("engine", "trace_source")
    }
    return json.dumps(identity, sort_keys=True)


def snapshot_digest(snapshot: MachineSnapshot) -> str:
    """SHA-256 over the snapshot's canonical (sorted-keys) JSON form."""
    return hashlib.sha256(snapshot.to_json().encode("utf-8")).hexdigest()


def run_golden_spec(spec: RunSpec, engine: Optional[str] = None) -> MachineSnapshot:
    """Execute one golden run and return its snapshot."""
    result = simulate(
        spec.config(),
        spec.access_stream(),
        workload_name=spec.workload_name,
        engine=engine or spec.engine,
    )
    return result.snapshot


def _headline(snapshot: MachineSnapshot) -> Dict[str, object]:
    return {name: getattr(snapshot, name) for name in HEADLINE_FIELDS}


def record_corpus(
    path: Union[str, Path],
    engine: Optional[str] = None,
    specs: Optional[Sequence[RunSpec]] = None,
) -> Dict[str, object]:
    """Run the golden grid and (atomically) write the corpus to *path*.

    Returns the corpus document that was written.  *specs* exists for
    tests that need a reduced grid; the committed corpus always uses
    :func:`golden_specs`.
    """
    entries: Dict[str, Dict[str, object]] = {}
    for spec in specs if specs is not None else golden_specs():
        snapshot = run_golden_spec(spec, engine)
        entries[spec_key(spec)] = {
            "digest": snapshot_digest(snapshot),
            "headline": _headline(snapshot),
        }
    corpus: Dict[str, object] = {
        "schema": GOLDEN_SCHEMA_VERSION,
        "entries": entries,
    }
    atomic_write_json(path, corpus)
    return corpus


def load_corpus(path: Union[str, Path]) -> Dict[str, object]:
    """Load and validate a corpus file."""
    path = Path(path)
    if not path.exists():
        raise SimulationError(
            f"golden corpus {path} does not exist; run 'python -m repro "
            f"golden record' to create it"
        )
    try:
        corpus = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise SimulationError(f"golden corpus {path} is unreadable: {exc}") from exc
    if not isinstance(corpus, dict) or corpus.get("schema") != GOLDEN_SCHEMA_VERSION:
        raise SimulationError(
            f"golden corpus {path} has schema {corpus.get('schema')!r}; "
            f"expected {GOLDEN_SCHEMA_VERSION} (re-record it)"
        )
    entries = corpus.get("entries")
    if not isinstance(entries, dict):
        raise SimulationError(f"golden corpus {path} has no entries mapping")
    return corpus


def check_corpus(
    path: Union[str, Path],
    engine: Optional[str] = None,
    specs: Optional[Sequence[RunSpec]] = None,
) -> List[str]:
    """Re-run the golden grid and diff digests against the stored corpus.

    Returns a list of problem descriptions (empty = conformant): digest
    mismatches (with the headline counters that differ), specs missing
    from the corpus, and stale corpus entries no current spec produces.
    """
    corpus = load_corpus(path)
    entries: Dict[str, Dict[str, object]] = corpus["entries"]  # type: ignore[assignment]
    problems: List[str] = []
    current = specs if specs is not None else golden_specs()
    seen = set()
    for spec in current:
        key = spec_key(spec)
        seen.add(key)
        stored = entries.get(key)
        label = f"{spec.workload_name}/{spec.policy}/pf{spec.pf_size // 1024}k"
        if stored is None:
            problems.append(f"{label}: no recorded golden entry (re-record)")
            continue
        snapshot = run_golden_spec(spec, engine)
        digest = snapshot_digest(snapshot)
        if digest == stored.get("digest"):
            continue
        detail = [f"{label}: digest {digest[:12]}… != recorded "
                  f"{str(stored.get('digest'))[:12]}…"]
        recorded_headline = stored.get("headline") or {}
        for name, value in _headline(snapshot).items():
            recorded = recorded_headline.get(name)
            if recorded != value:
                detail.append(f"    {name}: {value!r} != recorded {recorded!r}")
        problems.append("\n".join(detail))
    for key in entries:
        if key not in seen:
            problems.append(f"stale corpus entry with no current spec: {key}")
    return problems
