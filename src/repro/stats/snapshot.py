"""Machine-wide statistics snapshots.

After a simulation run, :func:`collect` walks the machine and gathers the
exact quantities the paper's figures are built from: execution time,
probe-filter evictions and allocations, network traffic, L2 misses,
local/remote request mix, messages per probe-filter eviction, the ALLARM
latency-hiding fraction, and the event counts the energy models consume.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List

from repro.errors import SimulationError

#: Version of the serialized snapshot layout.  Bump when fields change so
#: that stale on-disk cache entries are rejected instead of misparsed.
SNAPSHOT_SCHEMA_VERSION = 1


@dataclass
class NodeSnapshot:
    """Per-node statistics extracted after a run."""

    node_id: int
    core_time_ns: float
    memory_accesses: int
    l1d_misses: int
    l2_misses: int
    l2_accesses: int
    pf_evictions: int
    pf_allocations: int
    pf_occupancy: int
    pf_reads: int
    pf_writes: int
    local_requests: int
    remote_requests: int
    local_probes_sent: int
    local_probes_hidden: int
    eviction_messages: int
    invalidations_sent: int
    dram_reads: int
    dram_writes: int

    def to_dict(self) -> Dict[str, object]:
        """Serialise to a plain dictionary (JSON-safe)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "NodeSnapshot":
        """Rebuild a node snapshot from :meth:`to_dict` output."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SimulationError(
                f"unknown node-snapshot fields {sorted(unknown)}"
            )
        return cls(**data)


@dataclass
class MachineSnapshot:
    """Aggregate statistics for one simulation run."""

    policy: str
    execution_time_ns: float
    total_accesses: int
    l2_misses: int
    l2_accesses: int
    pf_evictions: int
    pf_allocations: int
    pf_reads: int
    pf_writes: int
    network_bytes: int
    network_flit_hops: int
    network_messages: int
    local_requests: int
    remote_requests: int
    local_probes_sent: int
    local_probes_hidden: int
    eviction_messages: int
    invalidations_sent: int
    dram_reads: int
    dram_writes: int
    nodes: List[NodeSnapshot] = field(default_factory=list)
    messages_by_type: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def directory_requests(self) -> int:
        """Total requests seen by all directories."""
        return self.local_requests + self.remote_requests

    @property
    def local_fraction(self) -> float:
        """Fraction of directory requests from the local core (Figure 2)."""
        if self.directory_requests == 0:
            return 0.0
        return self.local_requests / self.directory_requests

    @property
    def remote_fraction(self) -> float:
        """Fraction of directory requests from remote cores (Figure 2)."""
        if self.directory_requests == 0:
            return 0.0
        return self.remote_requests / self.directory_requests

    @property
    def messages_per_eviction(self) -> float:
        """Average coherence messages caused by one PF eviction (Figure 3d)."""
        if self.pf_evictions == 0:
            return 0.0
        return self.eviction_messages / self.pf_evictions

    @property
    def probe_hidden_fraction(self) -> float:
        """Fraction of ALLARM local probes off the critical path (Figure 3g)."""
        if self.local_probes_sent == 0:
            return 0.0
        return self.local_probes_hidden / self.local_probes_sent

    @property
    def l2_miss_rate(self) -> float:
        """Machine-wide L2 miss rate."""
        if self.l2_accesses == 0:
            return 0.0
        return self.l2_misses / self.l2_accesses

    def as_dict(self) -> Dict[str, float]:
        """Flatten the headline metrics into a plain dictionary."""
        return {
            "policy": self.policy,
            "execution_time_ns": self.execution_time_ns,
            "total_accesses": self.total_accesses,
            "l2_misses": self.l2_misses,
            "pf_evictions": self.pf_evictions,
            "pf_allocations": self.pf_allocations,
            "network_bytes": self.network_bytes,
            "network_flit_hops": self.network_flit_hops,
            "local_fraction": self.local_fraction,
            "remote_fraction": self.remote_fraction,
            "messages_per_eviction": self.messages_per_eviction,
            "probe_hidden_fraction": self.probe_hidden_fraction,
            "dram_reads": self.dram_reads,
            "dram_writes": self.dram_writes,
        }

    # ------------------------------------------------------------------
    # Serialisation (used by the on-disk snapshot cache)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Serialise the full snapshot — every field — to a plain dict.

        Unlike :meth:`as_dict` (headline metrics for reports), this is a
        lossless representation: ``from_dict(to_dict(s))`` compares equal
        to ``s`` field for field, including per-node statistics.
        """
        data: Dict[str, object] = {
            "schema_version": SNAPSHOT_SCHEMA_VERSION,
        }
        for f in fields(self):
            if f.name == "nodes":
                continue
            data[f.name] = getattr(self, f.name)
        data["messages_by_type"] = dict(self.messages_by_type)
        data["nodes"] = [node.to_dict() for node in self.nodes]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MachineSnapshot":
        """Rebuild a snapshot from :meth:`to_dict` output."""
        data = dict(data)
        version = data.pop("schema_version", None)
        if version != SNAPSHOT_SCHEMA_VERSION:
            raise SimulationError(
                f"snapshot schema {version!r} does not match "
                f"{SNAPSHOT_SCHEMA_VERSION}"
            )
        nodes = [NodeSnapshot.from_dict(n) for n in data.pop("nodes", [])]
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SimulationError(f"unknown snapshot fields {sorted(unknown)}")
        return cls(nodes=nodes, **data)

    def to_json(self, indent: int | None = None) -> str:
        """Serialise to a JSON string (lossless round trip)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "MachineSnapshot":
        """Rebuild a snapshot from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


def collect(machine, policy_name: str = "") -> MachineSnapshot:
    """Build a :class:`MachineSnapshot` from a finished machine.

    Parameters
    ----------
    machine:
        A :class:`repro.system.machine.Machine` after simulation.
    policy_name:
        Label recorded in the snapshot; defaults to the machine's
        configured directory policy.
    """
    nodes: List[NodeSnapshot] = []
    for node in machine.nodes:
        directory = node.directory.stats
        nodes.append(
            NodeSnapshot(
                node_id=node.node_id,
                core_time_ns=node.clock.now_ns,
                memory_accesses=node.clock.memory_accesses,
                l1d_misses=node.caches.l1d.stats.misses,
                l2_misses=node.caches.l2.stats.misses,
                l2_accesses=node.caches.l2.stats.accesses,
                pf_evictions=node.probe_filter.stats.evictions,
                pf_allocations=node.probe_filter.stats.allocations,
                pf_occupancy=node.probe_filter.occupancy(),
                pf_reads=node.probe_filter.stats.reads,
                pf_writes=node.probe_filter.stats.writes,
                local_requests=directory.local_requests,
                remote_requests=directory.remote_requests,
                local_probes_sent=directory.local_probes_sent,
                local_probes_hidden=directory.local_probes_hidden,
                eviction_messages=directory.eviction_messages,
                invalidations_sent=directory.invalidations_sent,
                dram_reads=node.dram.stats.reads,
                dram_writes=node.dram.stats.writes,
            )
        )

    network = machine.network.stats
    return MachineSnapshot(
        policy=policy_name or machine.config.directory_policy,
        execution_time_ns=machine.execution_time_ns(),
        total_accesses=sum(n.memory_accesses for n in nodes),
        l2_misses=sum(n.l2_misses for n in nodes),
        l2_accesses=sum(n.l2_accesses for n in nodes),
        pf_evictions=sum(n.pf_evictions for n in nodes),
        pf_allocations=sum(n.pf_allocations for n in nodes),
        pf_reads=sum(n.pf_reads for n in nodes),
        pf_writes=sum(n.pf_writes for n in nodes),
        network_bytes=network.bytes_injected,
        network_flit_hops=network.flit_hops,
        network_messages=network.messages_sent,
        local_requests=sum(n.local_requests for n in nodes),
        remote_requests=sum(n.remote_requests for n in nodes),
        local_probes_sent=sum(n.local_probes_sent for n in nodes),
        local_probes_hidden=sum(n.local_probes_hidden for n in nodes),
        eviction_messages=sum(n.eviction_messages for n in nodes),
        invalidations_sent=sum(n.invalidations_sent for n in nodes),
        dram_reads=sum(n.dram_reads for n in nodes),
        dram_writes=sum(n.dram_writes for n in nodes),
        nodes=nodes,
        messages_by_type=dict(network.messages_by_type),
    )
