"""Normalised comparisons between runs (ALLARM vs. baseline).

Every figure in the paper's evaluation is a ratio against the baseline
configuration: speedup, normalised evictions, normalised traffic,
normalised L2 misses, normalised dynamic energy.  :class:`RunComparison`
computes these ratios from two :class:`~repro.stats.snapshot.MachineSnapshot`
objects, together with geometric-mean helpers for the "geomean" bars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.errors import SimulationError
from repro.stats.snapshot import MachineSnapshot


def safe_ratio(numerator: float, denominator: float, default: float = 1.0) -> float:
    """Return ``numerator / denominator`` guarding against a zero denominator."""
    if denominator == 0:
        return default
    return numerator / denominator


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0.0 for an empty sequence)."""
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    return math.exp(sum(math.log(v) for v in positives) / len(positives))


@dataclass
class RunComparison:
    """Ratios of an experimental run against its baseline run."""

    baseline: MachineSnapshot
    experiment: MachineSnapshot

    # ------------------------------------------------------------------
    @property
    def speedup(self) -> float:
        """Execution-time speedup of the experiment over the baseline (Fig. 3a)."""
        return safe_ratio(
            self.baseline.execution_time_ns, self.experiment.execution_time_ns
        )

    @property
    def normalized_evictions(self) -> float:
        """Probe-filter evictions normalised to the baseline (Fig. 3b)."""
        return safe_ratio(
            self.experiment.pf_evictions, self.baseline.pf_evictions, default=0.0
        )

    @property
    def normalized_traffic(self) -> float:
        """Network bytes normalised to the baseline (Fig. 3c)."""
        return safe_ratio(
            self.experiment.network_bytes, self.baseline.network_bytes, default=0.0
        )

    @property
    def normalized_l2_misses(self) -> float:
        """L2 misses normalised to the baseline (Fig. 3e)."""
        return safe_ratio(
            self.experiment.l2_misses, self.baseline.l2_misses, default=0.0
        )

    @property
    def eviction_reduction(self) -> float:
        """Fractional reduction in probe-filter evictions (paper: 46%)."""
        return 1.0 - self.normalized_evictions

    @property
    def traffic_reduction(self) -> float:
        """Fractional reduction in network traffic (paper: 12%)."""
        return 1.0 - self.normalized_traffic

    def as_dict(self) -> Dict[str, float]:
        """Return the headline ratios as a plain dictionary."""
        return {
            "speedup": self.speedup,
            "normalized_evictions": self.normalized_evictions,
            "normalized_traffic": self.normalized_traffic,
            "normalized_l2_misses": self.normalized_l2_misses,
            "eviction_reduction": self.eviction_reduction,
            "traffic_reduction": self.traffic_reduction,
        }


def snapshot_diff(
    expected: MachineSnapshot, actual: MachineSnapshot
) -> List[str]:
    """Field-by-field differences between two snapshots.

    The cross-engine verification differ: an empty list means the
    snapshots are bit-identical (every scalar, every per-node counter,
    every message-type count — the same equality
    ``to_json``/``from_json`` round-trips preserve).  Each returned
    string names one differing field with both values, so an engine
    divergence reads as a protocol diagnosis rather than a bare
    ``assert a == b`` failure.
    """
    diffs: List[str] = []
    expected_dict = expected.to_dict()
    actual_dict = actual.to_dict()
    for key in sorted(set(expected_dict) | set(actual_dict)):
        if key == "nodes":
            continue
        left, right = expected_dict.get(key), actual_dict.get(key)
        if left != right:
            diffs.append(f"{key}: {left!r} != {right!r}")

    left_nodes = expected_dict.get("nodes", [])
    right_nodes = actual_dict.get("nodes", [])
    if len(left_nodes) != len(right_nodes):
        diffs.append(f"nodes: {len(left_nodes)} entries != {len(right_nodes)}")
        return diffs
    for index, (left, right) in enumerate(zip(left_nodes, right_nodes)):
        for key in sorted(set(left) | set(right)):
            if left.get(key) != right.get(key):
                diffs.append(
                    f"nodes[{index}].{key}: {left.get(key)!r} != {right.get(key)!r}"
                )
    return diffs


def assert_snapshots_identical(
    expected: MachineSnapshot, actual: MachineSnapshot, context: str = ""
) -> None:
    """Raise :class:`~repro.errors.SimulationError` unless bit-identical.

    Used by the cross-engine equivalence suite and available to any
    harness that runs the same spec on both engines.
    """
    diffs = snapshot_diff(expected, actual)
    if diffs:
        prefix = f"{context}: " if context else ""
        raise SimulationError(
            f"{prefix}snapshots differ in {len(diffs)} field(s):\n  "
            + "\n  ".join(diffs)
        )


def summarize_speedups(comparisons: Iterable[RunComparison]) -> float:
    """Geometric-mean speedup across benchmarks (the paper's geomean bar)."""
    return geometric_mean([c.speedup for c in comparisons])


def summarize_ratio(values: Iterable[float]) -> float:
    """Geometric mean of a series of normalised ratios."""
    return geometric_mean(list(values))
