"""Statistics: per-run snapshots and baseline-normalised comparisons."""

from repro.stats.compare import (
    RunComparison,
    geometric_mean,
    safe_ratio,
    summarize_ratio,
    summarize_speedups,
)
from repro.stats.snapshot import MachineSnapshot, NodeSnapshot, collect

__all__ = [
    "MachineSnapshot",
    "NodeSnapshot",
    "collect",
    "RunComparison",
    "geometric_mean",
    "safe_ratio",
    "summarize_speedups",
    "summarize_ratio",
]
