"""Blocking client + load generator for the sweep service.

:class:`ServeClient` is the thin request layer (stdlib ``http.client``,
one keep-alive connection per client, transparent chunked decoding) the
tests, the CLI and the load generator all drive.

:func:`run_load` is the service-style benchmark runner (modeled on the
memcached/nginx workload-runner layout): it fans *requests* total
requests over *concurrency* threads, round-robin across a spec set
deliberately smaller than the request count — so the run exercises
exactly the coalescing/warm paths a multi-tenant deployment lives on —
and reports throughput, latency percentiles and the server's counter
deltas as a :class:`LoadReport`, ready to append to the
``bench:"serve"`` trajectory.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.analysis.plan import RunSpec
from repro.errors import ServeError
from repro.serve.protocol import WIRE_SCHEMA_VERSION, spec_to_wire


@dataclass
class RunResponse:
    """One ``POST /run`` result."""

    digest: str
    source: str
    duration_s: float
    snapshot: Dict[str, object]

    def snapshot_digest(self) -> str:
        """SHA-256 over the canonical snapshot JSON (bit-identity probe)."""
        canonical = json.dumps(
            self.snapshot, sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ServeClient:
    """Blocking HTTP client for one sweep server."""

    def __init__(self, host: str, port: int, timeout_s: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _request(self, method: str, path: str, body: Optional[dict] = None):
        conn = self._connection()
        payload = (
            json.dumps(body, separators=(",", ":")).encode("utf-8")
            if body is not None else None
        )
        headers = {"Content-Type": "application/json"} if payload else {}
        try:
            conn.request(method, path, body=payload, headers=headers)
            return conn.getresponse()
        except (ConnectionError, http.client.HTTPException, OSError):
            # One reconnect: the server may have dropped an idle
            # keep-alive connection between requests.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=payload, headers=headers)
            return conn.getresponse()

    def _json(self, method: str, path: str, body: Optional[dict] = None,
              expect: Sequence[int] = (200,)) -> Dict[str, object]:
        response = self._request(method, path, body)
        data = response.read()
        try:
            decoded = json.loads(data.decode("utf-8"))
        except ValueError:
            raise ServeError(
                f"{method} {path} returned non-JSON (HTTP {response.status})",
                status=response.status,
            ) from None
        if response.status not in expect:
            raise ServeError(
                f"{method} {path} failed (HTTP {response.status}): "
                f"{decoded.get('error', decoded)}",
                status=response.status,
            )
        return decoded

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        return self._json("GET", "/health")

    def stats(self) -> Dict[str, object]:
        return self._json("GET", "/stats")

    def run(self, spec: RunSpec) -> RunResponse:
        """Execute (or cache-serve, or coalesce) one spec remotely."""
        payload = self._json("POST", "/run", {
            "wire_schema": WIRE_SCHEMA_VERSION, "spec": spec_to_wire(spec),
        })
        return RunResponse(
            digest=payload["digest"],
            source=payload["source"],
            duration_s=payload["duration_s"],
            snapshot=payload["snapshot"],
        )

    def sweep(self, specs: Sequence[RunSpec]) -> List[Dict[str, object]]:
        """Run a batch; return the full ordered event list."""
        return list(self.stream(
            "/sweep",
            {
                "wire_schema": WIRE_SCHEMA_VERSION,
                "specs": [spec_to_wire(spec) for spec in specs],
            },
        ))

    def stream(self, path: str, body: dict) -> Iterator[Dict[str, object]]:
        """POST *body* and yield the NDJSON events of a chunked response."""
        response = self._request("POST", path, body)
        if response.status != 200:
            data = response.read()
            try:
                decoded = json.loads(data.decode("utf-8"))
                message = decoded.get("error", decoded)
            except ValueError:
                message = data[:200]
            raise ServeError(
                f"POST {path} failed (HTTP {response.status}): {message}",
                status=response.status,
            )
        while True:
            line = response.readline()
            if not line:
                break
            text = line.decode("utf-8").strip()
            if not text:
                continue
            event = json.loads(text)
            if not isinstance(event, dict) or "event" not in event:
                raise ServeError(f"malformed event line: {text!r}")
            yield event

    def run_streaming(self, spec: RunSpec) -> List[Dict[str, object]]:
        """Streaming single run: the ordered progress-event list."""
        return list(self.stream("/run", {
            "wire_schema": WIRE_SCHEMA_VERSION,
            "spec": spec_to_wire(spec),
            "stream": True,
        }))


# ----------------------------------------------------------------------
# Load generation
# ----------------------------------------------------------------------
@dataclass
class LoadReport:
    """What one load run measured (feeds the ``bench:"serve"`` entry)."""

    requests: int
    concurrency: int
    distinct_specs: int
    ok: int = 0
    errors: int = 0
    elapsed_s: float = 0.0
    latencies_ms: List[float] = field(default_factory=list)
    #: spec digest -> set of snapshot digests observed in responses.
    #: Coalescing and caching are only correct if every set has size 1.
    snapshot_digests: Dict[str, set] = field(default_factory=dict)
    #: Server counter deltas across the run (from ``GET /stats``).
    executed: int = 0
    coalesced: int = 0
    warm_hits: int = 0

    @property
    def throughput_rps(self) -> float:
        return self.ok / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def percentile_ms(self, fraction: float) -> float:
        """Nearest-rank latency percentile in milliseconds."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
        return ordered[rank]

    @property
    def p50_ms(self) -> float:
        return self.percentile_ms(0.50)

    @property
    def p99_ms(self) -> float:
        return self.percentile_ms(0.99)

    def bit_identical(self) -> bool:
        """True when every spec produced exactly one snapshot digest."""
        return all(len(digests) == 1 for digests in self.snapshot_digests.values())


def run_load(
    host: str,
    port: int,
    specs: Sequence[RunSpec],
    requests: int,
    concurrency: int,
    timeout_s: float = 300.0,
) -> LoadReport:
    """Drive *requests* round-robin requests over *concurrency* threads.

    Each worker thread owns one keep-alive connection (the memcached/
    nginx-runner shape: N persistent clients hammering one service).
    Per-request wall-clock is measured client-side; the server's
    executed/coalesced/warm counters are sampled before and after so
    the report carries the *service's* account of what the burst cost.
    """
    if not specs:
        raise ServeError("run_load needs at least one spec")
    report = LoadReport(
        requests=requests,
        concurrency=max(1, concurrency),
        distinct_specs=len({spec.digest() for spec in specs}),
    )
    with ServeClient(host, port, timeout_s) as probe:
        before = probe.stats()

    lock = threading.Lock()
    queue = list(range(requests))

    def worker() -> None:
        with ServeClient(host, port, timeout_s) as client:
            while True:
                with lock:
                    if not queue:
                        return
                    index = queue.pop()
                spec = specs[index % len(specs)]
                started = time.perf_counter()
                try:
                    response = client.run(spec)
                except ServeError:
                    with lock:
                        report.errors += 1
                    continue
                latency_ms = (time.perf_counter() - started) * 1e3
                with lock:
                    report.ok += 1
                    report.latencies_ms.append(latency_ms)
                    report.snapshot_digests.setdefault(
                        response.digest, set()
                    ).add(response.snapshot_digest())

    threads = [
        threading.Thread(target=worker, name=f"repro-load-{i}", daemon=True)
        for i in range(report.concurrency)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.elapsed_s = time.perf_counter() - started

    with ServeClient(host, port, timeout_s) as probe:
        after = probe.stats()
    report.executed = int(after["executed"]) - int(before["executed"])
    report.coalesced = int(after["coalesced"]) - int(before["coalesced"])
    report.warm_hits = (
        int(after["warm_memory"]) + int(after["warm_disk"])
        - int(before["warm_memory"]) - int(before["warm_disk"])
    )
    return report
