"""In-flight request coalescing: N identical requests, one execution.

The "millions of users asking for the same figure" case: when a spec is
already executing, a second request for the equal spec must not start a
second simulation — it awaits the same result.  The
:class:`RunCoalescer` keys in-flight work by the :class:`RunSpec`
itself (frozen, hashable, content-equal), publishes each execution
through an ``asyncio.Future``, and drives the work in a detached task
so the execution outlives any one requester: a client that disconnects
mid-run neither cancels nor orphans the simulation, and every other
waiter still gets the snapshot.

All bookkeeping runs on the event loop thread, so no locks are needed;
the blocking executor work itself is delegated by the caller (the
server hands in a ``run_in_executor`` thunk).
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, Set, Tuple

from repro.analysis.plan import RunSpec


class RunCoalescer:
    """Deduplicates concurrent executions of equal specs.

    ``started`` counts executions actually launched; ``coalesced``
    counts requests that piggybacked on one already in flight.  A cold
    burst of K identical requests therefore ends with ``started == 1``
    and ``coalesced == K - 1`` — the invariant the serve benchmarks and
    CI smoke assert.
    """

    def __init__(self) -> None:
        self._inflight: Dict[RunSpec, asyncio.Future] = {}
        self._tasks: Set[asyncio.Task] = set()
        self.started = 0
        self.coalesced = 0

    @property
    def in_flight(self) -> int:
        """Number of distinct specs currently executing."""
        return len(self._inflight)

    def is_inflight(self, spec: RunSpec) -> bool:
        """True when *spec* is currently executing (a join would coalesce)."""
        return spec in self._inflight

    def submit(
        self,
        spec: RunSpec,
        runner: Callable[[], Awaitable[object]],
    ) -> Tuple["asyncio.Future[object]", bool]:
        """Join or start the execution of *spec*.

        Returns ``(future, started)``: the shared future resolving to
        the run's snapshot, and whether this call launched the
        execution (``False`` = coalesced onto an existing one).  Await
        the future through :meth:`wait` (which shields it) so one
        cancelled requester cannot cancel the shared work.
        """
        future = self._inflight.get(spec)
        if future is not None:
            self.coalesced += 1
            return future, False
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._inflight[spec] = future
        self.started += 1
        task = loop.create_task(self._drive(spec, runner, future))
        # The loop keeps only weak references to tasks; anchor it until
        # done or the execution could be garbage-collected mid-run.
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return future, True

    async def wait(self, future: "asyncio.Future[object]") -> object:
        """Await a shared future without exposing it to cancellation."""
        return await asyncio.shield(future)

    async def _drive(self, spec, runner, future) -> None:
        """Run one execution and publish its outcome to every waiter."""
        try:
            result = await runner()
        except BaseException as exc:  # noqa: BLE001 — published, not dropped
            self._inflight.pop(spec, None)
            if not future.done():
                future.set_exception(exc)
            # With zero waiters left (every requester vanished) the
            # exception would otherwise trip the "exception was never
            # retrieved" warning at GC time; touch it to mark it seen.
            await asyncio.sleep(0)
            if future.done() and not future.cancelled():
                future.exception()
        else:
            self._inflight.pop(spec, None)
            if not future.done():
                future.set_result(result)
