"""Sweep-as-a-service: a coalescing cache-front server for run specs.

``python -m repro serve`` starts a :class:`SweepServer` in front of a
:class:`~repro.analysis.executor.SweepExecutor`: requests name runs as
wire-serialized specs, warm results come straight from the memory/disk
snapshot tiers, identical in-flight requests coalesce into a single
execution, and multiple server processes shard cold work over one
shared cache directory.  ``python -m repro serve-bench`` is the
matching load generator.  See ``docs/serving.md``.
"""

from repro.serve.client import LoadReport, RunResponse, ServeClient, run_load
from repro.serve.coalescer import RunCoalescer
from repro.serve.protocol import (
    WIRE_SCHEMA_VERSION,
    decode_events,
    encode_event,
    shard_of,
    spec_from_wire,
    spec_to_wire,
    specs_from_wire,
)
from repro.serve.server import (
    STATUS_WRONG_SHARD,
    BackgroundServer,
    ServeStats,
    SweepServer,
)

__all__ = [
    "BackgroundServer",
    "LoadReport",
    "RunCoalescer",
    "RunResponse",
    "STATUS_WRONG_SHARD",
    "ServeClient",
    "ServeStats",
    "SweepServer",
    "WIRE_SCHEMA_VERSION",
    "decode_events",
    "encode_event",
    "run_load",
    "shard_of",
    "spec_from_wire",
    "spec_to_wire",
    "specs_from_wire",
]
