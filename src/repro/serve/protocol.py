"""Wire protocol of the sweep service: specs, events, shard routing.

The service speaks HTTP/1.1 with JSON bodies.  A request names one or
more runs as *wire specs* — plain-dict serializations of
:class:`~repro.analysis.plan.RunSpec` — and a response is either a
single JSON document or, in streaming mode, a chunked sequence of
newline-delimited JSON *events* (one ``{"event": ...}`` object per
line), so a client watches per-run progress without polling.

Wire specs deliberately exclude ``trace_source``: a remote client must
not be able to point the server at arbitrary files on its filesystem.
Servers that replay traces configure a ``trace_dir`` on their own
executor instead.

Shard routing is part of the protocol: :func:`shard_of` maps a spec's
content digest onto ``shard_count`` buckets, so any client (or fronting
proxy) computes the owning server process without asking it.  The
digest covers the spec identity only — not the code fingerprint — so a
routing table survives server redeploys.
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Dict, Iterable, List

from repro.analysis.plan import ExperimentSettings, RunSpec
from repro.errors import ConfigurationError, ServeError

#: Bump when the wire shapes change incompatibly; servers reject
#: requests declaring a different version.
WIRE_SCHEMA_VERSION = 1

#: Fields a wire spec may carry (``benchmark`` and ``policy`` required).
_SPEC_FIELDS = frozenset(
    ("benchmark", "policy", "pf_size", "layout", "frames_per_node",
     "engine", "settings")
)

#: Fields of the nested ``settings`` object (all optional).
_SETTINGS_FIELDS = frozenset(
    ("scale", "accesses", "multiprocess_accesses", "seed")
)


def spec_to_wire(spec: RunSpec) -> Dict[str, object]:
    """Serialize *spec* for transport (drops any ``trace_source``)."""
    return {
        "benchmark": spec.benchmark,
        "policy": spec.policy,
        "pf_size": spec.pf_size,
        "layout": spec.layout,
        "frames_per_node": spec.frames_per_node,
        "engine": spec.engine,
        "settings": {
            "scale": spec.settings.scale,
            "accesses": spec.settings.accesses,
            "multiprocess_accesses": spec.settings.multiprocess_accesses,
            "seed": spec.settings.seed,
        },
    }


def spec_from_wire(data: object) -> RunSpec:
    """Rebuild a :class:`RunSpec` from its wire form, strictly validated.

    Unknown fields are rejected rather than ignored — a client sending
    ``"pf_sise"`` must learn about its typo from a 400, not from a
    sweep of default-sized filters.  ``trace_source`` is rejected
    explicitly (see the module docstring).  Spec-level validation
    (unknown benchmark/policy/layout) is delegated to ``RunSpec`` and
    re-raised as :class:`ServeError` so the server maps it to a 400.
    """
    if not isinstance(data, dict):
        raise ServeError(f"wire spec must be a JSON object, got {type(data).__name__}")
    if "trace_source" in data:
        raise ServeError("wire specs may not name a trace_source")
    unknown = set(data) - _SPEC_FIELDS
    if unknown:
        raise ServeError(f"wire spec has unknown fields: {sorted(unknown)}")
    for field in ("benchmark", "policy"):
        if not isinstance(data.get(field), str):
            raise ServeError(f"wire spec needs a string {field!r}")
    settings_data = data.get("settings", {})
    if not isinstance(settings_data, dict):
        raise ServeError("wire spec 'settings' must be a JSON object")
    unknown = set(settings_data) - _SETTINGS_FIELDS
    if unknown:
        raise ServeError(f"wire settings has unknown fields: {sorted(unknown)}")
    try:
        settings = ExperimentSettings()
        if settings_data:
            settings = replace(
                settings, **{k: int(v) for k, v in settings_data.items()}
            )
        kwargs = {
            "benchmark": data["benchmark"],
            "policy": data["policy"],
            "settings": settings,
        }
        if data.get("pf_size") is not None:
            kwargs["pf_size"] = int(data["pf_size"])
        if data.get("layout") is not None:
            kwargs["layout"] = str(data["layout"])
        if data.get("frames_per_node") is not None:
            kwargs["frames_per_node"] = int(data["frames_per_node"])
        if data.get("engine") is not None:
            kwargs["engine"] = str(data["engine"])
        return RunSpec(**kwargs)
    except ConfigurationError as exc:
        raise ServeError(str(exc)) from None
    except (TypeError, ValueError) as exc:
        raise ServeError(f"malformed wire spec: {exc}") from None


def specs_from_wire(items: object) -> List[RunSpec]:
    """Decode a request's ``specs`` list (non-empty, each validated)."""
    if not isinstance(items, list) or not items:
        raise ServeError("request needs a non-empty 'specs' list")
    return [spec_from_wire(item) for item in items]


# ----------------------------------------------------------------------
# Shard routing
# ----------------------------------------------------------------------
def shard_of(spec: RunSpec, shard_count: int) -> int:
    """The shard index owning *spec* among ``shard_count`` servers.

    Pure function of the spec's content digest, so every process —
    server, client, proxy — derives the same owner.  Executions are
    partitioned by it; cache *reads* are not (any shard may serve a
    warm snapshot, because cache writes are atomic and content-
    addressed, so concurrent readers never see torn entries).
    """
    if shard_count < 1:
        raise ConfigurationError("shard_count must be >= 1")
    return int(spec.digest()[:16], 16) % shard_count


# ----------------------------------------------------------------------
# Streaming events
# ----------------------------------------------------------------------
def encode_event(event: Dict[str, object]) -> bytes:
    """One NDJSON line: compact JSON + newline (the chunk payload)."""
    return (json.dumps(event, separators=(",", ":")) + "\n").encode("utf-8")


def decode_events(lines: Iterable[bytes]) -> Iterable[Dict[str, object]]:
    """Parse NDJSON lines back into event dicts, skipping blanks."""
    for line in lines:
        text = line.decode("utf-8").strip()
        if not text:
            continue
        try:
            event = json.loads(text)
        except ValueError as exc:
            raise ServeError(f"malformed event line {text!r}: {exc}") from None
        if not isinstance(event, dict) or "event" not in event:
            raise ServeError(f"event line {text!r} is not an event object")
        yield event
