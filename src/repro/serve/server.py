"""The coalescing cache-front sweep server (``python -m repro serve``).

An asyncio HTTP/1.1 service in front of one
:class:`~repro.analysis.executor.SweepExecutor` and its
:class:`~repro.analysis.executor.SnapshotCache`.  Request resolution
mirrors the executor's tiers, plus the service-only ones:

1. **Warm** — memory/disk cache hits are answered immediately on any
   shard (reads of the content-addressed cache are always safe).
2. **Coalesced** — a request for a spec already executing awaits the
   in-flight run instead of starting another (see
   :mod:`repro.serve.coalescer`).
3. **Executed** — cold specs owned by this shard run through
   ``SweepExecutor.run`` on a thread pool, which since the PR-9 fix
   means the full retry/backoff/timeout machinery of
   :mod:`repro.analysis.retrypool` and the ``sweep.run`` fault site.
4. **Rejected** — cold specs owned by another shard get a ``421`` JSON
   response naming the owner, so multiple server processes can share
   one cache directory without ever executing (or writing) the same
   spec twice.

Endpoints
---------
``GET /health``
    Liveness + shard identity.
``GET /stats``
    Request/coalescing/warm-hit counters plus the executor's cache
    stats (the counters CI asserts against).
``POST /run``
    Body ``{"spec": {...}}`` — one run, JSON response.  With
    ``"stream": true`` the response is chunked NDJSON progress events
    (``accepted``, ``warm``/``scheduled``/``coalesced``, then
    ``completed`` or ``failed``).
``POST /sweep``
    Body ``{"specs": [...]}`` — chunked NDJSON: per-run ``completed``
    events in completion order, then a ``summary`` event.

The HTTP layer is deliberately tiny (request line + headers +
``Content-Length`` body; responses either sized or chunked) — enough
for the protocol, with zero dependencies beyond the standard library.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Tuple

from repro import faults
from repro.analysis.executor import SweepExecutor
from repro.analysis.plan import RunSpec
from repro.errors import ConfigurationError, ExecutionError, ServeError
from repro.serve.protocol import (
    WIRE_SCHEMA_VERSION,
    encode_event,
    shard_of,
    spec_from_wire,
    specs_from_wire,
)
from repro.version import __version__

#: Upper bound on accepted request bodies (a sweep of thousands of wire
#: specs fits comfortably; anything larger is a malformed or hostile
#: request, not a sweep).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: HTTP status for "right service, wrong shard".
STATUS_WRONG_SHARD = 421


@dataclass
class ServeStats:
    """Monotonic counters for one server process (``GET /stats``)."""

    requests: int = 0
    runs: int = 0
    executed: int = 0
    coalesced: int = 0
    warm_memory: int = 0
    warm_disk: int = 0
    failures: int = 0
    rejected_shard: int = 0
    bad_requests: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


class _HttpRequest:
    """One parsed request: method, path, headers, decoded JSON body."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(self, method: str, path: str, headers: Dict[str, str],
                 body: Optional[dict]) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body


async def _read_request(reader: asyncio.StreamReader) -> Optional[_HttpRequest]:
    """Parse one HTTP/1.1 request; ``None`` on a cleanly closed socket."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ServeError("malformed HTTP request line", status=400)
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ServeError("request body too large", status=413)
    body: Optional[dict] = None
    if length:
        raw = await reader.readexactly(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except ValueError as exc:
            raise ServeError(f"request body is not JSON: {exc}", status=400)
        if not isinstance(body, dict):
            raise ServeError("request body must be a JSON object", status=400)
    return _HttpRequest(method, path, headers, body)


_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    413: "Payload Too Large", STATUS_WRONG_SHARD: "Misdirected Request",
    500: "Internal Server Error",
}


def _response_bytes(status: int, payload: Dict[str, object]) -> bytes:
    """A complete sized JSON response."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: keep-alive\r\n\r\n"
    ).encode("latin-1")
    return head + body


def _chunked_head() -> bytes:
    return (
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: application/x-ndjson\r\n"
        "Transfer-Encoding: chunked\r\n"
        "Connection: keep-alive\r\n\r\n"
    ).encode("latin-1")


async def _write_chunk(writer: asyncio.StreamWriter, data: bytes) -> None:
    writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
    await writer.drain()


async def _end_chunks(writer: asyncio.StreamWriter) -> None:
    writer.write(b"0\r\n\r\n")
    await writer.drain()


class SweepServer:
    """Long-running front end over one executor (one shard of many).

    Parameters
    ----------
    executor:
        The :class:`SweepExecutor` to resolve runs through; built from
        *cache_dir*/*retry* when omitted.  Give it a ``retry`` policy —
        the server inherits the executor's full fault tolerance.
    shard_index / shard_count:
        This process's slot in a shard group sharing one cache
        directory.  Cold executions are accepted only for owned specs;
        warm cache reads are served regardless.
    parallel:
        Concurrent executions this server runs (thread-pool size).
        Each execution occupies one thread; coalescing means a burst of
        identical requests still occupies only one.
    """

    def __init__(
        self,
        executor: Optional[SweepExecutor] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        shard_index: int = 0,
        shard_count: int = 1,
        parallel: int = 2,
    ) -> None:
        from repro.serve.coalescer import RunCoalescer

        if shard_count < 1:
            raise ConfigurationError("shard_count must be >= 1")
        if not 0 <= shard_index < shard_count:
            raise ConfigurationError(
                f"shard_index {shard_index} outside [0, {shard_count})"
            )
        self.executor = executor if executor is not None else SweepExecutor()
        self.host = host
        self.port = port
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.coalescer = RunCoalescer()
        self.stats = ServeStats()
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, int(parallel)),
            thread_name_prefix="repro-serve",
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (port 0 = ephemeral)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle keep-alive handlers sit blocked in readline(); reap them
        # so a stopping loop doesn't warn about still-pending tasks.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def owns(self, spec: RunSpec) -> bool:
        """True when this shard executes *spec* (cold-path ownership)."""
        return shard_of(spec, self.shard_count) == self.shard_index

    async def resolve(self, spec: RunSpec) -> Tuple[object, str, float]:
        """Resolve one spec: ``(snapshot, source, duration_s)``.

        *source* is ``"memory"``/``"disk"`` (warm), ``"executed"``
        (this request launched the run) or ``"coalesced"`` (it awaited
        one already in flight).  Raises :class:`ServeError` with status
        421 for a cold spec owned by another shard.
        """
        warm = self.executor.lookup(spec)
        if warm is not None:
            snapshot, source = warm
            if source == "memory":
                self.stats.warm_memory += 1
            else:
                self.stats.warm_disk += 1
            return snapshot, source, 0.0
        if not self.owns(spec):
            self.stats.rejected_shard += 1
            raise ServeError(
                f"spec {spec.digest()[:12]} belongs to shard "
                f"{shard_of(spec, self.shard_count)} of {self.shard_count}, "
                f"not this shard ({self.shard_index})",
                status=STATUS_WRONG_SHARD,
            )
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        future, launched = self.coalescer.submit(
            spec, lambda: loop.run_in_executor(self._pool, self.executor.run, spec)
        )
        if launched:
            self.stats.executed += 1
        else:
            self.stats.coalesced += 1
        snapshot = await self.coalescer.wait(future)
        return (
            snapshot,
            "executed" if launched else "coalesced",
            time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except ServeError as exc:
                    self.stats.bad_requests += 1
                    writer.write(_response_bytes(
                        exc.status, {"status": "error", "error": str(exc)}
                    ))
                    await writer.drain()
                    break
                if request is None:
                    break
                await self._dispatch(request, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        except asyncio.CancelledError:
            pass  # reaped by aclose(); finish cleanly, not "cancelled"
        finally:
            try:
                writer.close()
                await asyncio.shield(writer.wait_closed())
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _dispatch(self, request: _HttpRequest, writer) -> None:
        self.stats.requests += 1
        try:
            faults.fire("serve.request", key=f"{request.method} {request.path}")
            if request.method == "GET" and request.path == "/health":
                await self._send(writer, 200, self._health())
            elif request.method == "GET" and request.path == "/stats":
                await self._send(writer, 200, self._stats_payload())
            elif request.method == "POST" and request.path == "/run":
                await self._handle_run(request, writer)
            elif request.method == "POST" and request.path == "/sweep":
                await self._handle_sweep(request, writer)
            else:
                await self._send(writer, 404, {
                    "status": "error", "error": f"no route {request.method} {request.path}",
                })
        except ServeError as exc:
            self.stats.bad_requests += 1
            await self._send(writer, exc.status, {"status": "error", "error": str(exc)})
        except Exception as exc:  # noqa: BLE001 — the server must survive
            self.stats.failures += 1
            await self._send(writer, 500, {
                "status": "error", "error": f"{type(exc).__name__}: {exc}",
            })

    async def _send(self, writer, status: int, payload: Dict[str, object]) -> None:
        writer.write(_response_bytes(status, payload))
        await writer.drain()

    def _health(self) -> Dict[str, object]:
        return {
            "status": "ok",
            "version": __version__,
            "wire_schema": WIRE_SCHEMA_VERSION,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "in_flight": self.coalescer.in_flight,
        }

    def _stats_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"status": "ok"}
        payload.update(self.stats.as_dict())
        cache = self.executor.disk_cache
        payload["cache"] = asdict(cache.stats) if cache is not None else None
        return payload

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    @staticmethod
    def _check_schema(body: Optional[dict]) -> dict:
        if body is None:
            raise ServeError("request needs a JSON body")
        declared = body.get("wire_schema", WIRE_SCHEMA_VERSION)
        if declared != WIRE_SCHEMA_VERSION:
            raise ServeError(
                f"wire schema {declared!r} unsupported "
                f"(this server speaks {WIRE_SCHEMA_VERSION})"
            )
        return body

    def _run_payload(self, spec: RunSpec, snapshot, source: str,
                     duration_s: float) -> Dict[str, object]:
        return {
            "status": "ok",
            "digest": spec.digest(),
            "source": source,
            "duration_s": duration_s,
            "snapshot": snapshot.to_dict(),
        }

    async def _handle_run(self, request: _HttpRequest, writer) -> None:
        body = self._check_schema(request.body)
        spec = spec_from_wire(body.get("spec"))
        self.stats.runs += 1
        if not body.get("stream"):
            try:
                snapshot, source, duration = await self.resolve(spec)
            except ExecutionError as exc:
                self.stats.failures += 1
                await self._send(writer, 500, {
                    "status": "error", "error": str(exc), "digest": spec.digest(),
                })
                return
            await self._send(
                writer, 200, self._run_payload(spec, snapshot, source, duration)
            )
            return

        # Streaming mode: progress events over a chunked response.
        writer.write(_chunked_head())
        await writer.drain()
        await _write_chunk(writer, encode_event({
            "event": "accepted",
            "digest": spec.digest(),
            "shard": shard_of(spec, self.shard_count),
        }))
        try:
            warm = self.executor.lookup(spec)
            if warm is not None:
                await _write_chunk(writer, encode_event(
                    {"event": "warm", "source": warm[1]}
                ))
            elif self.coalescer.is_inflight(spec):
                await _write_chunk(writer, encode_event({"event": "coalesced"}))
            else:
                await _write_chunk(writer, encode_event({"event": "scheduled"}))
            snapshot, source, duration = await self.resolve(spec)
        except (ServeError, ExecutionError) as exc:
            if isinstance(exc, ExecutionError):
                self.stats.failures += 1
            await _write_chunk(writer, encode_event({
                "event": "failed", "error": str(exc),
                "status": getattr(exc, "status", 500),
            }))
        else:
            payload = self._run_payload(spec, snapshot, source, duration)
            payload["event"] = "completed"
            del payload["status"]
            await _write_chunk(writer, encode_event(payload))
        await _end_chunks(writer)

    async def _handle_sweep(self, request: _HttpRequest, writer) -> None:
        body = self._check_schema(request.body)
        specs = specs_from_wire(body.get("specs"))
        self.stats.runs += len(specs)
        writer.write(_chunked_head())
        await writer.drain()
        await _write_chunk(writer, encode_event({
            "event": "accepted", "runs": len(specs),
        }))

        async def one(index: int, spec: RunSpec) -> Dict[str, object]:
            try:
                snapshot, source, duration = await self.resolve(spec)
            except (ServeError, ExecutionError) as exc:
                if isinstance(exc, ExecutionError):
                    self.stats.failures += 1
                return {
                    "event": "failed", "index": index,
                    "digest": spec.digest(), "error": str(exc),
                    "status": getattr(exc, "status", 500),
                }
            payload = self._run_payload(spec, snapshot, source, duration)
            payload["event"] = "completed"
            payload["index"] = index
            del payload["status"]
            return payload

        tasks = [
            asyncio.ensure_future(one(index, spec))
            for index, spec in enumerate(specs)
        ]
        completed = failed = 0
        for finished in asyncio.as_completed(tasks):
            event = await finished
            if event["event"] == "completed":
                completed += 1
            else:
                failed += 1
            await _write_chunk(writer, encode_event(event))
        await _write_chunk(writer, encode_event({
            "event": "summary", "runs": len(specs),
            "completed": completed, "failed": failed,
        }))
        await _end_chunks(writer)


# ----------------------------------------------------------------------
# Background hosting (tests, benches, the serve-bench CLI)
# ----------------------------------------------------------------------
class BackgroundServer:
    """A :class:`SweepServer` running on its own event-loop thread.

    The caller's thread stays free to drive the blocking client — the
    shape every serve test and the load benchmark uses.  Always
    ``stop()`` (or use as a context manager) so the loop thread joins.
    """

    def __init__(self, server: SweepServer) -> None:
        self.server = server
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self, timeout_s: float = 10.0) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise ServeError("background server failed to start in time", status=500)
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # noqa: BLE001 — reported to starter
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.server.aclose())
            self._loop.close()

    def stop(self, timeout_s: float = 10.0) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout_s)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
