"""Small shared filesystem helpers.

One home for the atomic-JSON-write pattern the persisted artifacts
(benchmark trajectories, the golden-snapshot corpus) rely on: write to a
same-directory temp file, then ``os.replace`` so readers never observe a
half-written document and a crash leaves the previous version intact.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Union


def atomic_write_json(path: Union[str, Path], data: object) -> Path:
    """Atomically write *data* as pretty sorted JSON (with newline) to *path*.

    Parent directories are created as needed.  On any failure the temp
    file is removed and the previous file (if any) is left untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> Path:
    """Atomically write raw *data* to *path* (temp file + ``os.replace``).

    The binary sibling of :func:`atomic_write_json`, used for engine
    checkpoints: a kill mid-write must leave either the previous
    checkpoint or no file at all, never a torn blob.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path
