"""Small shared filesystem helpers.

One home for the atomic-write pattern the persisted artifacts (benchmark
trajectories, the golden-snapshot corpus, snapshot-cache entries, engine
checkpoints) rely on: write to a same-directory temp file, then
``os.replace`` so readers never observe a half-written document and a
crash leaves the previous version intact.

Both writers accept ``fsync=True`` for artifacts that must survive power
loss, not just process death: the temp file is flushed to stable storage
before the rename, and the parent directory is fsynced after it, so a
crash can never leave a renamed-but-unflushed blob (the classic
"rename is atomic but the data never hit the platter" hole).

All bytes funnel through the ``io.write`` fault site of
:mod:`repro.faults`, keyed by the destination file name — that is what
lets the chaos suite produce genuinely torn or corrupted artifacts
through the same code path production uses.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Union

from repro import faults


def _fsync_dir(directory: Path) -> None:
    """fsync a directory fd so a completed rename survives power loss."""
    fd = os.open(str(directory), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write(path: Path, data: bytes, fsync: bool) -> Path:
    """Write *data* to *path* via temp file + ``os.replace``.

    The shared core of both public writers.  On any failure the temp
    file is removed and the previous file (if any) is left untouched.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    data = faults.filter_bytes("io.write", path.name, data)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
        if fsync:
            _fsync_dir(path.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(
    path: Union[str, Path], data: object, fsync: bool = False
) -> Path:
    """Atomically write *data* as pretty sorted JSON (with newline) to *path*.

    Parent directories are created as needed.  Pass ``fsync=True`` for
    durability against power loss (file and parent directory are both
    flushed to stable storage).
    """
    text = json.dumps(data, indent=2, sort_keys=True) + "\n"
    return _atomic_write(Path(path), text.encode("utf-8"), fsync)


def atomic_write_bytes(
    path: Union[str, Path], data: bytes, fsync: bool = False
) -> Path:
    """Atomically write raw *data* to *path* (temp file + ``os.replace``).

    The binary sibling of :func:`atomic_write_json`, used for engine
    checkpoints: a kill mid-write must leave either the previous
    checkpoint or no file at all, never a torn blob.  Checkpoints pass
    ``fsync=True`` so a power loss cannot leave a renamed-but-empty one.
    """
    return _atomic_write(Path(path), data, fsync)
