"""Replacement policies for caches and sparse directories.

The paper's probe filter and caches use LRU replacement; we additionally
provide pseudo-LRU (tree-based) and seeded random replacement so that the
ablation benches can quantify the sensitivity of ALLARM's savings to the
directory replacement policy.

A policy instance manages *one* set.  Caches create one policy object per
set via :class:`ReplacementPolicyFactory`, keeping the per-set state
(recency stacks, tree bits, RNG) isolated and easy to test.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, List, Optional

from repro.errors import ConfigurationError


class ReplacementPolicy(ABC):
    """Replacement state for a single cache set of ``associativity`` ways."""

    def __init__(self, associativity: int) -> None:
        if associativity <= 0:
            raise ConfigurationError("associativity must be positive")
        self.associativity = associativity

    @abstractmethod
    def touch(self, way: int) -> None:
        """Record a hit (or fill) of *way*, updating recency state."""

    @abstractmethod
    def victim(self, occupied_ways: List[int]) -> int:
        """Choose a victim way among *occupied_ways* (all ways are full)."""

    @abstractmethod
    def reset(self, way: int) -> None:
        """Forget recency information for *way* (after an invalidation)."""

    def _check_way(self, way: int) -> None:
        if way < 0 or way >= self.associativity:
            raise ConfigurationError(
                f"way {way} out of range for associativity {self.associativity}"
            )


class LruPolicy(ReplacementPolicy):
    """True least-recently-used replacement using an explicit recency stack."""

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        # Most recent at the end; ways absent from the stack are treated as
        # least recent (never touched, or explicitly reset).
        self._stack: List[int] = []

    def touch(self, way: int) -> None:
        self._check_way(way)
        if way in self._stack:
            self._stack.remove(way)
        self._stack.append(way)

    def victim(self, occupied_ways: List[int]) -> int:
        if not occupied_ways:
            raise ConfigurationError("victim() called with no occupied ways")
        occupied = set(occupied_ways)
        # Prefer an occupied way we have never touched, then the least
        # recently used one.
        for way in occupied_ways:
            if way not in self._stack:
                return way
        for way in self._stack:
            if way in occupied:
                return way
        raise ConfigurationError("LRU state inconsistent with occupancy")

    def reset(self, way: int) -> None:
        self._check_way(way)
        if way in self._stack:
            self._stack.remove(way)

    def recency_order(self) -> List[int]:
        """Return ways from least to most recently used (for tests)."""
        return list(self._stack)


class TreePlruPolicy(ReplacementPolicy):
    """Tree-based pseudo-LRU, the common hardware approximation of LRU.

    Requires a power-of-two associativity.  Each internal node of a binary
    tree holds one bit pointing towards the pseudo-least-recently-used
    half; a touch flips the bits along the path away from the touched way.
    """

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        if associativity & (associativity - 1) != 0:
            raise ConfigurationError("tree PLRU needs power-of-two associativity")
        self._bits: Dict[int, int] = {}

    def touch(self, way: int) -> None:
        self._check_way(way)
        node = 1
        span = self.associativity
        base = 0
        while span > 1:
            half = span // 2
            if way < base + half:
                self._bits[node] = 1  # point away: to the right half
                node = 2 * node
            else:
                self._bits[node] = 0  # point to the left half
                node = 2 * node + 1
                base += half
            span = half

    def victim(self, occupied_ways: List[int]) -> int:
        if not occupied_ways:
            raise ConfigurationError("victim() called with no occupied ways")
        node = 1
        span = self.associativity
        base = 0
        while span > 1:
            half = span // 2
            if self._bits.get(node, 0) == 0:
                node = 2 * node
            else:
                node = 2 * node + 1
                base += half
            span = half
        choice = base
        if choice in occupied_ways:
            return choice
        # The tree pointed at an empty way (possible after invalidations);
        # fall back to the first occupied way, which is still a valid
        # pseudo-LRU approximation.
        return occupied_ways[0]

    def reset(self, way: int) -> None:
        self._check_way(way)
        # Tree PLRU keeps no per-way state to clear.


class RandomPolicy(ReplacementPolicy):
    """Seeded random replacement (deterministic for a given seed)."""

    def __init__(self, associativity: int, seed: int = 0) -> None:
        super().__init__(associativity)
        self._rng = random.Random(seed)

    def touch(self, way: int) -> None:
        self._check_way(way)

    def victim(self, occupied_ways: List[int]) -> int:
        if not occupied_ways:
            raise ConfigurationError("victim() called with no occupied ways")
        return self._rng.choice(occupied_ways)

    def reset(self, way: int) -> None:
        self._check_way(way)


class ReplacementPolicyFactory:
    """Creates one per-set policy instance from a policy name.

    Supported names: ``"lru"``, ``"plru"`` and ``"random"``.
    """

    NAMES = ("lru", "plru", "random")

    def __init__(self, name: str = "lru", seed: int = 0) -> None:
        if name not in self.NAMES:
            raise ConfigurationError(
                f"unknown replacement policy {name!r}; expected one of {self.NAMES}"
            )
        self.name = name
        self.seed = seed
        self._counter = 0

    def create(self, associativity: int) -> ReplacementPolicy:
        """Create a fresh policy instance for one set."""
        self._counter += 1
        if self.name == "lru":
            return LruPolicy(associativity)
        if self.name == "plru":
            return TreePlruPolicy(associativity)
        return RandomPolicy(associativity, seed=self.seed + self._counter)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReplacementPolicyFactory(name={self.name!r}, seed={self.seed})"


def make_policy(
    name: str, associativity: int, seed: int = 0
) -> ReplacementPolicy:
    """Convenience helper: build a single policy instance directly."""
    return ReplacementPolicyFactory(name, seed).create(associativity)


def available_policies() -> List[str]:
    """Return the list of replacement policy names understood by the factory."""
    return list(ReplacementPolicyFactory.NAMES)


def validate_policy_name(name: Optional[str]) -> str:
    """Validate *name*, defaulting to ``"lru"`` when ``None``."""
    if name is None:
        return "lru"
    if name not in ReplacementPolicyFactory.NAMES:
        raise ConfigurationError(f"unknown replacement policy {name!r}")
    return name
