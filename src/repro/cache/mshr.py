"""Miss status holding registers (MSHRs).

The transaction-level simulator services each miss atomically, so MSHRs
are not required for correctness.  They are modelled anyway because the
paper's baseline is "an already optimized implementation" and because the
MSHR file lets us (a) detect and merge redundant outstanding misses when
replaying bursty traces and (b) expose an occupancy statistic used by the
ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.coherence.transactions import RequestKind
from repro.errors import ConfigurationError


@dataclass
class MshrEntry:
    """One outstanding miss: the line and the kinds of requests merged."""

    line_address: int
    kinds: List[RequestKind] = field(default_factory=list)

    @property
    def needs_write(self) -> bool:
        """True when any merged request requires ownership."""
        return any(kind.is_write for kind in self.kinds)

    @property
    def merged_count(self) -> int:
        """Number of requests coalesced into this entry."""
        return len(self.kinds)


@dataclass
class MshrStats:
    """Counters describing MSHR behaviour over a run."""

    allocations: int = 0
    merges: int = 0
    releases: int = 0
    peak_occupancy: int = 0
    full_stalls: int = 0


class MshrFile:
    """A fixed-capacity file of miss status holding registers."""

    def __init__(self, capacity: int = 16) -> None:
        if capacity <= 0:
            raise ConfigurationError("MSHR capacity must be positive")
        self.capacity = capacity
        self.stats = MshrStats()
        self._entries: Dict[int, MshrEntry] = {}

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of outstanding misses currently tracked."""
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        """True when no further distinct miss can be tracked."""
        return len(self._entries) >= self.capacity

    def lookup(self, line_address: int) -> Optional[MshrEntry]:
        """Return the outstanding entry for *line_address*, if any."""
        return self._entries.get(line_address)

    # ------------------------------------------------------------------
    def allocate(self, line_address: int, kind: RequestKind) -> MshrEntry:
        """Track a new miss, or merge into an existing entry for the line.

        Raises :class:`ConfigurationError` when the file is full and the
        line is not already tracked; callers should treat that as a stall
        (the simulator counts it and retries after draining).
        """
        entry = self._entries.get(line_address)
        if entry is not None:
            entry.kinds.append(kind)
            self.stats.merges += 1
            return entry
        if self.is_full:
            self.stats.full_stalls += 1
            raise ConfigurationError("MSHR file full")
        entry = MshrEntry(line_address=line_address, kinds=[kind])
        self._entries[line_address] = entry
        self.stats.allocations += 1
        self.stats.peak_occupancy = max(self.stats.peak_occupancy, self.occupancy)
        return entry

    def release(self, line_address: int) -> MshrEntry:
        """Retire the entry for *line_address* once its data has returned."""
        entry = self._entries.pop(line_address, None)
        if entry is None:
            raise ConfigurationError(
                f"release of untracked MSHR line {line_address:#x}"
            )
        self.stats.releases += 1
        return entry

    def drain(self) -> List[MshrEntry]:
        """Retire every outstanding entry (end-of-run cleanup)."""
        entries = list(self._entries.values())
        self.stats.releases += len(entries)
        self._entries.clear()
        return entries

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Serializable snapshot of outstanding entries and counters."""
        return {
            "entries": [
                (line, [kind.value for kind in entry.kinds])
                for line, entry in self._entries.items()
            ],
            "stats": (
                self.stats.allocations,
                self.stats.merges,
                self.stats.releases,
                self.stats.peak_occupancy,
                self.stats.full_stalls,
            ),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        self._entries.clear()
        for line, kinds in state["entries"]:
            self._entries[line] = MshrEntry(
                line_address=line,
                kinds=[RequestKind(value) for value in kinds],
            )
        (
            self.stats.allocations,
            self.stats.merges,
            self.stats.releases,
            self.stats.peak_occupancy,
            self.stats.full_stalls,
        ) = state["stats"]
