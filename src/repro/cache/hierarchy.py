"""Per-core cache hierarchy: L1 instruction, L1 data and private L2.

The paper's configuration (Table I) gives each core a 32 kB 4-way L1I,
a 32 kB 4-way L1D and a 256 kB 4-way private L2.  The paper's L2 is
exclusive of the L1s; we model an *inclusive* L2 instead, which keeps a
single coherence-visible image of the core's cached lines in the L2 and
simplifies directory probes.  This substitution is documented in
DESIGN.md: the directory-level behaviour (what fraction of lines is
tracked, when evictions happen, when probes find a line) is preserved
because the L1s are an order of magnitude smaller than the L2 and the
probe filter is sized against L2 capacity in both cases.

From the directory's point of view the hierarchy *is* the single "local
core cache" of its affinity domain (Section II-E of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

from repro.cache.cache import Cache, CacheLine
from repro.cache.mshr import MshrFile
from repro.coherence.states import LineState
from repro.errors import ConfigurationError


class HitLevel(Enum):
    """Where in the hierarchy an access was satisfied."""

    L1 = "L1"
    L2 = "L2"
    MISS = "miss"


@dataclass
class AccessResult:
    """Outcome of presenting one memory access to the hierarchy."""

    level: HitLevel
    needs_coherence: bool
    needs_upgrade: bool
    line_address: int

    @property
    def is_hit(self) -> bool:
        """True when no coherence transaction is required."""
        return not self.needs_coherence


@dataclass
class EvictedLine:
    """A coherence-visible line evicted from the L2 (victim of a fill)."""

    line_address: int
    state: LineState

    @property
    def dirty(self) -> bool:
        """True when the eviction produces a writeback."""
        return self.state.is_dirty

    @property
    def owned(self) -> bool:
        """True when the directory should be notified of the eviction.

        The paper's baseline notifies the directory when an exclusively
        owned block leaves the cache; we extend this to every state the
        cache is the owner of (M, O, E).
        """
        return self.state.is_owner


class CacheHierarchy:
    """L1I + L1D + inclusive private L2 for a single core."""

    def __init__(
        self,
        core_id: int,
        l1i_size: int = 32 * 1024,
        l1d_size: int = 32 * 1024,
        l1_assoc: int = 4,
        l2_size: int = 256 * 1024,
        l2_assoc: int = 4,
        line_size: int = 64,
        replacement: str = "lru",
        mshr_capacity: int = 16,
    ) -> None:
        if l2_size < l1d_size or l2_size < l1i_size:
            raise ConfigurationError("inclusive L2 must be at least as large as each L1")
        self.core_id = core_id
        self.line_size = line_size
        self.l1i = Cache(
            f"L1I[{core_id}]", l1i_size, l1_assoc, line_size, replacement, seed=core_id * 3 + 1
        )
        self.l1d = Cache(
            f"L1D[{core_id}]", l1d_size, l1_assoc, line_size, replacement, seed=core_id * 3 + 2
        )
        self.l2 = Cache(
            f"L2[{core_id}]", l2_size, l2_assoc, line_size, replacement, seed=core_id * 3 + 3
        )
        self.mshrs = MshrFile(mshr_capacity)

    # ------------------------------------------------------------------
    # Core-side access path
    # ------------------------------------------------------------------
    def access(
        self, line_address: int, is_write: bool, is_instruction: bool = False
    ) -> AccessResult:
        """Present one access; classify it as an L1 hit, L2 hit or miss.

        A write to a line held only in a SHARED/OWNED state is reported as
        ``needs_upgrade`` — the line is present but ownership must be
        obtained from the directory, which is a coherence transaction.
        """
        l1 = self.l1i if is_instruction else self.l1d
        l1_line = l1.lookup(line_address)
        if l1_line is not None:
            l2_line = self.l2.probe(line_address)
            if l2_line is None:
                raise ConfigurationError(
                    f"inclusion violated: line {line_address:#x} in "
                    f"{l1.name} but not in {self.l2.name}"
                )
            if not is_write or l2_line.state.can_write:
                if is_write:
                    self.l2.set_state(line_address, LineState.MODIFIED)
                # Keep L2 recency in step with L1 hits so the hottest lines
                # stay resident in the inclusive L2.
                self.l2.lookup(line_address, update_stats=False)
                return AccessResult(HitLevel.L1, False, False, line_address)
            # Present but not writable: upgrade needed.
            return AccessResult(HitLevel.L1, True, True, line_address)

        l2_line = self.l2.lookup(line_address)
        if l2_line is not None:
            if not is_write or l2_line.state.can_write:
                if is_write:
                    self.l2.set_state(line_address, LineState.MODIFIED)
                self._refill_l1(l1, line_address, l2_line.state)
                return AccessResult(HitLevel.L2, False, False, line_address)
            return AccessResult(HitLevel.L2, True, True, line_address)

        return AccessResult(HitLevel.MISS, True, False, line_address)

    def fill(
        self, line_address: int, state: LineState, is_instruction: bool = False
    ) -> List[EvictedLine]:
        """Install a line returned by the directory, in *state*.

        Returns the coherence-visible (L2) lines evicted to make room.
        Evicted L2 lines are also removed from the L1s to preserve
        inclusion.
        """
        evicted: List[EvictedLine] = []
        victim = self.l2.fill(line_address, state)
        if victim is not None:
            self._enforce_inclusion(victim.line_address)
            evicted.append(EvictedLine(victim.line_address, victim.state))
        l1 = self.l1i if is_instruction else self.l1d
        self._refill_l1(l1, line_address, state)
        return evicted

    # ------------------------------------------------------------------
    # Directory-side probes
    # ------------------------------------------------------------------
    def coherence_state(self, line_address: int) -> LineState:
        """Return the coherence-visible state of a line (L2 image)."""
        line = self.l2.probe(line_address)
        return line.state if line is not None else LineState.INVALID

    def holds_line(self, line_address: int) -> bool:
        """True when the line is resident in any valid state."""
        return self.l2.contains(line_address)

    def handle_invalidate(self, line_address: int) -> Optional[LineState]:
        """Invalidate a line everywhere; return its prior L2 state if held."""
        self._enforce_inclusion(line_address)
        line = self.l2.invalidate(line_address)
        return line.state if line is not None else None

    def handle_downgrade(self, line_address: int) -> Optional[LineState]:
        """Downgrade an owned line after a remote read; return new state.

        Modified lines become OWNED (dirty data retained and supplied to
        the requester), EXCLUSIVE lines become SHARED.  Returns ``None``
        when the line is not resident.
        """
        line = self.l2.probe(line_address)
        if line is None:
            return None
        new_state = line.state.after_remote_read()
        self.l2.set_state(line_address, new_state)
        for l1 in (self.l1i, self.l1d):
            l1_line = l1.probe(line_address)
            if l1_line is not None:
                l1.set_state(line_address, new_state)
        return new_state

    # ------------------------------------------------------------------
    # Statistics helpers
    # ------------------------------------------------------------------
    def l2_misses(self) -> int:
        """Number of L2 misses so far (the quantity in Figure 3e)."""
        return self.l2.stats.misses

    def total_accesses(self) -> int:
        """Total L1 lookups presented by the core."""
        return self.l1i.stats.accesses + self.l1d.stats.accesses

    # ------------------------------------------------------------------
    def _refill_l1(self, l1: Cache, line_address: int, state: LineState) -> None:
        victim = l1.fill(line_address, state)
        # L1 victims need no action: the inclusive L2 still holds them, and
        # dirty data is propagated to the L2 via the state we maintain there.
        del victim

    def _enforce_inclusion(self, line_address: int) -> None:
        for l1 in (self.l1i, self.l1d):
            l1.invalidate(line_address)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheHierarchy(core={self.core_id})"
