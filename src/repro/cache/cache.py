"""Set-associative cache model with MOESI line states.

This is the building block for the per-core L1 instruction, L1 data and
private L2 caches (Table I: 32 kB 4-way L1s, 256 kB 4-way L2).  The cache
operates on physical line addresses; tag/index decomposition follows the
usual power-of-two geometry.

Only state, occupancy and replacement are modelled — there is no data
payload, because the evaluation depends on hit/miss behaviour, eviction
traffic and coherence state, never on values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.cache.replacement import ReplacementPolicy, ReplacementPolicyFactory
from repro.coherence.states import LineState
from repro.errors import ConfigurationError
from repro.memory.address import is_power_of_two


@dataclass
class CacheLine:
    """Metadata for one resident cache line."""

    line_address: int
    state: LineState
    way: int

    @property
    def dirty(self) -> bool:
        """True when eviction of this line requires a writeback."""
        return self.state.is_dirty


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for a single cache."""

    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    invalidations_received: int = 0
    upgrades: int = 0

    @property
    def accesses(self) -> int:
        """Total lookups that were classified as a hit or a miss."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss rate over all classified lookups (0.0 when idle)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def as_dict(self) -> Dict[str, int]:
        """Return the raw counters (all ints) as a plain dictionary.

        Only event counts live here, so the dictionary JSON round-trips
        without any int/float coercion; derived rates are available via
        :meth:`summary`.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "fills": self.fills,
            "evictions": self.evictions,
            "dirty_evictions": self.dirty_evictions,
            "invalidations_received": self.invalidations_received,
            "upgrades": self.upgrades,
        }

    def summary(self) -> Dict[str, float]:
        """Counters plus derived rates (for human-facing reports)."""
        data: Dict[str, float] = dict(self.as_dict())
        data["miss_rate"] = self.miss_rate
        return data


@dataclass
class _CacheSet:
    """One set: mapping from way index to resident line."""

    lines: Dict[int, CacheLine] = field(default_factory=dict)
    policy: Optional[ReplacementPolicy] = None


class Cache:
    """A set-associative cache keyed by physical line address.

    Parameters
    ----------
    name:
        Human-readable name used in statistics reports (e.g. ``"L2[3]"``).
    size_bytes, associativity, line_size:
        Standard cache geometry; ``size_bytes`` must equal
        ``sets * associativity * line_size`` for a power-of-two set count.
    replacement:
        Replacement policy name understood by
        :class:`~repro.cache.replacement.ReplacementPolicyFactory`.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        associativity: int,
        line_size: int = 64,
        replacement: str = "lru",
        seed: int = 0,
    ) -> None:
        if size_bytes <= 0:
            raise ConfigurationError("cache size must be positive")
        if associativity <= 0:
            raise ConfigurationError("associativity must be positive")
        if not is_power_of_two(line_size):
            raise ConfigurationError("line size must be a power of two")
        if size_bytes % (associativity * line_size) != 0:
            raise ConfigurationError(
                f"cache {name}: size {size_bytes} not divisible by "
                f"associativity*line_size ({associativity * line_size})"
            )
        sets = size_bytes // (associativity * line_size)
        if not is_power_of_two(sets):
            raise ConfigurationError(
                f"cache {name}: set count {sets} must be a power of two"
            )

        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_size = line_size
        self.set_count = sets
        # Memoized tag/index decomposition: line size and set count are
        # powers of two, so ``// line_size % set_count`` is a shift and a
        # mask.  These two attributes are the layout contract shared with
        # the packed engine (repro.cache.packed), which indexes its flat
        # arrays with the same decomposition.
        self.line_shift = line_size.bit_length() - 1
        self.set_mask = sets - 1
        self.stats = CacheStats()

        factory = ReplacementPolicyFactory(replacement, seed=seed)
        self._sets: List[_CacheSet] = [
            _CacheSet(policy=factory.create(associativity)) for _ in range(sets)
        ]

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    @property
    def capacity_lines(self) -> int:
        """Total number of lines the cache can hold."""
        return self.set_count * self.associativity

    def set_index(self, line_address: int) -> int:
        """Return the set index for a line-aligned physical address."""
        return (line_address >> self.line_shift) & self.set_mask

    # ------------------------------------------------------------------
    # Lookup / fill / evict
    # ------------------------------------------------------------------
    def lookup(self, line_address: int, update_stats: bool = True) -> Optional[CacheLine]:
        """Return the resident line for *line_address*, or ``None`` on miss.

        When *update_stats* is true the access is counted as a hit or miss
        and LRU state is refreshed on a hit.  Pass ``False`` for coherence
        probes that should not perturb replacement or hit-rate statistics.
        """
        cache_set = self._sets[(line_address >> self.line_shift) & self.set_mask]
        for line in cache_set.lines.values():
            if line.line_address == line_address and line.state.is_valid:
                if update_stats:
                    self.stats.hits += 1
                    cache_set.policy.touch(line.way)
                return line
        if update_stats:
            self.stats.misses += 1
        return None

    def probe(self, line_address: int) -> Optional[CacheLine]:
        """Coherence probe: look up without touching stats or recency."""
        return self.lookup(line_address, update_stats=False)

    def contains(self, line_address: int) -> bool:
        """True when the line is resident in a valid state."""
        return self.probe(line_address) is not None

    def fill(self, line_address: int, state: LineState) -> Optional[CacheLine]:
        """Install a line, returning the evicted victim line if any.

        The caller is responsible for generating any writeback traffic
        implied by a dirty victim.
        """
        if not state.is_valid:
            raise ConfigurationError("cannot fill a line in the INVALID state")
        cache_set = self._sets[self.set_index(line_address)]
        policy = cache_set.policy

        existing = self.probe(line_address)
        if existing is not None:
            # Refill of a resident line is a state change, not an allocation.
            existing.state = state
            policy.touch(existing.way)
            return None

        victim: Optional[CacheLine] = None
        free_ways = [w for w in range(self.associativity) if w not in cache_set.lines]
        if free_ways:
            way = free_ways[0]
        else:
            occupied = sorted(cache_set.lines.keys())
            way = policy.victim(occupied)
            victim = cache_set.lines.pop(way)
            policy.reset(way)
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.dirty_evictions += 1

        line = CacheLine(line_address=line_address, state=state, way=way)
        cache_set.lines[way] = line
        policy.touch(way)
        self.stats.fills += 1
        return victim

    def invalidate(self, line_address: int) -> Optional[CacheLine]:
        """Invalidate a line in response to a coherence request.

        Returns the line (with its pre-invalidation state) when it was
        resident, so the caller can decide whether a writeback is needed.
        """
        cache_set = self._sets[self.set_index(line_address)]
        for way, line in list(cache_set.lines.items()):
            if line.line_address == line_address and line.state.is_valid:
                del cache_set.lines[way]
                cache_set.policy.reset(way)
                self.stats.invalidations_received += 1
                return line
        return None

    def set_state(self, line_address: int, state: LineState) -> CacheLine:
        """Change the coherence state of a resident line."""
        line = self.probe(line_address)
        if line is None:
            raise ConfigurationError(
                f"{self.name}: cannot change state of non-resident line "
                f"{line_address:#x}"
            )
        if state is LineState.INVALID:
            raise ConfigurationError("use invalidate() to drop a line")
        if state.can_write and not line.state.can_write:
            self.stats.upgrades += 1
        line.state = state
        return line

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def resident_lines(self) -> Iterator[CacheLine]:
        """Iterate over all valid resident lines (unspecified order)."""
        for cache_set in self._sets:
            yield from cache_set.lines.values()

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(s.lines) for s in self._sets)

    def flush(self) -> List[CacheLine]:
        """Drop every resident line and return the dirty ones.

        Used when ALLARM is disabled for a physical range at run time
        (Section II-C: moving from ALLARM to non-ALLARM mode requires
        flushing the range from the local core).
        """
        dirty: List[CacheLine] = []
        for cache_set in self._sets:
            policy = cache_set.policy
            for way, line in list(cache_set.lines.items()):
                if line.dirty:
                    dirty.append(line)
                del cache_set.lines[way]
                policy.reset(way)
        return dirty

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cache({self.name!r}, {self.size_bytes}B, "
            f"{self.associativity}-way, {self.set_count} sets)"
        )
