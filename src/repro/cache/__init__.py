"""Cache hierarchy: set-associative caches, replacement policies, MSHRs."""

from repro.cache.cache import Cache, CacheLine, CacheStats
from repro.cache.hierarchy import AccessResult, CacheHierarchy, EvictedLine, HitLevel
from repro.cache.mshr import MshrEntry, MshrFile, MshrStats
from repro.cache.packed import PackedCache, PackedHierarchy
from repro.cache.replacement import (
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    ReplacementPolicyFactory,
    TreePlruPolicy,
    available_policies,
    make_policy,
)

__all__ = [
    "Cache",
    "CacheLine",
    "CacheStats",
    "CacheHierarchy",
    "AccessResult",
    "EvictedLine",
    "HitLevel",
    "MshrEntry",
    "MshrFile",
    "MshrStats",
    "PackedCache",
    "PackedHierarchy",
    "ReplacementPolicy",
    "ReplacementPolicyFactory",
    "LruPolicy",
    "TreePlruPolicy",
    "RandomPolicy",
    "make_policy",
    "available_policies",
]
