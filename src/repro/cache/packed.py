"""Packed array-based cache model: the fast engine's data layout.

The reference :class:`~repro.cache.cache.Cache` stores one ``CacheLine``
dataclass per resident line inside per-set dictionaries and delegates
recency to per-set :class:`~repro.cache.replacement.ReplacementPolicy`
objects.  That object graph is expressive but costs a dictionary walk,
several enum-property calls and a dataclass allocation on *every*
simulated access — and the paper's evaluation replays multi-million
access streams per sweep point.

:class:`PackedCache` keeps the same externally observable behaviour in
flat per-cache arrays indexed by ``set * associativity + way``:

* ``tags`` — an ``array('q')`` of line addresses (``-1`` marks a free
  way), so the hit path is one C-level ``array.index`` scan;
* ``states`` — a ``bytearray`` of MOESI codes (int comparisons and table
  lookups replace enum properties);
* ``stamps`` — an ``array('q')`` of monotonically increasing touch
  stamps implementing exact LRU (``0`` = never touched / reset);
* per-set tree-PLRU bit words and lazily created per-set seeded RNGs for
  the other replacement policies.

**Bit-identical parity with the reference engine is a hard contract**,
verified by ``tests/test_packed_engine.py`` and the cross-engine
property suite: for any op sequence, a ``PackedCache`` must produce the
same hits, misses, fills, eviction victims (same way!), states and
stats as a ``Cache`` built with the same parameters — including the
reference quirks (LRU prefers an untouched occupied way in ascending
way order; the per-set random RNG is seeded ``seed + set_index + 1``
and consumes one ``choice`` per eviction).

:class:`PackedHierarchy` mirrors :class:`~repro.cache.hierarchy.CacheHierarchy`
(L1I + L1D + inclusive L2) on top of packed caches, exposing the same
coherence-side API so the reference directory controller drives packed
and reference hierarchies identically.
"""

from __future__ import annotations

import random
from array import array
from typing import Dict, Iterator, List, Optional

from repro.cache.cache import Cache, CacheLine, CacheStats
from repro.cache.hierarchy import AccessResult, EvictedLine, HitLevel
from repro.cache.mshr import MshrFile
from repro.coherence.states import LineState
from repro.errors import ConfigurationError
from repro.memory.address import is_power_of_two

# ----------------------------------------------------------------------
# MOESI state encoding
# ----------------------------------------------------------------------
#: Packed state codes.  INVALID must be 0 so a zeroed ``states`` array is
#: an empty cache.
STATE_INVALID = 0
STATE_SHARED = 1
STATE_OWNED = 2
STATE_EXCLUSIVE = 3
STATE_MODIFIED = 4

#: Enum -> code and code -> enum translations.
STATE_TO_CODE: Dict[LineState, int] = {
    LineState.INVALID: STATE_INVALID,
    LineState.SHARED: STATE_SHARED,
    LineState.OWNED: STATE_OWNED,
    LineState.EXCLUSIVE: STATE_EXCLUSIVE,
    LineState.MODIFIED: STATE_MODIFIED,
}
CODE_TO_STATE = (
    LineState.INVALID,
    LineState.SHARED,
    LineState.OWNED,
    LineState.EXCLUSIVE,
    LineState.MODIFIED,
)

#: Per-code predicate tables mirroring the ``LineState`` properties.
CODE_CAN_WRITE = (False, False, False, True, True)  # M, E
CODE_IS_DIRTY = (False, False, True, False, True)  # M, O
CODE_IS_OWNER = (False, False, True, True, True)  # M, O, E

#: Code-level ``LineState.after_remote_read`` transition table
#: (M -> O, E -> S, O/S stay; INVALID has no legal remote read and maps
#: to 0 only so the table is total).
CODE_AFTER_REMOTE_READ = (
    STATE_INVALID,
    STATE_SHARED,
    STATE_OWNED,
    STATE_SHARED,
    STATE_OWNED,
)

#: Replacement policy kinds (`PackedCache.kind`).
POLICY_LRU = 0
POLICY_PLRU = 1
POLICY_RANDOM = 2
_POLICY_KINDS = {"lru": POLICY_LRU, "plru": POLICY_PLRU, "random": POLICY_RANDOM}

#: Access classification codes returned by
#: :meth:`PackedHierarchy.access_fast`.  Codes below ``ACCESS_MISS`` are
#: hits; codes above are upgrades (present but not writable).
ACCESS_HIT_L1 = 0
ACCESS_HIT_L2 = 1
ACCESS_MISS = 2
ACCESS_UPGRADE_L1 = 3
ACCESS_UPGRADE_L2 = 4


# ----------------------------------------------------------------------
# Tree-PLRU helpers (bit-word form of replacement.TreePlruPolicy)
# ----------------------------------------------------------------------
def plru_touch(bits: int, way: int, associativity: int) -> int:
    """Return the PLRU bit word after touching *way* (points away from it)."""
    node = 1
    span = associativity
    base = 0
    while span > 1:
        half = span >> 1
        if way < base + half:
            bits |= 1 << node  # point away: to the right half
            node <<= 1
        else:
            bits &= ~(1 << node)  # point to the left half
            node = (node << 1) | 1
            base += half
        span = half
    return bits


def plru_victim(bits: int, associativity: int) -> int:
    """Return the way the PLRU bit word points at (for a full set)."""
    node = 1
    span = associativity
    base = 0
    while span > 1:
        half = span >> 1
        if (bits >> node) & 1 == 0:
            node <<= 1
        else:
            node = (node << 1) | 1
            base += half
        span = half
    return base


class PackedCache:
    """A set-associative cache stored in flat arrays.

    Construction parameters and validation match
    :class:`~repro.cache.cache.Cache` exactly.  The public API mirrors
    the reference cache, with two documented differences:

    * ``lookup``/``probe``/``resident_lines`` return freshly built
      :class:`~repro.cache.cache.CacheLine` *views* — mutating them does
      not change cache state (use :meth:`set_state`/:meth:`invalidate`);
    * ``stats`` is a property materialising a
      :class:`~repro.cache.cache.CacheStats` from the flat counters, so
      it too is a read-only snapshot.
    """

    __slots__ = (
        "name",
        "size_bytes",
        "associativity",
        "line_size",
        "set_count",
        "set_mask",
        "line_shift",
        "kind",
        "tags",
        "states",
        "stamps",
        "stamp",
        "plru_bits",
        "_rng_seed",
        "_rngs",
        "hits",
        "misses",
        "fills",
        "evictions",
        "dirty_evictions",
        "invalidations_received",
        "upgrades",
    )

    def __init__(
        self,
        name: str,
        size_bytes: int,
        associativity: int,
        line_size: int = 64,
        replacement: str = "lru",
        seed: int = 0,
    ) -> None:
        if size_bytes <= 0:
            raise ConfigurationError("cache size must be positive")
        if associativity <= 0:
            raise ConfigurationError("associativity must be positive")
        if not is_power_of_two(line_size):
            raise ConfigurationError("line size must be a power of two")
        if size_bytes % (associativity * line_size) != 0:
            raise ConfigurationError(
                f"cache {name}: size {size_bytes} not divisible by "
                f"associativity*line_size ({associativity * line_size})"
            )
        sets = size_bytes // (associativity * line_size)
        if not is_power_of_two(sets):
            raise ConfigurationError(
                f"cache {name}: set count {sets} must be a power of two"
            )
        try:
            kind = _POLICY_KINDS[replacement]
        except KeyError:
            raise ConfigurationError(
                f"unknown replacement policy {replacement!r}; expected one of "
                f"('lru', 'plru', 'random')"
            ) from None
        if kind == POLICY_PLRU and associativity & (associativity - 1) != 0:
            raise ConfigurationError("tree PLRU needs power-of-two associativity")

        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_size = line_size
        self.set_count = sets
        self.set_mask = sets - 1
        self.line_shift = line_size.bit_length() - 1
        self.kind = kind

        capacity = sets * associativity
        self.tags = array("q", [-1]) * capacity
        self.states = bytearray(capacity)
        self.stamps = array("q", [0]) * capacity
        self.stamp = 0
        self.plru_bits: List[int] = [0] * sets if kind == POLICY_PLRU else []
        # Reference parity: ReplacementPolicyFactory seeds set i's RNG
        # with ``seed + i + 1`` (its counter pre-increments).  RNGs are
        # created lazily — their state depends only on how many victim
        # choices the set has made, never on creation time.
        self._rng_seed = seed
        self._rngs: Dict[int, random.Random] = {}

        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.evictions = 0
        self.dirty_evictions = 0
        self.invalidations_received = 0
        self.upgrades = 0

    # ------------------------------------------------------------------
    # Geometry / introspection
    # ------------------------------------------------------------------
    @property
    def capacity_lines(self) -> int:
        """Total number of lines the cache can hold."""
        return self.set_count * self.associativity

    @property
    def stats(self) -> CacheStats:
        """Read-only snapshot of the counters as a ``CacheStats``."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            fills=self.fills,
            evictions=self.evictions,
            dirty_evictions=self.dirty_evictions,
            invalidations_received=self.invalidations_received,
            upgrades=self.upgrades,
        )

    def set_index(self, line_address: int) -> int:
        """Return the set index for a line-aligned physical address."""
        return (line_address >> self.line_shift) & self.set_mask

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Serializable snapshot of every mutable field of this cache.

        Covers the flat arrays (tags, MOESI state codes, LRU stamps),
        the global stamp counter, per-set PLRU words, the states of all
        lazily created per-set RNGs (keyed by set index — RNGs never
        consulted are omitted, preserving lazy-creation semantics), and
        the seven stat counters.
        """
        return {
            "tags": self.tags.tobytes(),
            "states": bytes(self.states),
            "stamps": self.stamps.tobytes(),
            "stamp": self.stamp,
            "plru_bits": list(self.plru_bits),
            "rngs": {idx: rng.getstate() for idx, rng in self._rngs.items()},
            "counters": (
                self.hits,
                self.misses,
                self.fills,
                self.evictions,
                self.dirty_evictions,
                self.invalidations_received,
                self.upgrades,
            ),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot in place.

        The backing ``tags``/``states``/``stamps`` buffers are updated
        with equal-length slice assignment and never reallocated, so
        zero-copy numpy views bound over them by the batched engine stay
        attached to live storage.
        """
        tags = array("q")
        tags.frombytes(state["tags"])
        stamps = array("q")
        stamps.frombytes(state["stamps"])
        if len(tags) != len(self.tags) or len(state["states"]) != len(self.states):
            raise ConfigurationError(
                f"cache {self.name}: checkpoint does not match this geometry"
            )
        self.tags[:] = tags
        self.states[:] = state["states"]
        self.stamps[:] = stamps
        self.stamp = state["stamp"]
        self.plru_bits[:] = state["plru_bits"]
        self._rngs.clear()
        for idx, rng_state in state["rngs"].items():
            rng = random.Random()
            rng.setstate(rng_state)
            self._rngs[idx] = rng
        (
            self.hits,
            self.misses,
            self.fills,
            self.evictions,
            self.dirty_evictions,
            self.invalidations_received,
            self.upgrades,
        ) = state["counters"]

    # ------------------------------------------------------------------
    # Internal packed primitives
    # ------------------------------------------------------------------
    def find(self, line_address: int) -> int:
        """Return the flat slot of a resident line, or ``-1``.

        Occupied slots always hold a valid line (invalidation frees the
        slot), so a tag match alone identifies residency.
        """
        base = (
            (line_address >> self.line_shift) & self.set_mask
        ) * self.associativity
        try:
            return self.tags.index(line_address, base, base + self.associativity)
        except ValueError:
            return -1

    def touch(self, slot: int) -> None:
        """Record a hit/fill of *slot*, updating replacement state."""
        kind = self.kind
        if kind == POLICY_LRU:
            stamp = self.stamp + 1
            self.stamp = stamp
            self.stamps[slot] = stamp
        elif kind == POLICY_PLRU:
            assoc = self.associativity
            set_index, way = divmod(slot, assoc)
            self.plru_bits[set_index] = plru_touch(
                self.plru_bits[set_index], way, assoc
            )
        # POLICY_RANDOM keeps no recency state.

    def _reset(self, slot: int) -> None:
        """Forget recency information for *slot* (after an invalidation)."""
        if self.kind == POLICY_LRU:
            self.stamps[slot] = 0

    def victim_way(self, set_index: int) -> int:
        """Choose the eviction victim way of a *full* set.

        Reproduces the reference policies exactly: LRU prefers an
        occupied-but-never-touched way in ascending way order, then the
        minimum stamp; PLRU walks the tree bits; random consumes one
        ``Random.choice`` from the per-set RNG.
        """
        kind = self.kind
        assoc = self.associativity
        if kind == POLICY_LRU:
            stamps = self.stamps
            base = set_index * assoc
            best_way = 0
            best = stamps[base]
            for way in range(assoc):
                stamp = stamps[base + way]
                if stamp == 0:
                    return way
                if stamp < best:
                    best = stamp
                    best_way = way
            return best_way
        if kind == POLICY_PLRU:
            return plru_victim(self.plru_bits[set_index], assoc)
        rng = self._rngs.get(set_index)
        if rng is None:
            rng = self._rngs[set_index] = random.Random(
                self._rng_seed + set_index + 1
            )
        return rng.choice(range(assoc))

    # ------------------------------------------------------------------
    # Reference-compatible API
    # ------------------------------------------------------------------
    def _view(self, slot: int) -> CacheLine:
        return CacheLine(
            line_address=self.tags[slot],
            state=CODE_TO_STATE[self.states[slot]],
            way=slot % self.associativity,
        )

    def lookup(
        self, line_address: int, update_stats: bool = True
    ) -> Optional[CacheLine]:
        """Return a view of the resident line, or ``None`` on a miss."""
        slot = self.find(line_address)
        if slot >= 0:
            if update_stats:
                self.hits += 1
                self.touch(slot)
            return self._view(slot)
        if update_stats:
            self.misses += 1
        return None

    def probe(self, line_address: int) -> Optional[CacheLine]:
        """Coherence probe: look up without touching stats or recency."""
        slot = self.find(line_address)
        return self._view(slot) if slot >= 0 else None

    def contains(self, line_address: int) -> bool:
        """True when the line is resident in a valid state."""
        return self.find(line_address) >= 0

    def fill(self, line_address: int, state: LineState) -> Optional[CacheLine]:
        """Install a line, returning the evicted victim line if any."""
        if state is LineState.INVALID:
            raise ConfigurationError("cannot fill a line in the INVALID state")
        code = STATE_TO_CODE[state]
        slot = self.find(line_address)
        if slot >= 0:
            # Refill of a resident line is a state change, not an allocation.
            self.states[slot] = code
            self.touch(slot)
            return None
        victim = self._fill_code(line_address, code)
        if victim is None:
            return None
        return CacheLine(line_address=victim[0], state=CODE_TO_STATE[victim[1]], way=victim[2])

    def _fill_code(self, line_address: int, code: int):
        """Allocate a non-resident line; return ``(tag, code, way)`` victim or None.

        Hot-path form of :meth:`fill`: no enum translation, no view
        allocation unless a victim exists.  The caller guarantees the
        line is not resident.
        """
        assoc = self.associativity
        base = ((line_address >> self.line_shift) & self.set_mask) * assoc
        tags = self.tags
        victim = None
        try:
            slot = tags.index(-1, base, base + assoc)
        except ValueError:
            way = self.victim_way(base // assoc)
            slot = base + way
            victim = (tags[slot], self.states[slot], way)
            self._reset(slot)
            self.evictions += 1
            if CODE_IS_DIRTY[victim[1]]:
                self.dirty_evictions += 1
        tags[slot] = line_address
        self.states[slot] = code
        self.touch(slot)
        self.fills += 1
        return victim

    def invalidate(self, line_address: int) -> Optional[CacheLine]:
        """Invalidate a line; return its pre-invalidation view if resident."""
        slot = self.find(line_address)
        if slot < 0:
            return None
        line = self._view(slot)
        self.tags[slot] = -1
        self.states[slot] = STATE_INVALID
        self._reset(slot)
        self.invalidations_received += 1
        return line

    def set_state(self, line_address: int, state: LineState) -> CacheLine:
        """Change the coherence state of a resident line."""
        slot = self.find(line_address)
        if slot < 0:
            raise ConfigurationError(
                f"{self.name}: cannot change state of non-resident line "
                f"{line_address:#x}"
            )
        if state is LineState.INVALID:
            raise ConfigurationError("use invalidate() to drop a line")
        code = STATE_TO_CODE[state]
        if CODE_CAN_WRITE[code] and not CODE_CAN_WRITE[self.states[slot]]:
            self.upgrades += 1
        self.states[slot] = code
        return self._view(slot)

    # ------------------------------------------------------------------
    def resident_lines(self) -> Iterator[CacheLine]:
        """Iterate views of all valid resident lines (unspecified order)."""
        tags = self.tags
        for slot in range(len(tags)):
            if tags[slot] >= 0:
                yield self._view(slot)

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return len(self.tags) - self.tags.count(-1)

    def flush(self) -> List[CacheLine]:
        """Drop every resident line and return the dirty ones."""
        dirty: List[CacheLine] = []
        tags = self.tags
        states = self.states
        for slot in range(len(tags)):
            if tags[slot] < 0:
                continue
            if CODE_IS_DIRTY[states[slot]]:
                dirty.append(self._view(slot))
            tags[slot] = -1
            states[slot] = STATE_INVALID
            self._reset(slot)
        return dirty

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedCache({self.name!r}, {self.size_bytes}B, "
            f"{self.associativity}-way, {self.set_count} sets)"
        )


class PackedHierarchy:
    """L1I + L1D + inclusive private L2 over :class:`PackedCache` arrays.

    Mirrors :class:`~repro.cache.hierarchy.CacheHierarchy`'s constructor,
    seeds and coherence-side API, so the reference directory controller
    and the statistics collector drive both interchangeably.  The
    core-side access path is :meth:`access_fast`, an int-coded
    classification used by the packed machine's inlined hot loop;
    :meth:`access` wraps it in the reference ``AccessResult`` shape.
    """

    def __init__(
        self,
        core_id: int,
        l1i_size: int = 32 * 1024,
        l1d_size: int = 32 * 1024,
        l1_assoc: int = 4,
        l2_size: int = 256 * 1024,
        l2_assoc: int = 4,
        line_size: int = 64,
        replacement: str = "lru",
        mshr_capacity: int = 16,
    ) -> None:
        if l2_size < l1d_size or l2_size < l1i_size:
            raise ConfigurationError(
                "inclusive L2 must be at least as large as each L1"
            )
        self.core_id = core_id
        self.line_size = line_size
        self.l1i = PackedCache(
            f"L1I[{core_id}]", l1i_size, l1_assoc, line_size, replacement,
            seed=core_id * 3 + 1,
        )
        self.l1d = PackedCache(
            f"L1D[{core_id}]", l1d_size, l1_assoc, line_size, replacement,
            seed=core_id * 3 + 2,
        )
        self.l2 = PackedCache(
            f"L2[{core_id}]", l2_size, l2_assoc, line_size, replacement,
            seed=core_id * 3 + 3,
        )
        self.mshrs = MshrFile(mshr_capacity)

    # ------------------------------------------------------------------
    # Core-side access path
    # ------------------------------------------------------------------
    def access_fast(
        self,
        line_address: int,
        is_write: bool,
        is_instruction: bool,
        l1_slot: Optional[int] = None,
    ) -> int:
        """Classify and service one access; return an ``ACCESS_*`` code.

        Hit-path side effects (stat counters, recency, L1 refills, the
        silent L2 write upgrade to MODIFIED) are applied here, exactly
        as the reference hierarchy would.  *l1_slot* lets the machine's
        inlined hot loop pass an L1 scan result it already computed
        (``-1`` = scanned and absent).

        One deliberate divergence from the reference: the L2 inclusion
        probe on an L1 *read* hit — whose only effect is raising on a
        corrupted hierarchy — is skipped; the cross-engine property
        suite and the coherence invariant checker cover inclusion
        instead, and the hit path stays two array scans shorter.
        """
        l1 = self.l1i if is_instruction else self.l1d
        if l1_slot is None:
            l1_slot = l1.find(line_address)
        if l1_slot >= 0:
            l1.hits += 1
            l1.touch(l1_slot)
            if not is_write:
                return ACCESS_HIT_L1
            l2 = self.l2
            l2_slot = l2.find(line_address)
            if l2_slot < 0:
                raise ConfigurationError(
                    f"inclusion violated: line {line_address:#x} in "
                    f"{l1.name} but not in {l2.name}"
                )
            if CODE_CAN_WRITE[l2.states[l2_slot]]:
                l2.states[l2_slot] = STATE_MODIFIED
                return ACCESS_HIT_L1
            # Present but not writable: upgrade needed.
            return ACCESS_UPGRADE_L1

        l1.misses += 1
        l2 = self.l2
        l2_slot = l2.find(line_address)
        if l2_slot >= 0:
            l2.hits += 1
            l2.touch(l2_slot)
            code = l2.states[l2_slot]
            if not is_write:
                l1._fill_code(line_address, code)
                return ACCESS_HIT_L2
            if CODE_CAN_WRITE[code]:
                l2.states[l2_slot] = STATE_MODIFIED
                l1._fill_code(line_address, STATE_MODIFIED)
                return ACCESS_HIT_L2
            return ACCESS_UPGRADE_L2

        l2.misses += 1
        return ACCESS_MISS

    def access(
        self, line_address: int, is_write: bool, is_instruction: bool = False
    ) -> AccessResult:
        """Reference-shaped access entry point (compat for tests/tools)."""
        code = self.access_fast(line_address, is_write, is_instruction)
        if code in (ACCESS_HIT_L1, ACCESS_UPGRADE_L1):
            level = HitLevel.L1
        elif code in (ACCESS_HIT_L2, ACCESS_UPGRADE_L2):
            level = HitLevel.L2
        else:
            level = HitLevel.MISS
        return AccessResult(
            level=level,
            needs_coherence=code >= ACCESS_MISS,
            needs_upgrade=code > ACCESS_MISS,
            line_address=line_address,
        )

    def fill(
        self, line_address: int, state: LineState, is_instruction: bool = False
    ) -> List[EvictedLine]:
        """Install a line returned by the directory, in *state*."""
        evicted: List[EvictedLine] = []
        victim = self.l2.fill(line_address, state)
        if victim is not None:
            self._enforce_inclusion(victim.line_address)
            evicted.append(EvictedLine(victim.line_address, victim.state))
        l1 = self.l1i if is_instruction else self.l1d
        l1.fill(line_address, state)
        return evicted

    # ------------------------------------------------------------------
    # Directory-side probes (identical contract to CacheHierarchy)
    # ------------------------------------------------------------------
    def coherence_state(self, line_address: int) -> LineState:
        """Return the coherence-visible state of a line (L2 image)."""
        slot = self.l2.find(line_address)
        return CODE_TO_STATE[self.l2.states[slot]] if slot >= 0 else LineState.INVALID

    def holds_line(self, line_address: int) -> bool:
        """True when the line is resident in any valid state."""
        return self.l2.find(line_address) >= 0

    def handle_invalidate(self, line_address: int) -> Optional[LineState]:
        """Invalidate a line everywhere; return its prior L2 state if held."""
        self._enforce_inclusion(line_address)
        line = self.l2.invalidate(line_address)
        return line.state if line is not None else None

    def handle_downgrade(self, line_address: int) -> Optional[LineState]:
        """Downgrade an owned line after a remote read; return new state."""
        slot = self.l2.find(line_address)
        if slot < 0:
            return None
        new_state = CODE_TO_STATE[self.l2.states[slot]].after_remote_read()
        self.l2.set_state(line_address, new_state)
        for l1 in (self.l1i, self.l1d):
            if l1.find(line_address) >= 0:
                l1.set_state(line_address, new_state)
        return new_state

    # ------------------------------------------------------------------
    # Statistics helpers
    # ------------------------------------------------------------------
    def l2_misses(self) -> int:
        """Number of L2 misses so far (the quantity in Figure 3e)."""
        return self.l2.misses

    def total_accesses(self) -> int:
        """Total L1 lookups presented by the core."""
        return (
            self.l1i.hits + self.l1i.misses + self.l1d.hits + self.l1d.misses
        )

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Serializable snapshot: all three caches plus the MSHR file."""
        return {
            "l1i": self.l1i.state_dict(),
            "l1d": self.l1d.state_dict(),
            "l2": self.l2.state_dict(),
            "mshrs": self.mshrs.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        self.l1i.load_state_dict(state["l1i"])
        self.l1d.load_state_dict(state["l1d"])
        self.l2.load_state_dict(state["l2"])
        self.mshrs.load_state_dict(state["mshrs"])

    # ------------------------------------------------------------------
    def _enforce_inclusion(self, line_address: int) -> None:
        for l1 in (self.l1i, self.l1d):
            l1.invalidate(line_address)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedHierarchy(core={self.core_id})"
