"""Physical page frame pools, one per NUMA node.

The operating-system model hands out physical frames from per-node pools.
First-touch allocation prefers the pool of the touching core's node and
spills to other nodes when that pool is exhausted — the paper relies on
this spill behaviour in the multi-process experiments, where "capacity
limitations at a single memory controller means some frequently used data
needs to be allocated remotely".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import AllocationError, ConfigurationError
from repro.memory.address import AddressMap


@dataclass
class FramePoolStats:
    """Allocation counters for one node's frame pool."""

    allocated: int = 0
    freed: int = 0
    spills_in: int = 0


class FramePool:
    """Free list of physical page frames belonging to one node."""

    def __init__(self, node: int, frames: range) -> None:
        self.node = node
        self._free: List[int] = list(frames)
        self._free.reverse()  # allocate low frame numbers first
        self.capacity = len(self._free)
        self.stats = FramePoolStats()

    @property
    def free_count(self) -> int:
        """Number of frames still available."""
        return len(self._free)

    @property
    def is_exhausted(self) -> bool:
        """True when no frame can be allocated from this pool."""
        return not self._free

    def allocate(self, spill: bool = False) -> int:
        """Allocate one frame; raise :class:`AllocationError` when empty."""
        if not self._free:
            raise AllocationError(f"node {self.node} frame pool exhausted")
        frame = self._free.pop()
        self.stats.allocated += 1
        if spill:
            self.stats.spills_in += 1
        return frame

    def release(self, frame: int) -> None:
        """Return a frame to the pool."""
        self._free.append(frame)
        self.stats.freed += 1


class FrameAllocator:
    """All per-node frame pools plus the spill policy between them.

    Parameters
    ----------
    address_map:
        Machine geometry; defines which frames belong to which node.
    frames_per_node:
        Optional cap on the usable frames per node.  The full 128 MB per
        node of the paper's machine is far more than any synthetic
        workload touches, so experiments that need memory pressure (the
        multi-process study) shrink the usable pool instead of inflating
        the workload.
    """

    def __init__(
        self,
        address_map: AddressMap,
        frames_per_node: Optional[int] = None,
    ) -> None:
        self.address_map = address_map
        if frames_per_node is not None and frames_per_node <= 0:
            raise ConfigurationError("frames_per_node must be positive")
        self.pools: Dict[int, FramePool] = {}
        for node in range(address_map.node_count):
            frames = address_map.node_frame_range(node)
            if frames_per_node is not None:
                limit = min(frames_per_node, len(frames))
                frames = range(frames.start, frames.start + limit)
            self.pools[node] = FramePool(node, frames)

    # ------------------------------------------------------------------
    def allocate_on(self, preferred_node: int) -> int:
        """Allocate a frame on *preferred_node*, spilling if necessary.

        The spill target is the node with the most free frames, mirroring
        a simple OS balancing heuristic.  Raises when every pool is empty.
        """
        pool = self.pools.get(preferred_node)
        if pool is None:
            raise ConfigurationError(f"unknown node {preferred_node}")
        if not pool.is_exhausted:
            return pool.allocate()
        fallback = self._most_free_pool()
        if fallback is None:
            raise AllocationError("all frame pools exhausted")
        return fallback.allocate(spill=True)

    def release(self, frame: int) -> None:
        """Return a frame to its owning node's pool."""
        node = self.address_map.home_node_of_frame(frame)
        self.pools[node].release(frame)

    def free_frames(self, node: int) -> int:
        """Number of free frames remaining on *node*."""
        return self.pools[node].free_count

    def spill_count(self) -> int:
        """Total number of allocations that had to spill to a remote node."""
        return sum(pool.stats.spills_in for pool in self.pools.values())

    # ------------------------------------------------------------------
    def _most_free_pool(self) -> Optional[FramePool]:
        best: Optional[FramePool] = None
        for pool in self.pools.values():
            if pool.is_exhausted:
                continue
            if best is None or pool.free_count > best.free_count:
                best = pool
        return best
