"""Per-process page tables mapping virtual pages to physical frames.

The page table records, for each mapped virtual page, the physical frame,
the node the frame lives on, the core that first touched the page, and a
touch counter.  The ALLARM detection scheme itself is *stateless* (the
directory only compares the requester's node with its own), but the page
table lets the workload layer, the next-touch policy and the analysis
figures reason about where data ended up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional

from repro.errors import AddressError


@dataclass(slots=True)
class PageMapping:
    """One virtual-page to physical-frame mapping.

    Slotted: ``touches`` is incremented on every memoized translation,
    i.e. once per simulated access.
    """

    virtual_page: int
    physical_frame: int
    node: int
    first_toucher: int
    touches: int = 0
    migrations: int = 0


@dataclass(slots=True)
class PageTableStats:
    """Counters describing page-table activity (slotted: hot-path counters)."""

    mappings_created: int = 0
    lookups: int = 0
    faults: int = 0
    migrations: int = 0


class PageTable:
    """Virtual-to-physical mapping for a single simulated process."""

    def __init__(
        self,
        process_id: int = 0,
        page_size: int = 4096,
        on_invalidate: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self.process_id = process_id
        self.page_size = page_size
        self.stats = PageTableStats()
        self._mappings: Dict[int, PageMapping] = {}
        #: Called with (process_id, virtual_page) whenever an existing
        #: mapping changes or disappears, so translation caches layered
        #: above (the NUMA allocator's memo) can drop stale entries.
        self._on_invalidate = on_invalidate

    # ------------------------------------------------------------------
    def is_mapped(self, virtual_page: int) -> bool:
        """True when *virtual_page* already has a physical frame."""
        return virtual_page in self._mappings

    def lookup(self, virtual_page: int) -> Optional[PageMapping]:
        """Return the mapping for *virtual_page*, counting the lookup."""
        self.stats.lookups += 1
        mapping = self._mappings.get(virtual_page)
        if mapping is None:
            self.stats.faults += 1
        else:
            mapping.touches += 1
        return mapping

    def map_page(
        self, virtual_page: int, physical_frame: int, node: int, first_toucher: int
    ) -> PageMapping:
        """Create a mapping; raises if the page is already mapped."""
        if virtual_page in self._mappings:
            raise AddressError(f"virtual page {virtual_page} already mapped")
        mapping = PageMapping(
            virtual_page=virtual_page,
            physical_frame=physical_frame,
            node=node,
            first_toucher=first_toucher,
        )
        self._mappings[virtual_page] = mapping
        self.stats.mappings_created += 1
        return mapping

    def remap_page(
        self, virtual_page: int, physical_frame: int, node: int
    ) -> PageMapping:
        """Migrate an existing page to a new frame (page migration support).

        Section II-E notes that high-end NUMA systems support page
        migration after thread migration; the thread-migration stress
        bench uses this hook.
        """
        mapping = self._mappings.get(virtual_page)
        if mapping is None:
            raise AddressError(f"virtual page {virtual_page} is not mapped")
        mapping.physical_frame = physical_frame
        mapping.node = node
        mapping.migrations += 1
        self.stats.migrations += 1
        if self._on_invalidate is not None:
            self._on_invalidate(self.process_id, virtual_page)
        return mapping

    def unmap(self, virtual_page: int) -> PageMapping:
        """Remove a mapping (used when tearing down a process)."""
        mapping = self._mappings.pop(virtual_page, None)
        if mapping is None:
            raise AddressError(f"virtual page {virtual_page} is not mapped")
        if self._on_invalidate is not None:
            self._on_invalidate(self.process_id, virtual_page)
        return mapping

    # ------------------------------------------------------------------
    def mappings(self) -> Iterator[PageMapping]:
        """Iterate over all current mappings."""
        return iter(self._mappings.values())

    def pages_on_node(self, node: int) -> int:
        """Number of this process's pages resident on *node*."""
        return sum(1 for m in self._mappings.values() if m.node == node)

    def mapped_pages(self) -> int:
        """Total number of mapped virtual pages."""
        return len(self._mappings)
