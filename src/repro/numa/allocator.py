"""NUMA memory allocation policies and the virtual→physical translator.

ALLARM's private-data detection relies entirely on the operating system's
NUMA placement policy: under first-touch allocation, thread-local data
lands on the toucher's node, so a request arriving at a directory from its
own local core is assumed private (Section II-A of the paper).  This
module implements that OS behaviour:

* **first-touch** — map a page on the node of the first core to access it
  (the default of mainstream operating systems, and of the paper).
* **next-touch** — like first-touch, but pages marked for next-touch are
  re-homed to the node of the next core to access them (the common fix
  for init-by-one-thread / use-by-another patterns the paper mentions).
* **interleaved** — round-robin pages across nodes (a pessimal baseline
  for ALLARM, used by the ablation benches).
* **fixed** — every page on a single node (models an un-NUMA-aware OS).

The allocator also performs translation: workloads issue virtual
addresses, and :meth:`NumaAllocator.translate` returns the physical
address whose home node determines the responsible directory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.memory.address import AddressMap
from repro.numa.frames import FrameAllocator
from repro.numa.page_table import PageTable


@dataclass
class AllocatorStats:
    """Counters describing placement decisions."""

    first_touch_local: int = 0
    spilled_remote: int = 0
    next_touch_migrations: int = 0
    interleaved: int = 0
    fixed: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {
            "first_touch_local": self.first_touch_local,
            "spilled_remote": self.spilled_remote,
            "next_touch_migrations": self.next_touch_migrations,
            "interleaved": self.interleaved,
            "fixed": self.fixed,
        }


class PlacementPolicy:
    """Chooses the preferred node for a newly touched virtual page."""

    name = "base"

    def preferred_node(
        self, toucher_node: int, virtual_page: int, node_count: int
    ) -> int:
        """Return the node on which the page should be placed."""
        raise NotImplementedError


class FirstTouchPolicy(PlacementPolicy):
    """Place each page on the node of the core that first touches it."""

    name = "first-touch"

    def preferred_node(
        self, toucher_node: int, virtual_page: int, node_count: int
    ) -> int:
        return toucher_node


class InterleavedPolicy(PlacementPolicy):
    """Round-robin pages over all nodes by virtual page number."""

    name = "interleaved"

    def preferred_node(
        self, toucher_node: int, virtual_page: int, node_count: int
    ) -> int:
        return virtual_page % node_count


class FixedNodePolicy(PlacementPolicy):
    """Place every page on one fixed node."""

    name = "fixed"

    def __init__(self, node: int = 0) -> None:
        self.node = node

    def preferred_node(
        self, toucher_node: int, virtual_page: int, node_count: int
    ) -> int:
        if self.node >= node_count:
            raise ConfigurationError(
                f"fixed node {self.node} outside machine of {node_count} nodes"
            )
        return self.node


_POLICIES: Dict[str, Callable[[], PlacementPolicy]] = {
    "first-touch": FirstTouchPolicy,
    "next-touch": FirstTouchPolicy,  # placement is first-touch; migration is extra
    "interleaved": InterleavedPolicy,
    "fixed": FixedNodePolicy,
}


def available_placement_policies() -> Tuple[str, ...]:
    """Names accepted by :class:`NumaAllocator`."""
    return tuple(sorted(_POLICIES))


class NumaAllocator:
    """OS memory-allocation model: page placement plus translation.

    Parameters
    ----------
    address_map:
        Physical memory geometry of the machine.
    policy:
        One of :func:`available_placement_policies`.
    core_to_node:
        Mapping from core id to NUMA node (identity for the paper's
        one-core-per-node machine).
    frames_per_node:
        Optional cap on usable frames per node, to create memory pressure.
    """

    def __init__(
        self,
        address_map: AddressMap,
        policy: str = "first-touch",
        core_to_node: Optional[Dict[int, int]] = None,
        frames_per_node: Optional[int] = None,
    ) -> None:
        if policy not in _POLICIES:
            raise ConfigurationError(
                f"unknown placement policy {policy!r}; "
                f"expected one of {available_placement_policies()}"
            )
        self.address_map = address_map
        self.policy_name = policy
        self.policy = _POLICIES[policy]()
        self.core_to_node = core_to_node or {
            n: n for n in range(address_map.node_count)
        }
        self.frames = FrameAllocator(address_map, frames_per_node)
        self.page_tables: Dict[int, PageTable] = {}
        self.stats = AllocatorStats()
        self._next_touch_pending: Set[Tuple[int, int]] = set()
        self._page_size = address_map.page_size
        # Memoized translations: (process_id, virtual_page) -> (frame base
        # address, mapping, page-table stats).  This is the access-path
        # fast lane: once a page is mapped and not pending next-touch
        # re-homing, its translation is a single dict probe instead of a
        # page-table walk.  The mapping/stats objects ride along so the
        # fast path maintains the exact same counters as the slow path.
        self._translation_cache: Dict[Tuple[int, int], Tuple[int, object, object]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def page_table(self, process_id: int) -> PageTable:
        """Return (creating if needed) the page table of *process_id*."""
        table = self.page_tables.get(process_id)
        if table is None:
            table = PageTable(
                process_id,
                self.address_map.page_size,
                on_invalidate=self._invalidate_translation,
            )
            self.page_tables[process_id] = table
        return table

    def _invalidate_translation(self, process_id: int, vpage: int) -> None:
        """Drop a memoized translation when its mapping changes or dies."""
        self._translation_cache.pop((process_id, vpage), None)

    def node_of_core(self, core: int) -> int:
        """Return the NUMA node (affinity domain) of *core*."""
        try:
            return self.core_to_node[core]
        except KeyError:
            raise ConfigurationError(f"core {core} has no affinity domain")

    def translate(self, process_id: int, core: int, vaddr: int) -> int:
        """Translate a virtual address, allocating the page on first touch."""
        page_size = self._page_size
        vpage = vaddr // page_size
        entry = self._translation_cache.get((process_id, vpage))
        if entry is not None:
            # Same affinity check the slow path performs via node_of_core:
            # a core outside the machine must fail even on a warm page.
            if core not in self.core_to_node:
                raise ConfigurationError(f"core {core} has no affinity domain")
            frame_base, mapping, table_stats = entry
            table_stats.lookups += 1
            mapping.touches += 1
            return frame_base + (vaddr - vpage * page_size)
        return self._translate_slow(process_id, core, vaddr, vpage)

    def _translate_slow(
        self, process_id: int, core: int, vaddr: int, vpage: int
    ) -> int:
        """Page-table walk: first touches, next-touch re-homing, memo fill."""
        offset = vaddr % self._page_size
        table = self.page_table(process_id)
        mapping = table.lookup(vpage)
        toucher_node = self.node_of_core(core)

        if mapping is None:
            mapping = self._map_new_page(table, vpage, core, toucher_node)
        elif (process_id, vpage) in self._next_touch_pending:
            mapping = self._apply_next_touch(table, vpage, toucher_node)

        frame_base = self.address_map.frame_base(mapping.physical_frame)
        if (process_id, vpage) not in self._next_touch_pending:
            self._translation_cache[(process_id, vpage)] = (
                frame_base,
                mapping,
                table.stats,
            )
        return frame_base + offset

    def home_node(self, paddr: int) -> int:
        """Return the directory responsible for a physical address."""
        return self.address_map.home_node(paddr)

    def mark_next_touch(self, process_id: int, virtual_pages) -> int:
        """Mark pages for next-touch re-homing; return how many were marked.

        Only meaningful when the allocator was built with the
        ``"next-touch"`` policy; marking is ignored otherwise so that
        workloads can call it unconditionally.
        """
        if self.policy_name != "next-touch":
            return 0
        count = 0
        for vpage in virtual_pages:
            self._next_touch_pending.add((process_id, vpage))
            # The page may be re-homed on its next touch, so its memoized
            # translation (if any) must not be served meanwhile.
            self._translation_cache.pop((process_id, vpage), None)
            count += 1
        return count

    def pages_on_node(self, node: int) -> int:
        """Total pages (across processes) resident on *node*."""
        return sum(t.pages_on_node(node) for t in self.page_tables.values())

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _map_new_page(
        self, table: PageTable, vpage: int, core: int, toucher_node: int
    ):
        preferred = self.policy.preferred_node(
            toucher_node, vpage, self.address_map.node_count
        )
        frame = self.frames.allocate_on(preferred)
        actual_node = self.address_map.home_node_of_frame(frame)
        mapping = table.map_page(vpage, frame, actual_node, first_toucher=core)
        self._count_placement(preferred, actual_node, toucher_node)
        return mapping

    def _apply_next_touch(self, table: PageTable, vpage: int, toucher_node: int):
        self._next_touch_pending.discard((table.process_id, vpage))
        mapping = table.lookup(vpage)
        if mapping is None:  # pragma: no cover - guarded by caller
            raise ConfigurationError("next-touch on unmapped page")
        if mapping.node == toucher_node:
            return mapping
        new_frame = self.frames.allocate_on(toucher_node)
        self.frames.release(mapping.physical_frame)
        actual_node = self.address_map.home_node_of_frame(new_frame)
        mapping = table.remap_page(vpage, new_frame, actual_node)
        self.stats.next_touch_migrations += 1
        return mapping

    def _count_placement(
        self, preferred: int, actual: int, toucher_node: int
    ) -> None:
        if self.policy_name in ("first-touch", "next-touch"):
            if actual == toucher_node:
                self.stats.first_touch_local += 1
            else:
                self.stats.spilled_remote += 1
        elif self.policy_name == "interleaved":
            self.stats.interleaved += 1
        else:
            self.stats.fixed += 1
