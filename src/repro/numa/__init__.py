"""NUMA OS model: frame pools, page tables and placement policies."""

from repro.numa.allocator import (
    AllocatorStats,
    FirstTouchPolicy,
    FixedNodePolicy,
    InterleavedPolicy,
    NumaAllocator,
    available_placement_policies,
)
from repro.numa.frames import FrameAllocator, FramePool
from repro.numa.page_table import PageMapping, PageTable

__all__ = [
    "NumaAllocator",
    "AllocatorStats",
    "FirstTouchPolicy",
    "InterleavedPolicy",
    "FixedNodePolicy",
    "available_placement_policies",
    "FrameAllocator",
    "FramePool",
    "PageTable",
    "PageMapping",
]
