"""Synthetic microbenchmark families beyond the paper's eight benchmarks.

The paper evaluates ALLARM on SPLASH2 and Parsec programs whose sharing
patterns cluster around a few shapes (read-shared producer data, halo
exchange, pipelines, power-law trees).  These four families isolate the
canonical sharing patterns the suite under-represents, so probe-filter
policies are exercised at the extremes rather than only on the blends the
paper happened to pick:

* **false-sharing** — every thread hammers writes into a region a few
  pages long.  At 64-byte-line granularity, independent counters packed
  onto shared lines are indistinguishable from genuine write sharing, so
  the directory sees the worst case: constant ownership ping-pong over a
  line set small enough that probe-filter capacity is irrelevant —
  isolating protocol latency from eviction effects.
* **migratory** — lock-style critical sections: ownership of a small
  lock-plus-data region migrates around the threads in bursts while the
  other threads spin-read (the ``"migratory"`` sharing mode of
  :mod:`repro.workloads.base`).  Classic directory-protocol torture test:
  every handoff is an invalidate plus a cache-to-cache transfer.
* **stream-scan** — all threads sequentially scan one table much larger
  than the caches, with rare writes.  Every miss is a capacity miss on
  read-shared data, the regime where ALLARM's local-allocation savings
  should be immaterial (the fluidanimate lesson, taken to its limit).
* **hotspot** — read-mostly power-law sharing: a table whose hot lines
  are read by every thread and written almost never, plus substantial
  thread-private working sets.  Under first-touch the table's pages
  stripe across all homes, giving wide multi-reader sharer sets — the
  state the probe filter is worst at tracking precisely.

Builders follow the same conventions as :mod:`repro.workloads.splash2`
and :mod:`repro.workloads.parsec` and are registered in
:mod:`repro.workloads.registry` under :data:`MICROBENCH_FAMILIES`.
"""

from __future__ import annotations

from repro.workloads.base import RegionSpec, WorkloadSpec

KB = 1024
MB = 1024 * 1024


def false_sharing(total_accesses: int = 200_000, seed: int = 301) -> WorkloadSpec:
    """False-sharing microbenchmark: all threads write a tiny shared region."""
    regions = (
        RegionSpec(
            name="locals",
            kind="private",
            bytes_per_instance=64 * KB,
            reuse="zipf",
            write_fraction=0.45,
        ),
        RegionSpec(
            name="packed_counters",
            kind="shared",
            bytes_per_instance=8 * KB,
            sharing="uniform",
            reuse="zipf",
            write_fraction=0.6,
        ),
    )
    mix = {"locals": 0.45, "packed_counters": 0.55}
    return WorkloadSpec(
        name="false-sharing",
        regions=regions,
        mix=mix,
        total_accesses=total_accesses,
        seed=seed,
        description="Per-thread counters packed onto shared lines, written by all",
    )


def migratory(total_accesses: int = 200_000, seed: int = 302) -> WorkloadSpec:
    """Migratory lock-style microbenchmark: bursty ownership handoff."""
    regions = (
        RegionSpec(
            name="locals",
            kind="private",
            bytes_per_instance=96 * KB,
            reuse="zipf",
            write_fraction=0.4,
        ),
        RegionSpec(
            name="locks",
            kind="shared",
            bytes_per_instance=4 * KB,
            sharing="migratory",
            reuse="zipf",
            write_fraction=0.55,
        ),
        RegionSpec(
            name="guarded",
            kind="shared",
            bytes_per_instance=128 * KB,
            sharing="migratory",
            reuse="zipf",
            write_fraction=0.4,
        ),
    )
    mix = {"locals": 0.4, "locks": 0.25, "guarded": 0.35}
    return WorkloadSpec(
        name="migratory",
        regions=regions,
        mix=mix,
        total_accesses=total_accesses,
        seed=seed,
        description="Lock-protected data whose ownership migrates thread to thread",
    )


def stream_scan(total_accesses: int = 200_000, seed: int = 303) -> WorkloadSpec:
    """Streaming-scan microbenchmark: shared sequential sweep of a big table."""
    regions = (
        RegionSpec(
            name="locals",
            kind="private",
            bytes_per_instance=32 * KB,
            reuse="zipf",
            write_fraction=0.4,
        ),
        RegionSpec(
            name="table",
            kind="shared",
            bytes_per_instance=16 * MB,
            sharing="uniform",
            reuse="sequential",
            write_fraction=0.04,
        ),
    )
    mix = {"locals": 0.2, "table": 0.8}
    return WorkloadSpec(
        name="stream-scan",
        regions=regions,
        mix=mix,
        total_accesses=total_accesses,
        seed=seed,
        description="All threads stream through a table far larger than the caches",
    )


def hotspot(total_accesses: int = 200_000, seed: int = 304) -> WorkloadSpec:
    """Read-mostly hotspot microbenchmark: hot lines read by everyone."""
    regions = (
        RegionSpec(
            name="locals",
            kind="private",
            bytes_per_instance=128 * KB,
            reuse="zipf",
            write_fraction=0.45,
        ),
        RegionSpec(
            name="hot_table",
            kind="shared",
            bytes_per_instance=2 * MB,
            sharing="zipf",
            reuse="zipf",
            write_fraction=0.02,
        ),
    )
    mix = {"locals": 0.4, "hot_table": 0.6}
    return WorkloadSpec(
        name="hotspot",
        regions=regions,
        mix=mix,
        total_accesses=total_accesses,
        seed=seed,
        description="Read-mostly table whose hot lines every thread keeps reading",
    )
