"""Multi-process (multi-programmed) workloads — Section III-B of the paper.

The paper's second study runs *two copies* of a SPLASH2 benchmark, each
using a single thread, co-ordinated to execute their regions of interest
together, and measures the time for both to finish.  There is essentially
no sharing between the two processes, which is the scenario ALLARM is
designed to reward: almost every directory request is local, so the
probe-filter size barely matters once ALLARM stops allocating entries for
private data (Figures 4d–4f), while the baseline's eviction count explodes
as the probe filter shrinks (Figures 4a–4c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import WorkloadError
from repro.trace.record import AccessRecord
from repro.workloads.base import SyntheticWorkload, WorkloadSpec, interleave
from repro.workloads.registry import MULTIPROCESS_BENCHMARKS, build_spec


@dataclass(frozen=True)
class MultiProcessSpec:
    """Two single-threaded copies of one benchmark, on distinct nodes."""

    benchmark: str
    copies: Tuple[WorkloadSpec, ...]

    @property
    def name(self) -> str:
        """Label used by the experiment harness."""
        return f"{self.benchmark}-2p"


def build_multiprocess_spec(
    benchmark: str,
    total_accesses_per_copy: int = 60_000,
    cores: Tuple[int, int] = (0, 8),
    seed: int = 7,
) -> MultiProcessSpec:
    """Build the two-copy, single-thread-per-copy configuration.

    Parameters
    ----------
    benchmark:
        One of the SPLASH2 benchmarks used in Figure 4.
    total_accesses_per_copy:
        Compute-phase accesses for each copy.
    cores:
        The cores (and therefore NUMA nodes) each copy is bound to.  The
        defaults put the copies on distant nodes, as a NUMA-aware
        scheduler would.
    seed:
        Base seed; each copy perturbs it so the copies are not identical
        access-for-access.
    """
    if benchmark not in MULTIPROCESS_BENCHMARKS:
        raise WorkloadError(
            f"benchmark {benchmark!r} is not part of the multi-process study; "
            f"expected one of {MULTIPROCESS_BENCHMARKS}"
        )
    if len(cores) != 2 or cores[0] == cores[1]:
        raise WorkloadError("the two copies must run on two distinct cores")

    copies = []
    for index, core in enumerate(cores):
        spec = build_spec(
            benchmark,
            total_accesses=total_accesses_per_copy,
            seed=seed + 31 * index,
        )
        spec = spec.with_threads(thread_count=1, core_offset=core)
        spec = spec.with_process(process_id=index)
        copies.append(spec)
    return MultiProcessSpec(benchmark=benchmark, copies=tuple(copies))


def generate_multiprocess(spec: MultiProcessSpec) -> Iterator[AccessRecord]:
    """Yield the co-scheduled access stream of both copies.

    The copies are round-robin interleaved, modelling the paper's setup in
    which both processes start their region of interest together and run
    concurrently.
    """
    streams = [SyntheticWorkload(copy).generate() for copy in spec.copies]
    return interleave(streams)


def multiprocess_benchmarks() -> List[str]:
    """The benchmarks included in the Figure 4 study."""
    return list(MULTIPROCESS_BENCHMARKS)
