"""Synthetic workload generation framework.

The paper evaluates ALLARM on SPLASH2 and Parsec binaries running under a
full-system simulator.  Those binaries (and the simulator) are substituted
here by synthetic generators that reproduce the properties the evaluation
actually depends on:

* the division of each thread's footprint into thread-private and shared
  data, and the *ratio of local to remote requests* this induces at the
  home directories under first-touch NUMA allocation (Figure 2);
* per-benchmark sharing structure — read-shared data initialised by one
  thread (blackscholes), nearest-neighbour halo exchange on a partitioned
  grid (ocean), pipelined hand-off between stages (dedup, x264),
  irregular power-law sharing (barnes, cholesky) — because it determines
  how much probe-filter state the shared data needs and how painful
  probe-filter evictions are;
* working-set sizes relative to the L2 and the probe filter, because they
  control whether misses are coherence-driven (where ALLARM helps) or
  capacity-driven (fluidanimate, where it does not).

A workload is described declaratively by a :class:`WorkloadSpec` holding
:class:`RegionSpec` entries plus an access mix, and materialised by
:class:`SyntheticWorkload`, which yields the interleaved access stream the
trace-driven simulator consumes.  Generation is deterministic for a given
seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import WorkloadError
from repro.trace.record import AccessRecord, AccessType
from repro.workloads.patterns import PhaseSpec, generate_phases

#: Virtual address where workload regions start being laid out.
_LAYOUT_BASE = 0x1000_0000
#: Gap left between regions so that they never share a page.
_LAYOUT_GAP = 1 << 20
#: Page and line sizes assumed by the layout (match the machine defaults).
PAGE_SIZE = 4096
LINE_SIZE = 64


# ----------------------------------------------------------------------
# Specifications
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RegionSpec:
    """One logical data region of a workload.

    Parameters
    ----------
    name:
        Key used by the access mix.
    kind:
        ``"private"`` regions are instantiated once per thread and only
        ever touched by their owner; ``"shared"`` regions exist once and
        are touched according to *sharing*.
    bytes_per_instance:
        Size of one instance (per thread for private, total for shared).
    sharing:
        For shared regions: ``"uniform"`` (any thread touches any line),
        ``"producer"`` (thread 0 first-touches everything and remains
        the only writer; all other threads read it), ``"halo"`` (the
        region is partitioned into per-thread chunks; threads mostly
        touch their own chunk and sometimes a neighbour's boundary),
        ``"pipeline"`` (chunk *t* is written by thread *t* and read by
        thread *t + 1*), ``"zipf"`` (power-law popularity over the whole
        region), or ``"migratory"`` (lock-style: ownership of the region
        migrates around the threads in bursts — the holder reads and
        writes it while every other thread only reads, as a spinning
        waiter does).
    reuse:
        Address selection within the chosen chunk: ``"zipf"`` (hot
        subset), ``"sequential"`` (streaming) or ``"uniform"``.
    write_fraction:
        Probability that an access to this region is a store.
    neighbour_fraction:
        For ``"halo"`` sharing: probability of touching a neighbour's
        boundary chunk instead of the thread's own chunk.
    """

    name: str
    kind: str
    bytes_per_instance: int
    sharing: str = "uniform"
    reuse: str = "zipf"
    write_fraction: float = 0.3
    neighbour_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.kind not in ("private", "shared"):
            raise WorkloadError(f"region {self.name}: unknown kind {self.kind!r}")
        if self.sharing not in (
            "uniform",
            "producer",
            "halo",
            "pipeline",
            "zipf",
            "migratory",
        ):
            raise WorkloadError(
                f"region {self.name}: unknown sharing {self.sharing!r}"
            )
        if self.reuse not in ("zipf", "sequential", "uniform"):
            raise WorkloadError(f"region {self.name}: unknown reuse {self.reuse!r}")
        if self.bytes_per_instance < PAGE_SIZE:
            raise WorkloadError(
                f"region {self.name}: must be at least one page "
                f"({self.bytes_per_instance} bytes given)"
            )
        if not 0.0 <= self.write_fraction <= 1.0:
            raise WorkloadError(f"region {self.name}: bad write fraction")


@dataclass(frozen=True)
class WorkloadSpec:
    """Complete description of one synthetic benchmark.

    ``phases`` optionally carries an ordered tuple of
    :class:`~repro.workloads.patterns.PhaseSpec` entries; a phased spec's
    compute stream is the barrier-separated concatenation of the phase
    streams (see :mod:`repro.workloads.patterns`) instead of the single
    stationary mix loop.  ``total_accesses`` stays the one run-length
    knob: it is apportioned across the phases by weight, so
    :meth:`scaled` shrinks a phased run without changing its structure.
    """

    name: str
    regions: Tuple[RegionSpec, ...]
    mix: Dict[str, float]
    thread_count: int = 16
    total_accesses: int = 200_000
    seed: int = 42
    process_id: int = 0
    core_offset: int = 0
    include_init_phase: bool = True
    description: str = ""
    phases: Tuple[PhaseSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.thread_count <= 0:
            raise WorkloadError("thread_count must be positive")
        if self.total_accesses <= 0:
            raise WorkloadError("total_accesses must be positive")
        names = {region.name for region in self.regions}
        if len(names) != len(self.regions):
            raise WorkloadError(f"{self.name}: duplicate region names")
        for key in self.mix:
            if key not in names:
                raise WorkloadError(f"{self.name}: mix references unknown region {key!r}")
        total = sum(self.mix.values())
        if total <= 0:
            raise WorkloadError(f"{self.name}: access mix sums to zero")
        phase_names = {phase.name for phase in self.phases}
        if len(phase_names) != len(self.phases):
            raise WorkloadError(f"{self.name}: duplicate phase names")
        for phase in self.phases:
            if phase.region is not None and phase.region not in names:
                raise WorkloadError(
                    f"{self.name}: phase {phase.name!r} targets unknown "
                    f"region {phase.region!r}"
                )

    def scaled(self, scale: float) -> "WorkloadSpec":
        """Return a copy with the access count scaled by *scale*.

        Region sizes are left unchanged so that working-set ratios (and
        therefore miss behaviour) are preserved; only run length shrinks.
        """
        if scale <= 0:
            raise WorkloadError("scale must be positive")
        accesses = max(1000, int(self.total_accesses * scale))
        return replace(self, total_accesses=accesses)

    def with_footprint_scale(self, scale: int) -> "WorkloadSpec":
        """Return a copy with every region's footprint divided by *scale*.

        Used together with
        :func:`repro.system.config.experiment_config`, which scales the
        caches and probe filter by the same factor, so that the ratios of
        working set to L2 and to probe-filter coverage — the quantities
        the paper's behaviour depends on — are preserved while simulation
        cost drops by roughly the scale factor.
        """
        if scale <= 0:
            raise WorkloadError("footprint scale must be positive")
        regions = tuple(
            replace(
                region,
                bytes_per_instance=max(
                    PAGE_SIZE,
                    (region.bytes_per_instance // scale) // PAGE_SIZE * PAGE_SIZE,
                ),
            )
            for region in self.regions
        )
        return replace(self, regions=regions)

    def with_threads(self, thread_count: int, core_offset: int = 0) -> "WorkloadSpec":
        """Return a copy running on a different number of threads/cores."""
        return replace(self, thread_count=thread_count, core_offset=core_offset)

    def with_process(self, process_id: int) -> "WorkloadSpec":
        """Return a copy tagged with a different process id."""
        return replace(self, process_id=process_id)


# ----------------------------------------------------------------------
# Layout
# ----------------------------------------------------------------------
@dataclass
class _RegionInstance:
    """A concrete placed instance of a region in virtual memory."""

    spec: RegionSpec
    owner_thread: Optional[int]
    base_vaddr: int
    size_bytes: int

    @property
    def line_count(self) -> int:
        return self.size_bytes // LINE_SIZE

    @property
    def page_count(self) -> int:
        return self.size_bytes // PAGE_SIZE

    def line_vaddr(self, line_index: int) -> int:
        return self.base_vaddr + (line_index % self.line_count) * LINE_SIZE


class SyntheticWorkload:
    """Materialises a :class:`WorkloadSpec` into an access stream."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self._layout_cursor = _LAYOUT_BASE + spec.process_id * (1 << 34)
        self._instances: Dict[str, List[_RegionInstance]] = {}
        self._mix_names: List[str] = []
        self._mix_weights: List[float] = []
        self._regions_by_name: Dict[str, RegionSpec] = {
            region.name: region for region in spec.regions
        }
        self._build_layout()
        self._build_mix()
        self._reset_stream_state()

    def _reset_stream_state(self) -> None:
        """Rewind the per-stream mutable state to the start of the run.

        Everything the stream draws on as it advances — the seeded RNG,
        the sequential-reuse cursors, migratory-lock ownership — lives
        here and is re-armed at the start of every :meth:`generate`
        call.  Without the reset, a second generation pass on the same
        instance would match the (RNG-free) init phase and then drift
        from the first compute access onward, which is exactly how the
        chunked path (:meth:`generate_chunks`) used to diverge from a
        prior streamed pass at the init -> compute phase boundary.
        """
        self._rng = random.Random(self.spec.seed)
        self._cursors: Dict[Tuple[str, int], int] = {}
        # Migratory regions: region name -> [current holder, accesses the
        # holder has left before ownership passes on].
        self._migratory_state: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Benchmark name from the spec."""
        return self.spec.name

    def generate(self) -> Iterator[AccessRecord]:
        """Yield the full interleaved access stream (init + compute).

        Every call yields the same deterministic stream: the per-stream
        state (RNG, cursors, lock ownership) is reset when iteration
        begins, so :meth:`generate` and :meth:`generate_chunks` are
        bit-identical and re-entrant on one instance.  (Two streams
        *interleaved* from the same instance still share that state and
        are not supported — consume one fully before starting the next.)
        """
        self._reset_stream_state()
        if self.spec.include_init_phase:
            yield from self._init_phase()
        yield from self._compute_phase()

    def generate_chunks(self, chunk_size: int = 8192):
        """Yield the stream as columnar ``AccessChunk`` blocks.

        The chunked emission path for the batched engine: identical
        records in identical order to :meth:`generate`, packed into
        struct-of-array blocks so the replay loop does no per-record
        Python work.
        """
        from repro.system.batchcore import chunk_records

        return chunk_records(self.generate(), chunk_size)

    def access_count_estimate(self) -> int:
        """Rough number of records :meth:`generate` will yield."""
        init = 0
        if self.spec.include_init_phase:
            for instances in self._instances.values():
                init += sum(inst.page_count for inst in instances)
        return init + self.spec.total_accesses

    def footprint_bytes(self) -> int:
        """Total bytes of virtual memory the workload touches."""
        return sum(
            inst.size_bytes
            for instances in self._instances.values()
            for inst in instances
        )

    # ------------------------------------------------------------------
    # Layout and mix construction
    # ------------------------------------------------------------------
    def _build_layout(self) -> None:
        for region in self.spec.regions:
            instances: List[_RegionInstance] = []
            if region.kind == "private":
                for thread in range(self.spec.thread_count):
                    instances.append(self._place(region, owner_thread=thread))
            else:
                instances.append(self._place(region, owner_thread=None))
            self._instances[region.name] = instances

    def _place(self, region: RegionSpec, owner_thread: Optional[int]) -> _RegionInstance:
        size = (region.bytes_per_instance // PAGE_SIZE) * PAGE_SIZE
        instance = _RegionInstance(
            spec=region,
            owner_thread=owner_thread,
            base_vaddr=self._layout_cursor,
            size_bytes=size,
        )
        self._layout_cursor += size + _LAYOUT_GAP
        return instance

    def _build_mix(self) -> None:
        total = sum(self.spec.mix.values())
        cumulative = 0.0
        for name, weight in self.spec.mix.items():
            cumulative += weight / total
            self._mix_names.append(name)
            self._mix_weights.append(cumulative)
        # Guard against floating-point drift so the last bucket always wins.
        self._mix_weights[-1] = 1.0

    # ------------------------------------------------------------------
    # Initialisation phase: establishes first-touch page placement
    # ------------------------------------------------------------------
    def _init_phase(self) -> Iterator[AccessRecord]:
        """Touch one line of every page, by the page's designated first toucher.

        This is what pins each page to a NUMA node under first-touch
        allocation, and it reproduces the initialisation patterns the
        paper calls out (e.g. blackscholes' data being initialised by
        thread 0 and then shared read-only by the other threads).
        """
        for region_name in sorted(self._instances):
            for instance in self._instances[region_name]:
                yield from self._init_instance(instance)

    def _init_instance(self, instance: _RegionInstance) -> Iterator[AccessRecord]:
        region = instance.spec
        for page in range(instance.page_count):
            toucher = self._first_toucher(instance, page)
            vaddr = instance.base_vaddr + page * PAGE_SIZE
            yield AccessRecord(
                core=self._core_of(toucher),
                vaddr=vaddr,
                access_type=AccessType.WRITE,
                process_id=self.spec.process_id,
            )

    def _first_toucher(self, instance: _RegionInstance, page: int) -> int:
        region = instance.spec
        if region.kind == "private":
            return instance.owner_thread or 0
        if region.sharing in ("producer", "migratory"):
            # Producer data and lock structures are allocated (and hence
            # first touched) by the main thread.
            return 0
        if region.sharing in ("halo", "pipeline"):
            pages_per_thread = max(1, instance.page_count // self.spec.thread_count)
            return min(page // pages_per_thread, self.spec.thread_count - 1)
        # Uniform / zipf shared data: pages are first touched by the thread
        # that happens to reach them first; model this as striped.
        return page % self.spec.thread_count

    # ------------------------------------------------------------------
    # Compute phase
    # ------------------------------------------------------------------
    def _compute_phase(self) -> Iterator[AccessRecord]:
        if self.spec.phases:
            yield from generate_phases(self)
            return
        per_thread = self.spec.total_accesses // self.spec.thread_count
        remainder = self.spec.total_accesses - per_thread * self.spec.thread_count
        counts = [
            per_thread + (1 if t < remainder else 0)
            for t in range(self.spec.thread_count)
        ]
        issued = [0] * self.spec.thread_count
        # Round-robin interleaving approximates the loose lock-step of the
        # data-parallel benchmarks without modelling synchronisation.
        while any(issued[t] < counts[t] for t in range(self.spec.thread_count)):
            for thread in range(self.spec.thread_count):
                if issued[thread] >= counts[thread]:
                    continue
                issued[thread] += 1
                yield self._one_access(thread)

    def _one_access(self, thread: int) -> AccessRecord:
        region_name = self._pick_region()
        region = self._regions_by_name[region_name]
        instance, chunk, owned = self._pick_instance_and_chunk(
            region, region_name, thread
        )
        vaddr = self._pick_address(instance, chunk, thread, region)
        # Accesses to another thread's chunk (halo reads, pipeline input)
        # are loads: stencil and pipeline codes read their neighbours' data
        # and write their own, which is what keeps remotely-homed lines
        # read-shared rather than migratory.
        if owned:
            is_write = self._rng.random() < region.write_fraction
        else:
            is_write = False
        return AccessRecord(
            core=self._core_of(thread),
            vaddr=vaddr,
            access_type=AccessType.WRITE if is_write else AccessType.READ,
            process_id=self.spec.process_id,
        )

    def _pick_region(self) -> str:
        draw = self._rng.random()
        for name, cumulative in zip(self._mix_names, self._mix_weights):
            if draw <= cumulative:
                return name
        return self._mix_names[-1]

    def _pick_instance_and_chunk(
        self, region: RegionSpec, region_name: str, thread: int
    ) -> Tuple[_RegionInstance, Tuple[int, int], bool]:
        """Return the instance, the (start_line, line_count) chunk, and
        whether the chunk belongs to the accessing thread (owned chunks may
        be written; foreign chunks are only read)."""
        instances = self._instances[region_name]
        if region.kind == "private":
            instance = instances[thread]
            return instance, (0, instance.line_count), True

        instance = instances[0]
        lines = instance.line_count
        threads = self.spec.thread_count
        chunk_lines = max(1, lines // threads)

        if region.sharing in ("uniform", "zipf"):
            return instance, (0, lines), True
        if region.sharing == "producer":
            # Thread 0 initialised the data and remains its only writer;
            # every other thread reads it (blackscholes' portfolio).  A
            # previous version returned owned=True for every thread,
            # which let all of them write data the model documents as
            # init-by-thread-0 then read-shared.
            return instance, (0, lines), thread == 0
        if region.sharing == "migratory":
            state = self._migratory_state.get(region_name)
            if state is None:
                state = [0, self.MIGRATORY_BURST]
                self._migratory_state[region_name] = state
            holder, remaining = state
            if thread != holder:
                # Waiters spin-read the lock word and guarded data.
                return instance, (0, lines), False
            if remaining <= 1:
                state[0] = (holder + 1) % threads
                state[1] = self.MIGRATORY_BURST
            else:
                state[1] = remaining - 1
            return instance, (0, lines), True
        if region.sharing == "halo":
            target = thread
            if self._rng.random() < region.neighbour_fraction:
                delta = self._rng.choice((-1, 1))
                target = (thread + delta) % threads
            return instance, (target * chunk_lines, chunk_lines), target == thread
        # pipeline: read the previous stage's chunk, write our own.
        if self._rng.random() < region.write_fraction:
            target = thread
        else:
            target = (thread - 1) % threads
        return instance, (target * chunk_lines, chunk_lines), target == thread

    def _pick_address(
        self,
        instance: _RegionInstance,
        chunk: Tuple[int, int],
        thread: int,
        region: RegionSpec,
    ) -> int:
        start_line, line_count = chunk
        if region.reuse == "sequential":
            key = (region.name, thread)
            cursor = self._cursors.get(key, 0)
            self._cursors[key] = cursor + 1
            line = start_line + (cursor % line_count)
        elif region.reuse == "zipf":
            line = start_line + self._zipf_index(line_count)
        else:
            line = start_line + self._rng.randrange(line_count)
        return instance.line_vaddr(line)

    #: Accesses a migratory region's holder performs before ownership
    #: passes to the next thread — a critical section of a handful of
    #: read-modify-writes, as lock-protected updates are.
    MIGRATORY_BURST = 6

    #: Fraction of a region treated as its hot subset under "zipf" reuse.
    HOT_FRACTION = 0.12
    #: Upper bound on the hot subset, in lines.  Real benchmarks reuse a
    #: cacheable working set regardless of how large their total footprint
    #: is; capping the hot subset keeps that true for the synthetic
    #: generators even on multi-megabyte shared regions.
    HOT_LINES_CAP = 192
    #: Fraction of accesses that go to the hot subset (the rest are uniform
    #: over the whole region, giving the long multi-reader tail that keeps
    #: sparse directories under pressure).
    HOT_WEIGHT = 0.7

    def _zipf_index(self, line_count: int) -> int:
        """Skewed index in ``[0, line_count)``: a hot subset plus a long tail.

        The two-tier shape approximates the power-law reuse of the real
        benchmarks: most accesses hit a small, cacheable hot set, while the
        remainder sweep the whole region, so over a run a large fraction of
        the region is touched by more than one thread — the behaviour that
        populates (and pressures) the home directories.
        """
        hot_lines = max(1, min(int(line_count * self.HOT_FRACTION), self.HOT_LINES_CAP))
        if self._rng.random() < self.HOT_WEIGHT:
            return self._rng.randrange(hot_lines)
        return self._rng.randrange(line_count)

    def _core_of(self, thread: int) -> int:
        return self.spec.core_offset + thread


# ----------------------------------------------------------------------
# Helpers used by the registry and experiments
# ----------------------------------------------------------------------
def materialize(spec: WorkloadSpec) -> List[AccessRecord]:
    """Generate the whole access stream into a list (small workloads only)."""
    return list(SyntheticWorkload(spec).generate())


def interleave(streams: List[Iterator[AccessRecord]]) -> Iterator[AccessRecord]:
    """Round-robin interleave several access streams until all are exhausted.

    Used by the multi-process workloads (Section III-B) to co-schedule two
    independent single-threaded benchmark copies.
    """
    active = list(streams)
    while active:
        still_active = []
        for stream in active:
            try:
                yield next(stream)
            except StopIteration:
                continue
            still_active.append(stream)
        active = still_active
