"""Randomized scenario generator: sampled workload families at scale.

The registry carries ~13 hand-written families, so every differential
suite keeps exercising the same few sharing patterns.  This module grows
the catalogue the way LITMUS-RT's ``mktasks.py``/``expgen.py`` grow
task-set benchmarks: feasible workload *sets* are sampled from parameter
distributions — thread count, sharing degree, working-set size,
read/write mix, per-core utilization — and emitted as registered
families with reproducible identities.

Reproducibility contract
------------------------
* A family is named ``scenario-<generator_seed>-<index>`` (plus a
  ``-s<salt>`` suffix when the name had to be salted, see below).  The
  name is **self-describing**: every parameter of the family is derived
  from a CRC-32 of ``"scenario/<generator_seed>/<index>"``, so any
  process — a sweep worker, a serve shard, a replay job — rebuilds the
  identical :class:`~repro.workloads.base.WorkloadSpec` from the name
  alone, with no shared state (see :func:`resolve_builder` and the
  dynamic-resolution hook in :mod:`repro.workloads.registry`).
* The family name flows into :class:`~repro.analysis.plan.RunSpec`
  identity (``benchmark`` keys both the cache token and the stream
  token) and into the workload seed via
  :func:`~repro.analysis.plan.seed_for`'s CRC-32, so generated families
  can never alias each other's — or a hand-written family's — cached
  snapshots or recorded traces.
* Because ``seed_for`` is a CRC-32, two sampled names could in
  principle collide to the same workload seed.  :func:`sample_scenarios`
  audits the sampled set and *salts* a colliding name (bumping the
  ``-s<salt>`` suffix) until its seed is unique; the salt changes only
  the name (and hence the seed), never the sampled parameters.
* Re-sampling with the same generator seed reproduces the exact same
  family names, specs and spec digests (:func:`spec_digest`), which is
  what lets a manifest recorded by one process be verified by another.

``python -m repro scenarios sample|describe`` is the CLI front end;
:func:`~repro.analysis.plan.scenario_plan` folds a sampled set into the
sweep machinery.
"""

from __future__ import annotations

import json
import random
import re
import zlib
from dataclasses import asdict, dataclass
from hashlib import sha256
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import WorkloadError
from repro.workloads.base import RegionSpec, WorkloadSpec
from repro.workloads.patterns import PhaseSpec

KB = 1024

#: Prefix of every generated family name (the registry's dynamic-
#: resolution hook keys off it).
SCENARIO_PREFIX = "scenario-"

#: ``scenario-<generator_seed>-<index>[-s<salt>]``.
_NAME_PATTERN = re.compile(r"\Ascenario-(\d+)-(\d+)(?:-s([1-9]\d*))?\Z")

#: Default compute-access budget of a generated family, matching the
#: hand-written families' builder defaults.
DEFAULT_FAMILY_ACCESSES = 200_000

#: Manifest file layout version.
MANIFEST_SCHEMA = 1


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameter distributions the sampler draws each family from.

    Ranges are inclusive; sizes are sampled log-uniformly (working-set
    behaviour is ratio-driven, so octaves — not bytes — should be
    uniform).  The defaults span the regimes the hand-written catalogue
    pins individually: cache-resident hot sets up to probe-filter- and
    L2-thrashing sweeps, read-only to write-heavy mixes, 4 to 16
    threads, low to full per-core utilization.
    """

    thread_counts: Tuple[int, ...] = (4, 8, 16)
    shared_region_count: Tuple[int, int] = (1, 3)
    shared_kib: Tuple[int, int] = (16, 4096)
    private_kib: Tuple[int, int] = (8, 256)
    write_fraction: Tuple[float, float] = (0.0, 0.6)
    #: Fraction of compute accesses aimed at shared data (sharing degree).
    sharing_degree: Tuple[float, float] = (0.2, 0.9)
    #: Per-core demand: scales the family's access budget.
    utilization: Tuple[float, float] = (0.25, 1.0)
    sharing_modes: Tuple[str, ...] = (
        "uniform",
        "producer",
        "halo",
        "pipeline",
        "zipf",
        "migratory",
    )
    reuse_modes: Tuple[str, ...] = ("zipf", "sequential", "uniform")
    #: Probability a family gets a warmup/steady/thrash phase structure
    #: (the rest are single-phase stationary mixes).
    multi_phase_fraction: float = 0.75
    thrash_patterns: Tuple[str, ...] = ("random-read", "stride", "snake")
    stride_choices: Tuple[int, ...] = (3, 5, 9, 17, 33)

    def __post_init__(self) -> None:
        if not self.thread_counts:
            raise WorkloadError("generator needs at least one thread count")
        for name in ("shared_region_count", "shared_kib", "private_kib"):
            low, high = getattr(self, name)
            if not 0 < low <= high:
                raise WorkloadError(f"generator {name} range {low}..{high} is invalid")
        for name in ("write_fraction", "sharing_degree", "utilization"):
            low, high = getattr(self, name)
            if not 0.0 <= low <= high <= 1.0:
                raise WorkloadError(f"generator {name} range {low}..{high} is invalid")
        if not 0.0 <= self.multi_phase_fraction <= 1.0:
            raise WorkloadError("multi_phase_fraction must be in [0, 1]")


DEFAULT_GENERATOR_CONFIG = GeneratorConfig()


def family_name(generator_seed: int, index: int, salt: int = 0) -> str:
    """Canonical name of sampled family *index* of set *generator_seed*."""
    name = f"{SCENARIO_PREFIX}{generator_seed}-{index}"
    return f"{name}-s{salt}" if salt else name


def parse_family_name(name: str) -> Optional[Tuple[int, int, int]]:
    """``(generator_seed, index, salt)`` for a scenario name, else ``None``."""
    match = _NAME_PATTERN.match(name)
    if match is None:
        return None
    seed_text, index_text, salt_text = match.groups()
    return int(seed_text), int(index_text), int(salt_text or 0)


def name_seed(name: str) -> int:
    """The CRC-32 a family name contributes to ``seed_for``.

    ``seed_for(name, base) == base * 1_000_003 + name_seed(name)``, so a
    collision here is a workload-seed collision at every base seed —
    exactly what :func:`sample_scenarios` salts away.
    """
    return zlib.crc32(name.encode("utf-8"))


def _family_rng(generator_seed: int, index: int) -> random.Random:
    """Independent per-family RNG: resolving family *k* never requires
    sampling families ``0..k-1`` first."""
    return random.Random(name_seed(f"scenario/{generator_seed}/{index}"))


def _log_uniform_kib(rng: random.Random, low_kib: int, high_kib: int) -> int:
    """A KiB size sampled uniformly in log space, rounded to whole KiB."""
    import math

    exponent = rng.uniform(math.log(low_kib), math.log(high_kib))
    return max(low_kib, min(high_kib, int(round(math.exp(exponent)))))


def build_family_spec(
    generator_seed: int,
    index: int,
    salt: int = 0,
    total_accesses: int = DEFAULT_FAMILY_ACCESSES,
    seed: Optional[int] = None,
    config: GeneratorConfig = DEFAULT_GENERATOR_CONFIG,
) -> WorkloadSpec:
    """Deterministically materialise one sampled family's spec.

    Parameters are a pure function of ``(generator_seed, index)`` — the
    salt affects only the name (and through it the default workload
    seed), so a salted rename never changes the family's shape.
    ``total_accesses``/``seed`` follow the hand-written builders'
    signature, so the result plugs straight into the registry; the
    family's sampled per-core utilization and thread count scale the
    access budget (a half-utilized 8-thread scenario issues a quarter
    of a fully-utilized 16-thread one's compute accesses).
    """
    rng = _family_rng(generator_seed, index)
    name = family_name(generator_seed, index, salt)

    threads = rng.choice(config.thread_counts)
    utilization = rng.uniform(*config.utilization)
    sharing_degree = rng.uniform(*config.sharing_degree)
    shared_count = rng.randint(*config.shared_region_count)

    regions: List[RegionSpec] = [
        RegionSpec(
            name="locals",
            kind="private",
            bytes_per_instance=_log_uniform_kib(rng, *config.private_kib) * KB,
            reuse=rng.choice(config.reuse_modes),
            write_fraction=round(rng.uniform(*config.write_fraction), 3),
        )
    ]
    mix: Dict[str, float] = {"locals": round(1.0 - sharing_degree, 4)}
    # Shared-mix sub-weights: sampled, then normalised onto the sharing
    # degree so the degree survives however many regions were drawn.
    sub_weights = [rng.uniform(0.2, 1.0) for _ in range(shared_count)]
    weight_total = sum(sub_weights)
    for i in range(shared_count):
        region_name = f"shared{i}"
        regions.append(
            RegionSpec(
                name=region_name,
                kind="shared",
                bytes_per_instance=_log_uniform_kib(rng, *config.shared_kib) * KB,
                sharing=rng.choice(config.sharing_modes),
                reuse=rng.choice(config.reuse_modes),
                write_fraction=round(rng.uniform(*config.write_fraction), 3),
            )
        )
        mix[region_name] = round(sharing_degree * sub_weights[i] / weight_total, 4)

    phases: Tuple[PhaseSpec, ...] = ()
    if rng.random() < config.multi_phase_fraction:
        # Warmup -> steady state -> thrash: the regime sequence the
        # paper's stationary Section III suite under-represents.  The
        # largest shared region is the one whose fill and thrash matter.
        target = max(regions[1:], key=lambda region: region.bytes_per_instance).name
        thrash_pattern = rng.choice(config.thrash_patterns)
        phase_list = [
            PhaseSpec(
                "warmup",
                "sequential-fill",
                weight=round(rng.uniform(0.08, 0.2), 3),
                region=target,
            ),
            PhaseSpec("steady", "mix", weight=round(rng.uniform(0.45, 0.7), 3)),
            PhaseSpec(
                "thrash",
                thrash_pattern,
                weight=round(rng.uniform(0.15, 0.3), 3),
                region=target,
                stride_lines=rng.choice(config.stride_choices),
            ),
        ]
        if rng.random() < 0.5:
            # Post-thrash recovery: steady state over a cold hierarchy.
            phase_list.append(
                PhaseSpec("recover", "mix", weight=round(rng.uniform(0.1, 0.25), 3))
            )
        phases = tuple(phase_list)

    effective_accesses = max(
        256, int(total_accesses * utilization * threads / 16)
    )
    if seed is None:
        # Matches seed_for(name, 0) without importing the analysis layer.
        seed = name_seed(name)
    shapes = "+".join(phase.pattern for phase in phases) or "stationary mix"
    return WorkloadSpec(
        name=name,
        regions=tuple(regions),
        mix=mix,
        thread_count=threads,
        total_accesses=effective_accesses,
        seed=seed,
        description=(
            f"sampled scenario ({threads}t, {shared_count} shared regions, "
            f"sharing degree {sharing_degree:.2f}, utilization "
            f"{utilization:.2f}, {shapes})"
        ),
        phases=phases,
    )


def resolve_builder(name: str) -> Optional[Callable[..., WorkloadSpec]]:
    """A registry-compatible builder for a scenario name, else ``None``.

    The returned callable has the hand-written builders' signature
    (``total_accesses=``, ``seed=``), so
    :func:`repro.workloads.registry.build_spec` can resolve generated
    families on demand in any process — sweep workers and serve shards
    need no out-of-band registration step.
    """
    parsed = parse_family_name(name)
    if parsed is None:
        return None
    generator_seed, index, salt = parsed

    def _builder(
        total_accesses: int = DEFAULT_FAMILY_ACCESSES, seed: Optional[int] = None
    ) -> WorkloadSpec:
        return build_family_spec(
            generator_seed, index, salt, total_accesses=total_accesses, seed=seed
        )

    return _builder


def spec_digest(spec: WorkloadSpec) -> str:
    """SHA-256 over the spec's canonical (sorted-keys) JSON form.

    The manifest's reproducibility anchor: re-sampling a set with the
    same generator seed must reproduce these digests bit for bit.
    """
    return sha256(
        json.dumps(asdict(spec), sort_keys=True).encode("utf-8")
    ).hexdigest()


@dataclass(frozen=True)
class ScenarioFamily:
    """One sampled family: its identity plus the materialised template."""

    name: str
    generator_seed: int
    index: int
    salt: int
    spec: WorkloadSpec

    def builder(
        self,
        total_accesses: int = DEFAULT_FAMILY_ACCESSES,
        seed: Optional[int] = None,
    ) -> WorkloadSpec:
        """Registry-compatible builder reproducing this family."""
        return build_family_spec(
            self.generator_seed,
            self.index,
            self.salt,
            total_accesses=total_accesses,
            seed=seed,
        )

    def workload_seed(self) -> int:
        """The CRC-32 seed this family's name contributes to ``seed_for``."""
        return name_seed(self.name)

    def describe(self) -> Dict[str, object]:
        """Manifest entry: identity, headline parameters, spec digest."""
        return {
            "name": self.name,
            "index": self.index,
            "salt": self.salt,
            "workload_seed": self.workload_seed(),
            "spec_digest": spec_digest(self.spec),
            "threads": self.spec.thread_count,
            "regions": len(self.spec.regions),
            "shared_regions": sum(
                1 for region in self.spec.regions if region.kind == "shared"
            ),
            "footprint_bytes": sum(
                region.bytes_per_instance
                * (self.spec.thread_count if region.kind == "private" else 1)
                for region in self.spec.regions
            ),
            "total_accesses": self.spec.total_accesses,
            "phases": [
                {"name": phase.name, "pattern": phase.pattern, "weight": phase.weight}
                for phase in self.spec.phases
            ],
        }


@dataclass(frozen=True)
class ScenarioSet:
    """An ordered, collision-audited set of sampled families."""

    generator_seed: int
    families: Tuple[ScenarioFamily, ...]

    @property
    def names(self) -> List[str]:
        return [family.name for family in self.families]

    def __len__(self) -> int:
        return len(self.families)

    def __iter__(self):
        return iter(self.families)

    def register(self) -> None:
        """Pin every family into the registry (idempotent).

        Registration is only needed when the set must appear in
        :func:`~repro.workloads.registry.all_benchmark_names`; execution
        paths resolve scenario names dynamically without it.  Names
        already registered are skipped — by construction they resolve to
        the identical spec.
        """
        from repro.workloads import registry

        for family in self.families:
            if family.name not in registry.registered_names():
                registry.register(family.name, family.builder)

    def unregister(self) -> None:
        """Remove every family from the registry (missing names ignored)."""
        from repro.workloads import registry

        for family in self.families:
            registry.unregister(family.name)

    def manifest(self) -> Dict[str, object]:
        """JSON-ready manifest: the set's full reproducible identity."""
        return {
            "schema": MANIFEST_SCHEMA,
            "generator_seed": self.generator_seed,
            "count": len(self.families),
            "families": [family.describe() for family in self.families],
        }


def assert_no_seed_collisions(names: List[str]) -> None:
    """Raise :class:`WorkloadError` if any two names share a CRC-32 seed."""
    seen: Dict[int, str] = {}
    for name in names:
        seed = name_seed(name)
        other = seen.get(seed)
        if other is not None and other != name:
            raise WorkloadError(
                f"workload-seed collision: {name!r} and {other!r} both hash "
                f"to {seed} (crc32)"
            )
        seen[seed] = name


def sample_scenarios(
    generator_seed: int,
    count: int,
    config: GeneratorConfig = DEFAULT_GENERATOR_CONFIG,
    total_accesses: int = DEFAULT_FAMILY_ACCESSES,
    _seed_of: Callable[[str], int] = name_seed,
) -> ScenarioSet:
    """Sample *count* families under *generator_seed*, collision-free.

    Each family's name is checked against every previously accepted
    name's CRC-32 workload seed; on a collision the name is salted
    (``-s1``, ``-s2``, ...) until its seed is unique within the set.
    Salting renames without re-sampling, so the set's parameter draw is
    independent of where collisions happen to land.  ``_seed_of`` exists
    so tests can inject a colliding hash and pin the salting behaviour.
    """
    if generator_seed < 0:
        raise WorkloadError("generator seed must be non-negative")
    if count <= 0:
        raise WorkloadError("scenario count must be positive")
    taken: Dict[int, str] = {}
    families: List[ScenarioFamily] = []
    for index in range(count):
        salt = 0
        name = family_name(generator_seed, index, salt)
        while _seed_of(name) in taken:
            salt += 1
            name = family_name(generator_seed, index, salt)
        taken[_seed_of(name)] = name
        spec = build_family_spec(
            generator_seed, index, salt, total_accesses=total_accesses, config=config
        )
        families.append(
            ScenarioFamily(
                name=name,
                generator_seed=generator_seed,
                index=index,
                salt=salt,
                spec=spec,
            )
        )
    scenario_set = ScenarioSet(generator_seed=generator_seed, families=tuple(families))
    if _seed_of is name_seed:
        assert_no_seed_collisions(scenario_set.names)
    return scenario_set
