"""Synthetic SPLASH2/Parsec-like workloads and the benchmark registry."""

from repro.workloads.base import (
    RegionSpec,
    SyntheticWorkload,
    WorkloadSpec,
    interleave,
    materialize,
)
from repro.workloads.multiprocess import (
    MultiProcessSpec,
    build_multiprocess_spec,
    generate_multiprocess,
    multiprocess_benchmarks,
)
from repro.workloads.registry import (
    MICROBENCH_FAMILIES,
    MULTIPROCESS_BENCHMARKS,
    PAPER_BENCHMARKS,
    all_benchmark_names,
    benchmark_names,
    build_spec,
    build_workload,
    is_registered,
    register,
    unregister,
)

__all__ = [
    "RegionSpec",
    "WorkloadSpec",
    "SyntheticWorkload",
    "materialize",
    "interleave",
    "PAPER_BENCHMARKS",
    "MICROBENCH_FAMILIES",
    "MULTIPROCESS_BENCHMARKS",
    "all_benchmark_names",
    "benchmark_names",
    "build_spec",
    "build_workload",
    "is_registered",
    "register",
    "unregister",
    "MultiProcessSpec",
    "build_multiprocess_spec",
    "generate_multiprocess",
    "multiprocess_benchmarks",
]
