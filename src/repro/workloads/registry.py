"""Workload registry: look up benchmark builders by name.

The paper's evaluation uses a fixed benchmark list (Section III,
Figure 2): barnes, blackscholes, cholesky, dedup, fluidanimate,
ocean-cont, ocean-non-cont and x264.  Alongside those, the registry
carries the microbenchmark families of :mod:`repro.workloads.microbench`,
which isolate sharing patterns the paper's suite under-represents.  The
registry maps each name to its spec builder so that the experiment
harness, the examples and the command line can all address benchmarks
uniformly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import WorkloadError
from repro.workloads import microbench, parsec, splash2
from repro.workloads.base import SyntheticWorkload, WorkloadSpec

SpecBuilder = Callable[..., WorkloadSpec]

_REGISTRY: Dict[str, SpecBuilder] = {
    "barnes": splash2.barnes,
    "blackscholes": parsec.blackscholes,
    "cholesky": splash2.cholesky,
    "dedup": parsec.dedup,
    "fluidanimate": parsec.fluidanimate,
    "ocean-cont": splash2.ocean_contiguous,
    "ocean-non-cont": splash2.ocean_non_contiguous,
    "x264": parsec.x264,
    "false-sharing": microbench.false_sharing,
    "migratory": microbench.migratory,
    "stream-scan": microbench.stream_scan,
    "hotspot": microbench.hotspot,
}

#: The benchmark order used throughout the paper's figures.
PAPER_BENCHMARKS: List[str] = [
    "barnes",
    "blackscholes",
    "cholesky",
    "dedup",
    "fluidanimate",
    "ocean-cont",
    "ocean-non-cont",
    "x264",
]

#: The subset used by the multi-process study of Section III-B / Figure 4.
MULTIPROCESS_BENCHMARKS: List[str] = [
    "barnes",
    "cholesky",
    "ocean-cont",
    "ocean-non-cont",
]

#: Microbenchmark families isolating canonical sharing patterns (see
#: :mod:`repro.workloads.microbench`).  Unlike the paper suite they may
#: be unregistered and re-registered, so experiments can swap variants in.
MICROBENCH_FAMILIES: List[str] = [
    "false-sharing",
    "migratory",
    "stream-scan",
    "hotspot",
]


def benchmark_names() -> List[str]:
    """Return the paper's benchmark names, in paper order."""
    return list(PAPER_BENCHMARKS)


def all_benchmark_names() -> List[str]:
    """Return every registered benchmark name: paper suite, then extras.

    Extras are sorted, never insertion-ordered, so two processes that
    registered the same set — in whatever order their sweeps or serve
    shards happened to touch the families — agree on the list exactly.
    Dynamically-resolvable ``scenario-*`` names (see
    :func:`_dynamic_builder`) appear only once *explicitly* registered;
    on-demand resolution never mutates the registry, so the answer is a
    pure function of the explicit registration set.
    """
    extras = [name for name in _REGISTRY if name not in PAPER_BENCHMARKS]
    return list(PAPER_BENCHMARKS) + sorted(extras)


def registered_names() -> List[str]:
    """Sorted names explicitly present in the registry (no dynamic ones)."""
    return sorted(_REGISTRY)


def _dynamic_builder(name: str) -> Optional[SpecBuilder]:
    """Resolve a generated ``scenario-*`` family from its name alone.

    Generated family names are self-describing (the generator seed and
    index are embedded), so any process can materialise the exact spec
    without the sampling process shipping state to it.  Resolution does
    **not** register the name: the registry's contents stay a pure
    function of explicit :func:`register` calls, which is what keeps
    :func:`all_benchmark_names` deterministic across sweep workers and
    serve shards.
    """
    if not name.startswith("scenario-"):
        return None
    from repro.workloads import generator

    return generator.resolve_builder(name)


def is_registered(name: str) -> bool:
    """True when *name* is a known (or dynamically resolvable) benchmark."""
    return name in _REGISTRY or _dynamic_builder(name) is not None


def build_spec(name: str, **kwargs) -> WorkloadSpec:
    """Build the :class:`WorkloadSpec` for benchmark *name*.

    Keyword arguments are forwarded to the benchmark builder (typically
    ``total_accesses`` and ``seed``).  Generated ``scenario-*`` names
    resolve on demand even when not registered (an explicit registration
    takes precedence, letting tests pin variant builders).
    """
    builder = _REGISTRY.get(name)
    if builder is None:
        builder = _dynamic_builder(name)
    if builder is None:
        raise WorkloadError(
            f"unknown benchmark {name!r}; known benchmarks: {benchmark_names()}"
        )
    return builder(**kwargs)


def build_workload(name: str, **kwargs) -> SyntheticWorkload:
    """Build a ready-to-generate workload for benchmark *name*."""
    return SyntheticWorkload(build_spec(name, **kwargs))


def register(name: str, builder: SpecBuilder) -> None:
    """Register a custom benchmark builder (used by examples and tests)."""
    if name in _REGISTRY:
        raise WorkloadError(f"benchmark {name!r} is already registered")
    _REGISTRY[name] = builder


def unregister(name: str) -> None:
    """Remove a custom benchmark (no-op protection for the built-ins)."""
    if name in PAPER_BENCHMARKS:
        raise WorkloadError(f"cannot unregister the built-in benchmark {name!r}")
    _REGISTRY.pop(name, None)
