"""SPLASH2-like synthetic workloads: barnes, cholesky, ocean (x2).

Each builder returns a :class:`~repro.workloads.base.WorkloadSpec` whose
region sizes, sharing structure and access mix are chosen to reproduce the
behaviour the paper reports for the corresponding SPLASH2 benchmark:

* **barnes** — an N-body tree code: a per-thread set of bodies (private,
  with a streaming update pass) plus an irregularly shared octree with
  power-law popularity.  NUMA-friendly with good data isolation, so a
  comparatively high local-request fraction and a large ALLARM gain.
* **cholesky** — sparse matrix factorisation: per-thread panels plus a
  shared frontier updated by many threads.
* **ocean-contiguous** — a partitioned grid with nearest-neighbour halo
  exchange; the paper's biggest winner (speedups up to ~40%) because the
  bulk of the grid is effectively thread-local under first-touch.
* **ocean-non-contiguous** — the same structure with poorer spatial
  locality (non-contiguous partitions), giving more boundary traffic.

Sizes are expressed relative to the simulated 256 kB L2 and 512 kB probe
filter, which is what determines the coherence behaviour; they are *not*
the native input sizes (the paper itself scales inputs and caches down in
the standard way, citing Cuesta et al. and Kim et al.).
"""

from __future__ import annotations

from repro.workloads.base import RegionSpec, WorkloadSpec

KB = 1024
MB = 1024 * 1024


def barnes(total_accesses: int = 200_000, seed: int = 101) -> WorkloadSpec:
    """Barnes-Hut N-body simulation (SPLASH2)."""
    regions = (
        RegionSpec(
            name="bodies_hot",
            kind="private",
            bytes_per_instance=96 * KB,
            reuse="zipf",
            write_fraction=0.35,
        ),
        RegionSpec(
            name="bodies_update",
            kind="private",
            bytes_per_instance=640 * KB,
            reuse="sequential",
            write_fraction=0.5,
        ),
        RegionSpec(
            name="octree",
            kind="shared",
            bytes_per_instance=12 * MB,
            sharing="zipf",
            reuse="zipf",
            write_fraction=0.08,
        ),
    )
    mix = {"bodies_hot": 0.38, "bodies_update": 0.17, "octree": 0.45}
    return WorkloadSpec(
        name="barnes",
        regions=regions,
        mix=mix,
        total_accesses=total_accesses,
        seed=seed,
        description="N-body tree code: private bodies + irregularly shared octree",
    )


def cholesky(total_accesses: int = 200_000, seed: int = 102) -> WorkloadSpec:
    """Sparse Cholesky factorisation (SPLASH2)."""
    regions = (
        RegionSpec(
            name="panels_hot",
            kind="private",
            bytes_per_instance=64 * KB,
            reuse="zipf",
            write_fraction=0.4,
        ),
        RegionSpec(
            name="panels_stream",
            kind="private",
            bytes_per_instance=512 * KB,
            reuse="sequential",
            write_fraction=0.45,
        ),
        RegionSpec(
            name="frontier",
            kind="shared",
            bytes_per_instance=10 * MB,
            sharing="zipf",
            reuse="zipf",
            write_fraction=0.25,
        ),
    )
    mix = {"panels_hot": 0.32, "panels_stream": 0.15, "frontier": 0.53}
    return WorkloadSpec(
        name="cholesky",
        regions=regions,
        mix=mix,
        total_accesses=total_accesses,
        seed=seed,
        description="Sparse factorisation: private panels + shared frontier",
    )


def ocean_contiguous(total_accesses: int = 200_000, seed: int = 103) -> WorkloadSpec:
    """Ocean simulation, contiguous partitions (SPLASH2)."""
    regions = (
        RegionSpec(
            name="work_hot",
            kind="private",
            bytes_per_instance=128 * KB,
            reuse="zipf",
            write_fraction=0.45,
        ),
        RegionSpec(
            name="work_stream",
            kind="private",
            bytes_per_instance=1 * MB,
            reuse="sequential",
            write_fraction=0.5,
        ),
        RegionSpec(
            name="grid",
            kind="shared",
            bytes_per_instance=16 * MB,
            sharing="halo",
            reuse="zipf",
            write_fraction=0.4,
            neighbour_fraction=0.3,
        ),
    )
    mix = {"work_hot": 0.28, "work_stream": 0.17, "grid": 0.55}
    return WorkloadSpec(
        name="ocean-cont",
        regions=regions,
        mix=mix,
        total_accesses=total_accesses,
        seed=seed,
        description="Partitioned grid solver with contiguous halo exchange",
    )


def ocean_non_contiguous(
    total_accesses: int = 200_000, seed: int = 104
) -> WorkloadSpec:
    """Ocean simulation, non-contiguous partitions (SPLASH2)."""
    regions = (
        RegionSpec(
            name="work_hot",
            kind="private",
            bytes_per_instance=96 * KB,
            reuse="zipf",
            write_fraction=0.45,
        ),
        RegionSpec(
            name="work_stream",
            kind="private",
            bytes_per_instance=896 * KB,
            reuse="sequential",
            write_fraction=0.5,
        ),
        RegionSpec(
            name="grid",
            kind="shared",
            bytes_per_instance=16 * MB,
            sharing="halo",
            reuse="uniform",
            write_fraction=0.4,
            neighbour_fraction=0.4,
        ),
    )
    mix = {"work_hot": 0.26, "work_stream": 0.14, "grid": 0.6}
    return WorkloadSpec(
        name="ocean-non-cont",
        regions=regions,
        mix=mix,
        total_accesses=total_accesses,
        seed=seed,
        description="Partitioned grid solver with scattered (non-contiguous) partitions",
    )
