"""Parsec-like synthetic workloads: blackscholes, dedup, fluidanimate, x264.

As with :mod:`repro.workloads.splash2`, each builder encodes the sharing
behaviour the paper relies on:

* **blackscholes** — the option portfolio is initialised by thread 0 and
  then read by every worker.  Under first-touch all of that data is homed
  at node 0, so its probe filter carries nearly all of the shared state —
  which is why the paper finds blackscholes to be the benchmark most
  sensitive to shrinking the probe filter (Figure 3h).
* **dedup** — a pipeline: chunks are produced by one stage and consumed by
  the next, so most directory requests are remote.
* **fluidanimate** — a large per-thread working set whose capacity misses
  dominate; the paper's only slowdown, because reducing probe-filter
  evictions cannot recover misses that are capacity-induced.
* **x264** — frame pipeline with wide read-sharing of reference frames and
  the smallest local-request fraction of the suite.
"""

from __future__ import annotations

from repro.workloads.base import RegionSpec, WorkloadSpec

KB = 1024
MB = 1024 * 1024


def blackscholes(total_accesses: int = 200_000, seed: int = 201) -> WorkloadSpec:
    """Black-Scholes option pricing (Parsec)."""
    regions = (
        RegionSpec(
            name="locals_hot",
            kind="private",
            bytes_per_instance=32 * KB,
            reuse="zipf",
            write_fraction=0.5,
        ),
        RegionSpec(
            name="locals_stream",
            kind="private",
            bytes_per_instance=192 * KB,
            reuse="sequential",
            write_fraction=0.4,
        ),
        RegionSpec(
            name="portfolio",
            kind="shared",
            bytes_per_instance=10 * MB,
            sharing="producer",
            reuse="zipf",
            write_fraction=0.03,
        ),
    )
    mix = {"locals_hot": 0.3, "locals_stream": 0.12, "portfolio": 0.58}
    return WorkloadSpec(
        name="blackscholes",
        regions=regions,
        mix=mix,
        total_accesses=total_accesses,
        seed=seed,
        description="Option pricing: portfolio initialised by thread 0, read by all",
    )


def dedup(total_accesses: int = 200_000, seed: int = 202) -> WorkloadSpec:
    """Deduplication pipeline (Parsec)."""
    regions = (
        RegionSpec(
            name="stage_hot",
            kind="private",
            bytes_per_instance=64 * KB,
            reuse="zipf",
            write_fraction=0.4,
        ),
        RegionSpec(
            name="stage_scratch",
            kind="private",
            bytes_per_instance=256 * KB,
            reuse="sequential",
            write_fraction=0.5,
        ),
        RegionSpec(
            name="chunk_queues",
            kind="shared",
            bytes_per_instance=10 * MB,
            sharing="pipeline",
            reuse="zipf",
            write_fraction=0.25,
        ),
    )
    mix = {"stage_hot": 0.26, "stage_scratch": 0.06, "chunk_queues": 0.68}
    return WorkloadSpec(
        name="dedup",
        regions=regions,
        mix=mix,
        total_accesses=total_accesses,
        seed=seed,
        description="Deduplication pipeline handing chunks between stages",
    )


def fluidanimate(total_accesses: int = 200_000, seed: int = 203) -> WorkloadSpec:
    """Fluid dynamics (Parsec) — large, capacity-bound working set."""
    regions = (
        RegionSpec(
            name="particles",
            kind="private",
            bytes_per_instance=1536 * KB,
            reuse="zipf",
            write_fraction=0.45,
        ),
        RegionSpec(
            name="cell_lists",
            kind="private",
            bytes_per_instance=256 * KB,
            reuse="sequential",
            write_fraction=0.4,
        ),
        RegionSpec(
            name="boundary",
            kind="shared",
            bytes_per_instance=8 * MB,
            sharing="halo",
            reuse="uniform",
            write_fraction=0.35,
            neighbour_fraction=0.35,
        ),
    )
    mix = {"particles": 0.42, "cell_lists": 0.08, "boundary": 0.5}
    return WorkloadSpec(
        name="fluidanimate",
        regions=regions,
        mix=mix,
        total_accesses=total_accesses,
        seed=seed,
        description="Particle simulation whose working set exceeds the caches",
    )


def x264(total_accesses: int = 200_000, seed: int = 204) -> WorkloadSpec:
    """H.264 video encoding (Parsec)."""
    regions = (
        RegionSpec(
            name="macroblocks",
            kind="private",
            bytes_per_instance=48 * KB,
            reuse="zipf",
            write_fraction=0.45,
        ),
        RegionSpec(
            name="scratch",
            kind="private",
            bytes_per_instance=128 * KB,
            reuse="sequential",
            write_fraction=0.4,
        ),
        RegionSpec(
            name="reference_frames",
            kind="shared",
            bytes_per_instance=14 * MB,
            sharing="pipeline",
            reuse="uniform",
            write_fraction=0.22,
        ),
    )
    mix = {"macroblocks": 0.25, "scratch": 0.08, "reference_frames": 0.67}
    return WorkloadSpec(
        name="x264",
        regions=regions,
        mix=mix,
        total_accesses=total_accesses,
        seed=seed,
        description="Video encoding pipeline with widely shared reference frames",
    )
