"""Multi-phase access-pattern DSL layered over :class:`SyntheticWorkload`.

The base workload model (:mod:`repro.workloads.base`) generates one
statistically stationary compute stream: the access mix, reuse and
sharing behaviour are the same at access 1 and access 1,000,000.  Real
programs are not stationary — they warm caches with a sequential fill,
settle into a steady state, and periodically thrash through data that
does not fit anywhere.  This module adds that time axis as a small,
composable DSL in the spirit of wiscsee's ``patternsuite.py`` phase
combinators: a workload may carry an ordered tuple of
:class:`PhaseSpec` entries, and its compute stream becomes the
barrier-separated concatenation of the phase streams.

Patterns
--------
``sequential-fill``
    Every thread walks its partition of the target region in address
    order (stores by default) — the warmup/initialisation shape that
    populates caches, probe filter and page tables.
``random-read``
    Uniform random loads over the *whole* target region, ignoring the
    per-thread partition — the capacity-thrash shape that sweeps working
    sets much larger than any cache and maximises sharer-set growth.
``snake``
    Each thread sweeps its partition forward, then backward, alternating
    per pass (wiscsee's snake): sequential locality without the
    wrap-around cold miss at each pass boundary.
``stride``
    Each thread walks its partition with a fixed line stride
    (``stride_lines``), wrapping modulo the partition — the
    power-of-two-conflict shape that defeats set-indexed structures.
``mix``
    The base model's stationary compute behaviour (region mix, reuse,
    sharing modes) for this phase's share of the run — the steady state
    between warmup and thrash phases.

Barriers
--------
Phases are barrier-separated: every thread issues all of its accesses
for phase *k* (round-robin interleaved, like the base compute loop)
before any thread issues an access of phase *k + 1*.  No synchronisation
cost is modelled — the barrier is purely an ordering constraint on the
generated stream, matching how the base model already treats the
init -> compute transition.

Reproducibility
---------------
Phase streams draw from the workload's single seeded RNG in generation
order, so a phased stream is a pure function of
(:class:`~repro.workloads.base.WorkloadSpec`, seed) exactly like an
unphased one, and the chunked emission path
(:meth:`~repro.workloads.base.SyntheticWorkload.generate_chunks`)
yields the identical record sequence across phase boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import WorkloadError
from repro.trace.record import AccessRecord, AccessType

#: The pattern vocabulary of the DSL.
PHASE_PATTERNS: Tuple[str, ...] = (
    "sequential-fill",
    "random-read",
    "snake",
    "stride",
    "mix",
)

#: Store probability per pattern when the phase does not pin one.  Fills
#: write (they initialise data), thrash patterns mostly read.
DEFAULT_WRITE_FRACTIONS = {
    "sequential-fill": 1.0,
    "random-read": 0.0,
    "snake": 0.15,
    "stride": 0.05,
}


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of a multi-phase workload.

    Parameters
    ----------
    name:
        Label for manifests and diagnostics (unique within a spec).
    pattern:
        One of :data:`PHASE_PATTERNS`.
    weight:
        This phase's share of the spec's ``total_accesses``; weights are
        normalised over the phase tuple, so ``scaled()`` keeps the phase
        structure while shrinking the run.
    region:
        Target region name.  Required for every pattern except ``mix``,
        which replays the spec-wide access mix and must leave it unset.
    write_fraction:
        Store probability; ``None`` uses the pattern default
        (:data:`DEFAULT_WRITE_FRACTIONS`).
    stride_lines:
        Line stride of the ``stride`` pattern (ignored elsewhere).
    """

    name: str
    pattern: str
    weight: float = 1.0
    region: Optional[str] = None
    write_fraction: Optional[float] = None
    stride_lines: int = 16

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("phase needs a non-empty name")
        if self.pattern not in PHASE_PATTERNS:
            raise WorkloadError(
                f"phase {self.name}: unknown pattern {self.pattern!r}; "
                f"expected one of {PHASE_PATTERNS}"
            )
        if not self.weight > 0:
            raise WorkloadError(f"phase {self.name}: weight must be positive")
        if self.pattern == "mix":
            if self.region is not None:
                raise WorkloadError(
                    f"phase {self.name}: 'mix' replays the spec-wide access "
                    f"mix and may not target a single region"
                )
        elif self.region is None:
            raise WorkloadError(
                f"phase {self.name}: pattern {self.pattern!r} needs a region"
            )
        if self.write_fraction is not None and not 0.0 <= self.write_fraction <= 1.0:
            raise WorkloadError(f"phase {self.name}: bad write fraction")
        if self.stride_lines <= 0:
            raise WorkloadError(f"phase {self.name}: stride_lines must be positive")


def phase_counts(total_accesses: int, phases: Tuple[PhaseSpec, ...]) -> List[int]:
    """Split *total_accesses* across *phases* by weight, deterministically.

    Largest-remainder apportionment with the remainder handed out in
    phase order, so the counts are a pure function of the inputs and sum
    exactly to *total_accesses*.
    """
    if not phases:
        return []
    total_weight = sum(phase.weight for phase in phases)
    counts = [int(total_accesses * phase.weight / total_weight) for phase in phases]
    shortfall = total_accesses - sum(counts)
    for i in range(shortfall):
        counts[i % len(counts)] += 1
    return counts


def _thread_counts(total: int, threads: int) -> List[int]:
    """Per-thread access counts, same split as the base compute phase."""
    per_thread = total // threads
    remainder = total - per_thread * threads
    return [per_thread + (1 if t < remainder else 0) for t in range(threads)]


def generate_phases(workload) -> Iterator[AccessRecord]:
    """Yield the compute stream of a phased workload.

    *workload* is a :class:`~repro.workloads.base.SyntheticWorkload`
    whose spec carries phases.  Phases run strictly in order
    (barrier-separated); within each phase, threads are round-robin
    interleaved exactly like the base compute loop.
    """
    spec = workload.spec
    counts = phase_counts(spec.total_accesses, spec.phases)
    for phase, count in zip(spec.phases, counts):
        yield from _generate_phase(workload, phase, count)


def _generate_phase(workload, phase: PhaseSpec, total: int) -> Iterator[AccessRecord]:
    spec = workload.spec
    threads = spec.thread_count
    counts = _thread_counts(total, threads)
    if phase.pattern == "mix":
        issued = [0] * threads
        while any(issued[t] < counts[t] for t in range(threads)):
            for thread in range(threads):
                if issued[thread] >= counts[thread]:
                    continue
                issued[thread] += 1
                yield workload._one_access(thread)
        return

    rng = workload._rng
    write_fraction = phase.write_fraction
    if write_fraction is None:
        write_fraction = DEFAULT_WRITE_FRACTIONS[phase.pattern]
    instances = workload._instances[phase.region]
    private = instances[0].spec.kind == "private"
    shared_instance = instances[0]
    # Per-thread partition of a shared region (private regions already
    # have one instance per thread and need no partitioning).
    chunk_lines = max(1, shared_instance.line_count // threads)

    cursors = [0] * threads
    issued = [0] * threads
    stride = phase.stride_lines
    while any(issued[t] < counts[t] for t in range(threads)):
        for thread in range(threads):
            if issued[thread] >= counts[thread]:
                continue
            issued[thread] += 1
            if private:
                instance = instances[thread]
                start_line, part_lines = 0, instance.line_count
            else:
                instance = shared_instance
                start_line, part_lines = thread * chunk_lines, chunk_lines
            if phase.pattern == "sequential-fill":
                line = start_line + cursors[thread] % part_lines
                cursors[thread] += 1
            elif phase.pattern == "snake":
                position = cursors[thread] % part_lines
                sweep = cursors[thread] // part_lines
                if sweep % 2:
                    position = part_lines - 1 - position
                line = start_line + position
                cursors[thread] += 1
            elif phase.pattern == "stride":
                line = start_line + (cursors[thread] * stride) % part_lines
                cursors[thread] += 1
            else:  # random-read: thrash the whole region, partition ignored
                line = rng.randrange(instance.line_count)
            is_write = rng.random() < write_fraction
            yield AccessRecord(
                core=workload._core_of(thread),
                vaddr=instance.line_vaddr(line),
                access_type=AccessType.WRITE if is_write else AccessType.READ,
                process_id=spec.process_id,
            )
