"""Dynamic energy model for the on-chip network.

The paper converts network activity into dynamic energy with McPAT at a
32 nm process and reports the *relative* energy of ALLARM against the
baseline (Figure 3f, "NoC" bars).  We use the same structure McPAT does at
this granularity: every flit consumes a fixed amount of energy per router
it traverses and per link it crosses, so total NoC dynamic energy is
proportional to flit-hops, and the normalised result depends only on the
relative traffic reduction.  The default per-flit constants are
representative 32 nm values; their absolute magnitude cancels in every
figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.stats.snapshot import MachineSnapshot


@dataclass(frozen=True)
class NocEnergyModel:
    """Per-event energy constants for routers and links (32 nm defaults)."""

    router_energy_pj_per_flit: float = 0.98
    link_energy_pj_per_flit_hop: float = 0.64
    #: Static leakage per nanosecond of run time (only used by the
    #: total-energy ablation, never by the paper's dynamic-energy figures).
    leakage_pw_per_router: float = 0.0

    def __post_init__(self) -> None:
        if self.router_energy_pj_per_flit < 0 or self.link_energy_pj_per_flit_hop < 0:
            raise ConfigurationError("energy constants cannot be negative")

    # ------------------------------------------------------------------
    def dynamic_energy_pj(self, flit_hops: int) -> float:
        """Dynamic energy (pJ) for a given number of flit-hops.

        Each flit-hop includes one router traversal and one link traversal.
        """
        if flit_hops < 0:
            raise ConfigurationError("flit_hops cannot be negative")
        per_hop = self.router_energy_pj_per_flit + self.link_energy_pj_per_flit_hop
        return flit_hops * per_hop

    def energy_of(self, snapshot: MachineSnapshot) -> float:
        """Dynamic NoC energy (pJ) of a finished run."""
        return self.dynamic_energy_pj(snapshot.network_flit_hops)

    def normalized(
        self, baseline: MachineSnapshot, experiment: MachineSnapshot
    ) -> float:
        """Experiment NoC energy normalised to the baseline (Figure 3f)."""
        base = self.energy_of(baseline)
        if base == 0:
            return 1.0
        return self.energy_of(experiment) / base
