"""Probe-filter area model (the area table in Section III-B).

The paper quantifies the die area occupied by the probe filters (all
sixteen of them, via McPAT at 32 nm) as the coverage is reduced, to show
how much SRAM ALLARM lets a designer hand back to the last-level cache:

===========  =========
Coverage      Area
===========  =========
512 kB        70.89 mm²
256 kB        26.95 mm²
128 kB        19.90 mm²
 64 kB         8.20 mm²
 32 kB         5.93 mm²
===========  =========

We reproduce the table with a calibrated lookup for exactly those sizes
and provide an analytic SRAM-array model (area roughly proportional to
capacity, plus a fixed peripheral overhead per bank) for other sizes, with
log-log interpolation between the calibrated points so that sweeps over
arbitrary coverages remain monotonic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError

#: The paper's McPAT-derived area numbers (coverage bytes -> mm^2).
PAPER_AREA_TABLE: Dict[int, float] = {
    512 * 1024: 70.89,
    256 * 1024: 26.95,
    128 * 1024: 19.90,
    64 * 1024: 8.20,
    32 * 1024: 5.93,
}


@dataclass(frozen=True)
class ProbeFilterAreaModel:
    """Area of the machine's probe filters as a function of coverage.

    ``calibrated`` entries are returned exactly; other coverages are
    estimated by log-log interpolation (or extrapolation at the ends),
    which preserves the paper's super-linear growth towards large arrays.
    """

    calibrated: Dict[int, float] = field(
        default_factory=lambda: dict(PAPER_AREA_TABLE)
    )

    def __post_init__(self) -> None:
        if len(self.calibrated) < 2:
            raise ConfigurationError("area model needs at least two calibration points")
        for coverage, area in self.calibrated.items():
            if coverage <= 0 or area <= 0:
                raise ConfigurationError("calibration points must be positive")

    # ------------------------------------------------------------------
    def area_mm2(self, coverage_bytes: int) -> float:
        """Return the total probe-filter area (mm²) for a coverage."""
        if coverage_bytes <= 0:
            raise ConfigurationError("coverage must be positive")
        if coverage_bytes in self.calibrated:
            return self.calibrated[coverage_bytes]
        return self._interpolate(coverage_bytes)

    def table(self, coverages: Tuple[int, ...] = tuple(sorted(PAPER_AREA_TABLE, reverse=True))) -> List[Tuple[int, float]]:
        """Return ``(coverage, area)`` rows, largest coverage first."""
        return [(coverage, self.area_mm2(coverage)) for coverage in coverages]

    def area_saved_mm2(self, from_coverage: int, to_coverage: int) -> float:
        """SRAM area released by shrinking the probe filter.

        This is the quantity the paper argues ALLARM makes available to be
        "returned to the cache": the area difference between the original
        and the reduced probe-filter configuration.
        """
        return self.area_mm2(from_coverage) - self.area_mm2(to_coverage)

    # ------------------------------------------------------------------
    def _interpolate(self, coverage_bytes: int) -> float:
        points = sorted(self.calibrated.items())
        log_x = math.log(coverage_bytes)
        # Clamp-extrapolate using the nearest segment at either end.
        if coverage_bytes <= points[0][0]:
            (x0, y0), (x1, y1) = points[0], points[1]
        elif coverage_bytes >= points[-1][0]:
            (x0, y0), (x1, y1) = points[-2], points[-1]
        else:
            (x0, y0), (x1, y1) = points[0], points[1]
            for (ax, ay), (bx, by) in zip(points, points[1:]):
                if ax <= coverage_bytes <= bx:
                    (x0, y0), (x1, y1) = (ax, ay), (bx, by)
                    break
        slope = (math.log(y1) - math.log(y0)) / (math.log(x1) - math.log(x0))
        return math.exp(math.log(y0) + slope * (log_x - math.log(x0)))
