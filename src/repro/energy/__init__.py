"""McPAT-style energy and area models for the NoC and probe filter."""

from repro.energy.area import PAPER_AREA_TABLE, ProbeFilterAreaModel
from repro.energy.directory_energy import ProbeFilterEnergyModel
from repro.energy.mcpat import EnergyReport, McPatModel, NormalizedEnergy
from repro.energy.noc_energy import NocEnergyModel

__all__ = [
    "NocEnergyModel",
    "ProbeFilterEnergyModel",
    "ProbeFilterAreaModel",
    "PAPER_AREA_TABLE",
    "McPatModel",
    "EnergyReport",
    "NormalizedEnergy",
]
