"""Combined McPAT-style energy report for a simulation run.

Bundles the NoC and probe-filter dynamic-energy models (and the area
model) into a single report object, mirroring how the paper uses McPAT:
feed it the event counts of a run, get back component energies, and
normalise ALLARM against the baseline (Figure 3f and the area table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.energy.area import ProbeFilterAreaModel
from repro.energy.directory_energy import ProbeFilterEnergyModel
from repro.energy.noc_energy import NocEnergyModel
from repro.stats.snapshot import MachineSnapshot


@dataclass
class EnergyReport:
    """Dynamic energy of one run, by component (picojoules)."""

    noc_pj: float
    probe_filter_pj: float

    @property
    def total_pj(self) -> float:
        """Total dynamic energy across modelled components."""
        return self.noc_pj + self.probe_filter_pj

    def as_dict(self) -> Dict[str, float]:
        """Return the component energies as a plain dictionary."""
        return {
            "noc_pj": self.noc_pj,
            "probe_filter_pj": self.probe_filter_pj,
            "total_pj": self.total_pj,
        }


@dataclass
class NormalizedEnergy:
    """Figure 3f: experiment energy normalised to the baseline."""

    noc: float
    probe_filter: float

    def as_dict(self) -> Dict[str, float]:
        """Return the normalised values as a plain dictionary."""
        return {"noc": self.noc, "probe_filter": self.probe_filter}


@dataclass
class McPatModel:
    """Aggregated power/area models, analogous to the paper's McPAT use."""

    noc: NocEnergyModel = field(default_factory=NocEnergyModel)
    probe_filter: ProbeFilterEnergyModel = field(default_factory=ProbeFilterEnergyModel)
    area: ProbeFilterAreaModel = field(default_factory=ProbeFilterAreaModel)

    # ------------------------------------------------------------------
    def report(
        self, snapshot: MachineSnapshot, probe_filter_coverage: int
    ) -> EnergyReport:
        """Compute the dynamic-energy report for one finished run."""
        return EnergyReport(
            noc_pj=self.noc.energy_of(snapshot),
            probe_filter_pj=self.probe_filter.energy_of(
                snapshot, probe_filter_coverage
            ),
        )

    def normalized(
        self,
        baseline: MachineSnapshot,
        experiment: MachineSnapshot,
        probe_filter_coverage: int,
    ) -> NormalizedEnergy:
        """Normalise the experiment's energy to the baseline (Figure 3f)."""
        return NormalizedEnergy(
            noc=self.noc.normalized(baseline, experiment),
            probe_filter=self.probe_filter.normalized(
                baseline, experiment, probe_filter_coverage
            ),
        )

    def area_table(self):
        """The probe-filter area table of Section III-B."""
        return self.area.table()
