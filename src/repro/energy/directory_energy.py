"""Dynamic energy model for the probe filter (sparse directory).

Section II-B of the paper explains the mechanism: every probe-filter
eviction reads out the tag and data of the replacement way and then writes
the new entry, and both array operations consume dynamic power, so fewer
evictions (and fewer allocations overall) directly reduce the directory
controller's dynamic energy — 15% on average in the paper (Figure 3f,
"PF" bars).

We charge a per-read and per-write energy to the probe-filter SRAM array,
scaled with array capacity using the usual square-root rule for SRAM
bitline/wordline energy (a CACTI-style approximation).  The probe-filter
statistics already count one extra read per eviction (victim read-out), so
the energy model only needs the read and write totals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.stats.snapshot import MachineSnapshot


@dataclass(frozen=True)
class ProbeFilterEnergyModel:
    """Per-access energy for a probe filter of a given coverage.

    Parameters
    ----------
    reference_coverage_bytes:
        Array size at which the reference energies are specified.
    read_energy_pj, write_energy_pj:
        Energy per read / write access of the reference array (32 nm
        McPAT-like values for a ~1 MB tag+state SRAM).
    """

    reference_coverage_bytes: int = 512 * 1024
    read_energy_pj: float = 18.0
    write_energy_pj: float = 24.0

    def __post_init__(self) -> None:
        if self.reference_coverage_bytes <= 0:
            raise ConfigurationError("reference coverage must be positive")
        if self.read_energy_pj <= 0 or self.write_energy_pj <= 0:
            raise ConfigurationError("per-access energies must be positive")

    # ------------------------------------------------------------------
    def _scale(self, coverage_bytes: int) -> float:
        if coverage_bytes <= 0:
            raise ConfigurationError("coverage must be positive")
        return math.sqrt(coverage_bytes / self.reference_coverage_bytes)

    def read_energy(self, coverage_bytes: int) -> float:
        """Energy (pJ) of one probe-filter read at the given coverage."""
        return self.read_energy_pj * self._scale(coverage_bytes)

    def write_energy(self, coverage_bytes: int) -> float:
        """Energy (pJ) of one probe-filter write at the given coverage."""
        return self.write_energy_pj * self._scale(coverage_bytes)

    def dynamic_energy_pj(
        self, reads: int, writes: int, coverage_bytes: int
    ) -> float:
        """Total dynamic energy (pJ) for the given access counts."""
        if reads < 0 or writes < 0:
            raise ConfigurationError("access counts cannot be negative")
        return reads * self.read_energy(coverage_bytes) + writes * self.write_energy(
            coverage_bytes
        )

    def energy_of(self, snapshot: MachineSnapshot, coverage_bytes: int) -> float:
        """Dynamic probe-filter energy (pJ) of a finished run."""
        return self.dynamic_energy_pj(
            snapshot.pf_reads, snapshot.pf_writes, coverage_bytes
        )

    def normalized(
        self,
        baseline: MachineSnapshot,
        experiment: MachineSnapshot,
        coverage_bytes: int,
    ) -> float:
        """Experiment PF energy normalised to the baseline (Figure 3f)."""
        base = self.energy_of(baseline, coverage_bytes)
        if base == 0:
            return 1.0
        return self.energy_of(experiment, coverage_bytes) / base
