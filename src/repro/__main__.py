"""Command line for the sweep engine: ``python -m repro <command>``.

Commands
--------
``sweep``
    Run a named sweep plan (``fig3``, ``fig3h``, ``fig4``, ``micro`` or
    ``all``) through the :class:`~repro.analysis.executor.SweepExecutor`,
    optionally fanning runs out over worker processes, caching snapshots
    on disk and replaying recorded traces, and print a per-run result
    table.
``trace record``
    Capture the workload streams of a plan as binary v2 traces, one file
    per distinct stream (``--format blocked --epoch-records N`` records
    v3.1 columnar traces with a seekable epoch index).
``trace replay``
    Replay one trace file against a configurable machine and print the
    run's headline statistics.
``trace info``
    Summarise a trace file (format, records, size, access mix, epochs).
``replay``
    Checkpointed/sharded replay of one trace: serial with periodic
    machine checkpoints (``--checkpoint-dir``), resumable after a kill
    (``--resume``), or fanned over a process pool (``--shards N``) with
    each worker restoring its span's checkpoint.  Snapshots are
    bit-identical to a plain single-process replay in every mode.
``golden record``
    Run the canonical conformance grid and (re)write the golden-snapshot
    corpus (``tests/golden/corpus.json`` by default).
``golden check``
    Re-run the grid on the chosen engine and verify every snapshot digest
    against the committed corpus; exits non-zero on any mismatch.
``serve``
    Run the coalescing cache-front sweep server: warm snapshots from the
    cache tiers, identical in-flight requests coalesced into a single
    execution, cold work sharded across server processes sharing one
    cache directory (see ``docs/serving.md``).
``serve-bench``
    Load-generate against a sweep server (or a self-hosted ephemeral
    one) and report throughput, latency percentiles and the server's
    executed/coalesced/warm counters; optionally append the measurement
    to a ``bench:"serve"`` trajectory file.
``scenarios sample``
    Sample a reproducible set of generated workload families from the
    parameter distributions of :mod:`repro.workloads.generator`, print
    the set, and optionally write its JSON manifest / append a
    ``bench:"scenarios"`` generation-throughput entry.
``scenarios describe``
    Print the full spec (regions, mix, phases, seeds, digest) a
    ``scenario-<seed>-<index>`` name deterministically resolves to.
``plans``
    List the named plans and how many runs each contains at the current
    settings.
``version``
    Print the library version banner.

Examples
--------
::

    python -m repro sweep --plan fig3 --workers 4 --cache-dir .repro-cache
    python -m repro sweep --plan fig3 --engine reference --cache-dir .repro-cache
    python -m repro sweep --plan all --workers 4 --retries 2 \\
        --run-timeout 300 --keep-going
    python -m repro sweep --plan fig3 --trace-dir .repro-traces --record-traces
    python -m repro trace record --plan micro --trace-dir .repro-traces
    python -m repro trace record --plan micro --trace-dir .repro-traces \\
        --format blocked --epoch-records 100000
    python -m repro trace replay .repro-traces/<digest>.rpt2 --policy allarm
    python -m repro trace info .repro-traces/<digest>.rpt2
    python -m repro replay .repro-traces/<digest>.rpt3 \\
        --epoch-records 100000 --checkpoint-dir .repro-ckpt --resume
    python -m repro replay .repro-traces/<digest>.rpt3 \\
        --checkpoint-dir .repro-ckpt --shards 4
    python -m repro golden record
    python -m repro golden check --engine reference
    python -m repro serve --cache-dir .repro-cache --retries 2
    python -m repro serve --port 8643 --shard-index 1 --shard-count 2 \\
        --cache-dir .repro-cache
    python -m repro serve-bench --plan micro --specs 2 --requests 32 \\
        --concurrency 8 --bench-log BENCH_serve.json
    python -m repro scenarios sample --seed 11 --count 8 \\
        --manifest scenarios.json
    python -m repro scenarios describe scenario-11-3
    python -m repro sweep --plan scenarios --workers 4
    python -m repro plans
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.analysis.executor import (
    SOURCE_DISK,
    SOURCE_EXECUTED,
    SOURCE_MEMORY,
    SOURCE_REPLAYED,
    SweepExecutor,
    SweepOutcome,
    record_spec_trace,
    trace_file_name,
)
from repro.analysis.plan import (
    PLAN_BUILDERS,
    ExperimentSettings,
    build_plan,
)
from repro.analysis.retrypool import RetryPolicy
from repro.errors import ExecutionError, ReproError
from repro.system.fastcore import DEFAULT_ENGINE, ENGINES
from repro.version import version_string


def _settings_from_args(args: argparse.Namespace) -> ExperimentSettings:
    """Environment-derived settings with command-line overrides applied."""
    settings = ExperimentSettings.from_environment()
    overrides = {}
    if args.accesses is not None:
        overrides["accesses"] = args.accesses
    if args.mp_accesses is not None:
        overrides["multiprocess_accesses"] = args.mp_accesses
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        from dataclasses import replace

        settings = replace(settings, **overrides)
    return settings


def _parse_benchmarks(value: Optional[str]) -> Optional[List[str]]:
    if not value:
        return None
    return [name.strip() for name in value.split(",") if name.strip()]


def format_outcome_table(outcome: SweepOutcome) -> str:
    """Render one sweep outcome as an aligned text table."""
    header = (
        f"{'benchmark':<16} {'policy':<9} {'layout':<6} {'pf(kB)':>7} "
        f"{'time(ns)':>14} {'l2miss':>9} {'pf_evict':>9} {'local%':>7} {'source':>9}"
    )
    lines = [header, "-" * len(header)]
    for result in outcome.results:
        spec, snap = result.spec, result.snapshot
        lines.append(
            f"{spec.benchmark:<16} {spec.policy:<9} {spec.layout:<6} "
            f"{spec.pf_size // 1024:>7} {snap.execution_time_ns:>14.1f} "
            f"{snap.l2_misses:>9} {snap.pf_evictions:>9} "
            f"{snap.local_fraction * 100:>6.1f}% {result.source:>9}"
        )
    return "\n".join(lines)


def format_outcome_summary(outcome: SweepOutcome) -> str:
    """One-line provenance summary of a sweep outcome."""
    counts = outcome.counts_by_source()
    return (
        f"{len(outcome)} runs in {outcome.elapsed_s:.2f}s — "
        f"{counts[SOURCE_EXECUTED]} executed, "
        f"{counts[SOURCE_REPLAYED]} replayed from traces, "
        f"{counts[SOURCE_DISK]} from disk cache, "
        f"{counts[SOURCE_MEMORY]} from memory "
        f"({outcome.cached_fraction * 100:.0f}% cached)"
    )


def _retry_policy_from_args(args: argparse.Namespace) -> RetryPolicy:
    """Build the run-level retry policy from the shared CLI flags."""
    return RetryPolicy(
        max_attempts=max(1, args.retries + 1),
        base_delay_s=args.retry_delay,
        timeout_s=args.run_timeout,
    )


def format_failures(outcome: SweepOutcome) -> str:
    """Render a sweep's permanent failures, one line each."""
    lines = []
    for failure in outcome.failures:
        spec = failure.spec
        lines.append(
            f"FAILED {spec.workload_name} {spec.policy} "
            f"pf{spec.pf_size // 1024}kB — {failure.kind} after "
            f"{failure.attempts} attempt(s): {failure.error}"
        )
    return "\n".join(lines)


def _report_sweep_outcome(outcome: SweepOutcome) -> int:
    """Print a finished (possibly partial) outcome; return the exit code."""
    print(format_outcome_table(outcome))
    if outcome.retries or outcome.timeouts or outcome.pool_rebuilds:
        print(
            f"fault tolerance: {outcome.retries} retries, "
            f"{outcome.timeouts} timeouts, "
            f"{outcome.pool_rebuilds} pool rebuilds"
        )
    if outcome.failures:
        print(format_failures(outcome), file=sys.stderr)
    print(format_outcome_summary(outcome))
    if outcome.interrupted:
        print("interrupted: partial results above", file=sys.stderr)
        return 130
    return 1 if outcome.failures else 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    settings = _settings_from_args(args)
    benchmarks = _parse_benchmarks(args.benchmarks)
    plan = build_plan(args.plan, settings, benchmarks)
    if args.engine is not None:
        plan = plan.with_engine(args.engine)
    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or None
    executor = SweepExecutor(
        workers=args.workers,
        cache_dir=cache_dir,
        trace_dir=args.trace_dir,
        record_traces=args.record_traces,
        trace_format=args.trace_format,
        retry=_retry_policy_from_args(args),
        keep_going=args.keep_going,
    )

    engines = sorted({spec.engine for spec in plan})
    print(
        f"plan {plan.name!r}: {len(plan)} runs, workers={executor.workers}, "
        f"engine={'/'.join(engines)}, "
        f"cache={'off' if cache_dir is None else cache_dir}, "
        f"traces={'off' if args.trace_dir is None else args.trace_dir}"
    )
    try:
        outcome = executor.run_plan(plan)
    except ExecutionError as exc:
        # The partial outcome still carries every run that finished.
        if exc.outcome is not None:
            code = _report_sweep_outcome(exc.outcome)
        else:
            code = 1
        print(f"error: {exc}", file=sys.stderr)
        return code or 1
    code = _report_sweep_outcome(outcome)
    if code:
        return code

    if args.min_cache_fraction is not None:
        if outcome.cached_fraction < args.min_cache_fraction:
            print(
                f"error: cached fraction {outcome.cached_fraction:.2f} below "
                f"required {args.min_cache_fraction:.2f}",
                file=sys.stderr,
            )
            return 1
    return 0


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from pathlib import Path

    settings = _settings_from_args(args)
    benchmarks = _parse_benchmarks(args.benchmarks)
    plan = build_plan(args.plan, settings, benchmarks)
    trace_dir = Path(args.trace_dir)

    # Many specs share one workload stream (the policy/filter-size grid
    # varies the machine, not the workload); record each stream once.
    streams = {}
    for spec in plan:
        streams.setdefault(spec.stream_digest(), spec)

    print(
        f"plan {plan.name!r}: {len(plan)} runs over {len(streams)} distinct "
        f"workload streams -> {trace_dir}"
    )
    header = f"{'workload':<20} {'records':>9} {'bytes':>10} {'B/rec':>6}  file"
    print(header)
    print("-" * len(header))
    recorded = skipped = 0
    for _digest, spec in sorted(streams.items()):
        path = trace_dir / trace_file_name(spec, format=args.format)
        if path.exists() and not args.force:
            skipped += 1
            continue
        count = record_spec_trace(
            spec,
            path,
            format=args.format,
            epoch_records=args.epoch_records,
            block_records=args.block_records,
        )
        size = path.stat().st_size
        print(
            f"{spec.workload_name:<20} {count:>9} {size:>10} "
            f"{size / max(1, count):>6.2f}  {path.name}"
        )
        recorded += 1
    print(f"{recorded} streams recorded, {skipped} already present")
    return 0


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    from repro.system.config import experiment_config
    from repro.system.fastcore import resolve_engine
    from repro.system.simulator import simulate
    from repro.trace.io import read_trace, read_trace_chunks

    overrides = {}
    if args.scale is not None:
        overrides["scale"] = args.scale
    config = experiment_config(
        args.policy,
        nominal_probe_filter_coverage=args.pf_size,
        **overrides,
    )
    # The batched engine consumes columnar chunks: v3 blocked traces
    # stream their stored blocks with no per-record decode.
    if resolve_engine(args.engine) == "batched":
        accesses = read_trace_chunks(args.path)
    else:
        accesses = read_trace(args.path)
    started = time.perf_counter()
    result = simulate(
        config,
        accesses,
        workload_name=args.label or args.path,
        max_accesses=args.max_accesses,
        engine=args.engine,
    )
    elapsed = time.perf_counter() - started
    rate = result.accesses_simulated / elapsed if elapsed > 0 else 0.0
    print(
        f"replayed {result.accesses_simulated} accesses in {elapsed:.2f}s "
        f"({rate:,.0f}/s) under policy {args.policy!r} "
        f"(engine {result.engine!r})"
    )
    for key, value in result.snapshot.as_dict().items():
        print(f"  {key:<24} {value}")
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    from repro.trace.binary import inspect_trace

    info = inspect_trace(args.path)
    print(f"{info.path}: {info.format} trace")
    print(f"  records        {info.records}")
    print(f"  file bytes     {info.file_bytes}")
    print(f"  bytes/record   {info.bytes_per_record:.2f}")
    print(f"  reads          {info.reads}")
    print(f"  writes         {info.writes}")
    print(f"  instructions   {info.instructions}")
    print(f"  cores          {info.core_count}")
    print(f"  processes      {info.process_count}")
    blocks_label = "blocks" if info.format == "blocked" else "decode chunks"
    print(f"  {blocks_label:<14} {info.blocks}")
    print(f"  records/block  {info.records_per_block:.1f}")
    if info.format == "blocked":
        if info.epochs:
            print(
                f"  epochs         {info.epochs} "
                f"({info.epoch_records} records each)"
            )
        else:
            print("  epochs         none (no epoch index)")
    print(f"  decode MB/s    {info.decode_mb_s:.1f}")
    print("  streams")
    for stream, count in info.stream_records.items():
        print(f"    {stream:<12} {count}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.analysis.shard import record_checkpoints, replay_sharded
    from repro.system.config import experiment_config

    overrides = {}
    if args.scale is not None:
        overrides["scale"] = args.scale
    config = experiment_config(
        args.policy,
        nominal_probe_filter_coverage=args.pf_size,
        **overrides,
    )
    retry = _retry_policy_from_args(args)
    started = time.perf_counter()
    if args.shards > 1:
        outcome = replay_sharded(
            config,
            args.path,
            shards=args.shards,
            checkpoint_dir=args.checkpoint_dir,
            engine=args.engine,
            retry=retry,
        )
        elapsed = time.perf_counter() - started
        rate = outcome.accesses_simulated / elapsed if elapsed > 0 else 0.0
        print(
            f"replayed {outcome.accesses_simulated} accesses over "
            f"{len(outcome.spans)} shards x {outcome.epochs} epochs in "
            f"{elapsed:.2f}s ({rate:,.0f}/s aggregate)"
        )
        snapshot = outcome.snapshot
    else:
        if args.epoch_records is None:
            print(
                "error: serial checkpointed replay needs --epoch-records",
                file=sys.stderr,
            )
            return 2
        result = record_checkpoints(
            config,
            args.path,
            epoch_records=args.epoch_records,
            checkpoint_dir=args.checkpoint_dir,
            engine=args.engine,
            resume=args.resume,
            retry=retry,
        )
        elapsed = time.perf_counter() - started
        replayed = result.accesses_simulated
        rate = replayed / elapsed if elapsed > 0 else 0.0
        print(
            f"replayed to access {replayed} in {elapsed:.2f}s "
            f"({rate:,.0f}/s), checkpoints in {args.checkpoint_dir}"
        )
        snapshot = result.snapshot
    for key, value in snapshot.as_dict().items():
        print(f"  {key:<24} {value}")
    return 0


def _cmd_golden_record(args: argparse.Namespace) -> int:
    from repro.stats.goldens import golden_specs, record_corpus, spec_key

    specs = golden_specs()
    print(
        f"recording golden corpus: {len(specs)} runs "
        f"(engine {args.engine or 'per-spec default'}) -> {args.path}"
    )
    corpus = record_corpus(args.path, engine=args.engine)
    header = f"{'workload':<20} {'policy':<9} {'pf(kB)':>7}  digest"
    print(header)
    print("-" * len(header))
    entries = corpus["entries"]
    for spec in specs:
        digest = entries[spec_key(spec)]["digest"]
        print(
            f"{spec.workload_name:<20} {spec.policy:<9} "
            f"{spec.pf_size // 1024:>7}  {digest[:16]}…"
        )
    print(f"{len(specs)} golden digests written to {args.path}")
    return 0


def _cmd_golden_check(args: argparse.Namespace) -> int:
    from repro.stats.goldens import check_corpus, golden_specs

    specs = golden_specs()
    print(
        f"checking {len(specs)} golden runs against {args.path} "
        f"(engine {args.engine or 'per-spec default'})"
    )
    problems = check_corpus(args.path, engine=args.engine)
    if problems:
        for problem in problems:
            print(f"MISMATCH {problem}", file=sys.stderr)
        print(
            f"error: {len(problems)} golden conformance problem(s); if the "
            f"behaviour change is intended, re-record with "
            f"'python -m repro golden record'",
            file=sys.stderr,
        )
        return 1
    print(f"all {len(specs)} golden digests match")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import SweepServer

    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or None
    executor = SweepExecutor(
        cache_dir=cache_dir,
        trace_dir=args.trace_dir,
        retry=_retry_policy_from_args(args),
    )
    server = SweepServer(
        executor=executor,
        host=args.host,
        port=args.port,
        shard_index=args.shard_index,
        shard_count=args.shard_count,
        parallel=args.parallel,
    )

    async def _serve() -> None:
        await server.start()
        print(
            f"serving on http://{server.host}:{server.port} "
            f"(shard {server.shard_index}/{server.shard_count}, "
            f"parallel={args.parallel}, "
            f"cache={'off' if cache_dir is None else cache_dir})",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.aclose()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
        return 0
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import contextlib
    import tempfile

    from repro.analysis.benchlog import append_bench_entry
    from repro.serve import BackgroundServer, SweepServer, run_load

    settings = _settings_from_args(args)
    benchmarks = _parse_benchmarks(args.benchmarks)
    plan = build_plan(args.plan, settings, benchmarks)
    specs = list(plan)
    if args.specs is not None:
        specs = specs[: args.specs]
    if not specs:
        print("error: the chosen plan subset is empty", file=sys.stderr)
        return 2

    with contextlib.ExitStack() as stack:
        if args.url:
            stripped = args.url.replace("http://", "").rstrip("/")
            host, _, port_text = stripped.partition(":")
            if not port_text:
                print("error: --url needs host:port", file=sys.stderr)
                return 2
            host, port = host, int(port_text)
        else:
            # Self-hosted: an ephemeral server on a throwaway cache so
            # the cold/coalesced path is actually measured.
            cache_dir = args.cache_dir or stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-serve-bench-")
            )
            server = SweepServer(
                executor=SweepExecutor(
                    cache_dir=cache_dir, retry=_retry_policy_from_args(args)
                ),
                parallel=args.parallel,
            )
            stack.enter_context(BackgroundServer(server))
            host, port = server.host, server.port

        print(
            f"load: {args.requests} requests x {args.concurrency} clients "
            f"over {len(specs)} spec(s) against {host}:{port}"
        )
        report = run_load(
            host, port, specs,
            requests=args.requests,
            concurrency=args.concurrency,
        )

    print(
        f"{report.ok} ok / {report.errors} errors in {report.elapsed_s:.2f}s "
        f"({report.throughput_rps:.1f} req/s) — "
        f"p50 {report.p50_ms:.1f}ms, p99 {report.p99_ms:.1f}ms"
    )
    print(
        f"server counters: {report.executed} executed, "
        f"{report.coalesced} coalesced, {report.warm_hits} warm hits; "
        f"responses bit-identical: {report.bit_identical()}"
    )
    if not report.bit_identical():
        print("error: a spec produced differing snapshots", file=sys.stderr)
        return 1
    if args.assert_single_execution:
        if report.errors or report.executed != report.distinct_specs:
            print(
                f"error: expected exactly {report.distinct_specs} execution(s) "
                f"for {report.distinct_specs} distinct spec(s), measured "
                f"{report.executed} (errors: {report.errors})",
                file=sys.stderr,
            )
            return 1
    if args.bench_log:
        entry = {
            "bench": "serve",
            "requests": report.requests,
            "concurrency": report.concurrency,
            "distinct_specs": report.distinct_specs,
            "executed": report.executed,
            "coalesced": report.coalesced,
            "warm_hits": report.warm_hits,
            "throughput_rps": report.throughput_rps,
            "p50_ms": report.p50_ms,
            "p99_ms": report.p99_ms,
        }
        written = append_bench_entry(args.bench_log, entry)
        if written is not None:
            print(f"trajectory entry appended to {written}")
    return 0


def _cmd_scenarios_sample(args: argparse.Namespace) -> int:
    from itertools import islice

    from repro.analysis.benchlog import append_bench_entry
    from repro.ioutil import atomic_write_json
    from repro.workloads.base import SyntheticWorkload
    from repro.workloads.generator import sample_scenarios

    scenario_set = sample_scenarios(args.seed, args.count)
    print(
        f"sampled {len(scenario_set)} families (generator seed {args.seed}); "
        f"names resolve in any process, no registration needed"
    )
    header = (
        f"{'name':<18} {'thr':>3} {'sh':>2} {'footprint':>10} {'accesses':>9} "
        f"{'phases':<28} digest"
    )
    print(header)
    print("-" * len(header))
    for family in scenario_set:
        info = family.describe()
        shapes = "+".join(p["pattern"] for p in info["phases"]) or "mix"
        print(
            f"{family.name:<18} {info['threads']:>3} {info['shared_regions']:>2} "
            f"{info['footprint_bytes']:>10} {info['total_accesses']:>9} "
            f"{shapes:<28} {info['spec_digest'][:12]}…"
        )
    if args.manifest:
        atomic_write_json(args.manifest, scenario_set.manifest())
        print(f"manifest written to {args.manifest}")
    if args.bench_log:
        # Generation throughput over a bounded prefix of every family:
        # the number a trajectory reader needs to budget fuzz/sweep time.
        produced = 0
        started = time.perf_counter()
        for family in scenario_set:
            workload = SyntheticWorkload(family.builder(total_accesses=20_000))
            produced += sum(1 for _ in islice(workload.generate(), 20_000))
        elapsed = time.perf_counter() - started
        entry = {
            "bench": "scenarios",
            "families": len(scenario_set),
            "generator_seed": args.seed,
            "gen_records_per_s": produced / elapsed if elapsed > 0 else 1.0,
        }
        written = append_bench_entry(args.bench_log, entry)
        if written is not None:
            print(f"trajectory entry appended to {written}")
    return 0


def _cmd_scenarios_describe(args: argparse.Namespace) -> int:
    from repro.workloads.generator import parse_family_name, spec_digest
    from repro.workloads.registry import build_spec

    for name in args.names:
        if parse_family_name(name) is None:
            print(f"error: {name!r} is not a scenario family name", file=sys.stderr)
            return 2
        spec = build_spec(name)
        print(f"{name}: {spec.description}")
        print(f"  workload seed   {spec.seed}")
        print(f"  spec digest     {spec_digest(spec)}")
        print(f"  threads         {spec.thread_count}")
        print(f"  total accesses  {spec.total_accesses} (at the builder default)")
        print("  regions")
        for region in spec.regions:
            sharing = f" sharing={region.sharing}" if region.kind == "shared" else ""
            print(
                f"    {region.name:<10} {region.kind:<8} "
                f"{region.bytes_per_instance:>9}B{sharing} reuse={region.reuse} "
                f"wf={region.write_fraction:.3f} mix={spec.mix.get(region.name, 0.0)}"
            )
        if spec.phases:
            print("  phases")
            for phase in spec.phases:
                target = phase.region or "(spec-wide mix)"
                extra = (
                    f" stride={phase.stride_lines}" if phase.pattern == "stride" else ""
                )
                print(
                    f"    {phase.name:<8} {phase.pattern:<16} weight={phase.weight} "
                    f"region={target}{extra}"
                )
        else:
            print("  phases          none (stationary mix)")
    return 0


def _cmd_plans(args: argparse.Namespace) -> int:
    settings = _settings_from_args(args)
    benchmarks = _parse_benchmarks(args.benchmarks)
    for name in sorted(PLAN_BUILDERS):
        plan = build_plan(name, settings, benchmarks)
        print(f"{name:<8} {len(plan):>4} runs")
    return 0


def _cmd_version(_: argparse.Namespace) -> int:
    print(version_string())
    return 0


def _add_retry_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared fault-tolerance flags (``sweep`` and ``replay``)."""
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help=(
            "retry each failed run up to this many times with exponential "
            "backoff (default: 0, fail on the first error)"
        ),
    )
    parser.add_argument(
        "--run-timeout",
        type=float,
        default=None,
        metavar="S",
        help=(
            "kill any pooled run exceeding this many seconds of wall clock "
            "and charge it a retry attempt (default: no deadline; serial "
            "checkpointed replay cannot be deadlined)"
        ),
    )
    parser.add_argument(
        "--retry-delay",
        type=float,
        default=0.0,
        metavar="S",
        help="base of the exponential retry backoff in seconds (default: 0)",
    )


def _add_settings_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--benchmarks",
        help="comma-separated benchmark subset (default: the paper's list)",
    )
    parser.add_argument(
        "--accesses", type=int, help="compute accesses per 16-thread run"
    )
    parser.add_argument(
        "--mp-accesses", type=int, help="accesses per copy in 2-process runs"
    )
    parser.add_argument("--scale", type=int, help="machine/footprint down-scale factor")
    parser.add_argument("--seed", type=int, help="base workload seed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Sweep engine for the ALLARM reproduction.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sweep = subparsers.add_parser("sweep", help="run a sweep plan")
    sweep.add_argument(
        "--plan",
        choices=sorted(PLAN_BUILDERS),
        default="fig3",
        help="which figure grid to run (default: fig3)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for uncached runs (default: 1, serial)",
    )
    sweep.add_argument(
        "--cache-dir",
        help="on-disk snapshot cache directory (default: $REPRO_CACHE_DIR)",
    )
    sweep.add_argument(
        "--min-cache-fraction",
        type=float,
        help="exit non-zero unless at least this fraction of runs was cached",
    )
    sweep.add_argument(
        "--trace-dir",
        help="directory of recorded traces to replay runs from (see 'trace record')",
    )
    sweep.add_argument(
        "--record-traces",
        action="store_true",
        help="with --trace-dir: capture any missing workload trace before running",
    )
    sweep.add_argument(
        "--trace-format",
        choices=("binary", "blocked"),
        default=None,
        help=(
            "format for traces captured by --record-traces (default: "
            "'blocked' for batched-engine specs, 'binary' otherwise)"
        ),
    )
    sweep.add_argument(
        "--engine",
        choices=ENGINES,
        help=(
            "simulation engine for every run in the plan "
            f"(default: {DEFAULT_ENGINE}; engines are verified bit-identical)"
        ),
    )
    sweep.add_argument(
        "--keep-going",
        action="store_true",
        help=(
            "on a permanently failed run, record the failure and finish "
            "the rest of the grid instead of aborting (exit code 1)"
        ),
    )
    _add_retry_arguments(sweep)
    _add_settings_arguments(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    trace = subparsers.add_parser("trace", help="record, replay and inspect traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    record = trace_sub.add_parser(
        "record", help="capture a plan's workload streams as binary traces"
    )
    record.add_argument(
        "--plan",
        choices=sorted(PLAN_BUILDERS),
        default="fig3",
        help="plan whose workload streams to record (default: fig3)",
    )
    record.add_argument(
        "--trace-dir", required=True, help="directory to write traces into"
    )
    record.add_argument(
        "--force", action="store_true", help="re-record streams already on disk"
    )
    record.add_argument(
        "--format",
        choices=("binary", "blocked"),
        default="binary",
        help=(
            "trace format: v2 'binary' (compact, default) or v3 'blocked' "
            "(columnar, fastest on the batched engine)"
        ),
    )
    record.add_argument(
        "--epoch-records",
        type=int,
        default=None,
        help=(
            "with --format blocked: add the v3.1 seekable epoch index, "
            "one entry per this many records (enables sharded replay; "
            "must be a multiple of the block size)"
        ),
    )
    record.add_argument(
        "--block-records",
        type=int,
        default=None,
        help="with --format blocked: records per columnar block (default: 8192)",
    )
    _add_settings_arguments(record)
    record.set_defaults(func=_cmd_trace_record)

    replay = trace_sub.add_parser(
        "replay", help="replay one trace file and print run statistics"
    )
    replay.add_argument("path", help="trace file (text v1 or binary v2)")
    replay.add_argument(
        "--policy",
        choices=("baseline", "allarm"),
        default="baseline",
        help="directory policy to replay under (default: baseline)",
    )
    replay.add_argument(
        "--pf-size",
        type=int,
        default=512 * 1024,
        help="nominal probe-filter coverage in bytes (default: 512 kB)",
    )
    replay.add_argument(
        "--scale",
        type=int,
        help="machine down-scale factor (default: the harness-wide default)",
    )
    replay.add_argument("--label", help="workload label recorded in the result")
    replay.add_argument(
        "--max-accesses", type=int, help="replay at most this many records"
    )
    replay.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help=f"simulation engine (default: {DEFAULT_ENGINE})",
    )
    replay.set_defaults(func=_cmd_trace_replay)

    info = trace_sub.add_parser("info", help="summarise a trace file")
    info.add_argument("path", help="trace file (text v1 or binary v2)")
    info.set_defaults(func=_cmd_trace_info)

    sharded = subparsers.add_parser(
        "replay",
        help="checkpointed/sharded replay of one trace (resume after kill)",
    )
    sharded.add_argument("path", help="trace file to replay")
    sharded.add_argument(
        "--checkpoint-dir",
        required=True,
        help="directory holding the epoch checkpoints and manifest",
    )
    sharded.add_argument(
        "--epoch-records",
        type=int,
        default=None,
        help="checkpoint every this many accesses (serial mode)",
    )
    sharded.add_argument(
        "--resume",
        action="store_true",
        help="resume a killed serial replay from its newest checkpoint",
    )
    sharded.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "fan epoch spans over this many worker processes (needs a "
            "v3.1 epoch-indexed trace and a prior serial checkpointed "
            "run; default: 1, serial)"
        ),
    )
    sharded.add_argument(
        "--policy",
        choices=("baseline", "allarm"),
        default="baseline",
        help="directory policy to replay under (default: baseline)",
    )
    sharded.add_argument(
        "--pf-size",
        type=int,
        default=512 * 1024,
        help="nominal probe-filter coverage in bytes (default: 512 kB)",
    )
    sharded.add_argument(
        "--scale",
        type=int,
        help="machine down-scale factor (default: the harness-wide default)",
    )
    sharded.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help=f"simulation engine (default: {DEFAULT_ENGINE})",
    )
    _add_retry_arguments(sharded)
    sharded.set_defaults(func=_cmd_replay)

    golden = subparsers.add_parser(
        "golden", help="record/check the golden-snapshot conformance corpus"
    )
    golden_sub = golden.add_subparsers(dest="golden_command", required=True)
    for name, handler, blurb in (
        ("record", _cmd_golden_record, "run the canonical grid and write the corpus"),
        ("check", _cmd_golden_check, "verify snapshot digests against the corpus"),
    ):
        sub = golden_sub.add_parser(name, help=blurb)
        sub.add_argument(
            "--path",
            default="tests/golden/corpus.json",
            help="corpus file (default: tests/golden/corpus.json)",
        )
        sub.add_argument(
            "--engine",
            choices=ENGINES,
            default=None,
            help=(
                "simulation engine to run the grid on "
                f"(default: {DEFAULT_ENGINE}; digests are engine-independent)"
            ),
        )
        sub.set_defaults(func=handler)

    serve = subparsers.add_parser(
        "serve",
        help="run the coalescing cache-front sweep server (see docs/serving.md)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8642,
        help="bind port (0 picks an ephemeral one; default: 8642)",
    )
    serve.add_argument(
        "--cache-dir",
        help="on-disk snapshot cache directory (default: $REPRO_CACHE_DIR)",
    )
    serve.add_argument(
        "--trace-dir",
        help="directory of recorded traces to replay runs from",
    )
    serve.add_argument(
        "--parallel", type=int, default=2,
        help="concurrent executions this server runs (default: 2)",
    )
    serve.add_argument(
        "--shard-index", type=int, default=0,
        help="this process's slot in a shard group (default: 0)",
    )
    serve.add_argument(
        "--shard-count", type=int, default=1,
        help=(
            "number of server processes sharing the cache directory; cold "
            "executions are partitioned by spec digest (default: 1)"
        ),
    )
    _add_retry_arguments(serve)
    serve.set_defaults(func=_cmd_serve)

    serve_bench = subparsers.add_parser(
        "serve-bench",
        help="load-generate against a sweep server and report throughput/latency",
    )
    serve_bench.add_argument(
        "--url",
        help=(
            "server to drive as host:port (default: self-host an ephemeral "
            "server on a throwaway cache)"
        ),
    )
    serve_bench.add_argument(
        "--plan",
        choices=sorted(PLAN_BUILDERS),
        default="micro",
        help="plan whose specs form the request mix (default: micro)",
    )
    serve_bench.add_argument(
        "--specs", type=int, default=None,
        help="use only the first N specs of the plan (default: all)",
    )
    serve_bench.add_argument(
        "--requests", type=int, default=32,
        help="total requests to issue (default: 32)",
    )
    serve_bench.add_argument(
        "--concurrency", type=int, default=8,
        help="concurrent client connections (default: 8)",
    )
    serve_bench.add_argument(
        "--parallel", type=int, default=2,
        help="self-hosted server's execution threads (default: 2)",
    )
    serve_bench.add_argument(
        "--cache-dir",
        help="self-hosted server's cache directory (default: throwaway temp dir)",
    )
    serve_bench.add_argument(
        "--bench-log",
        default=None,
        metavar="PATH",
        help=(
            "append a bench:'serve' entry to this trajectory file "
            "(e.g. BENCH_serve.json; default: don't)"
        ),
    )
    serve_bench.add_argument(
        "--assert-single-execution",
        action="store_true",
        help=(
            "exit non-zero unless the server executed each distinct spec "
            "exactly once (every duplicate coalesced or served warm)"
        ),
    )
    _add_retry_arguments(serve_bench)
    _add_settings_arguments(serve_bench)
    serve_bench.set_defaults(func=_cmd_serve_bench)

    scenarios = subparsers.add_parser(
        "scenarios",
        help="sample and inspect generated workload families (docs/scenarios.md)",
    )
    scenarios_sub = scenarios.add_subparsers(dest="scenarios_command", required=True)

    sample = scenarios_sub.add_parser(
        "sample", help="sample a reproducible scenario set and print its manifest"
    )
    sample.add_argument(
        "--seed", type=int, default=0,
        help="generator seed keying the whole set (default: 0)",
    )
    sample.add_argument(
        "--count", type=int, default=8,
        help="families to sample (default: 8)",
    )
    sample.add_argument(
        "--manifest", metavar="PATH",
        help="write the set's JSON manifest (names, seeds, spec digests) here",
    )
    sample.add_argument(
        "--bench-log", metavar="PATH",
        help=(
            "append a bench:'scenarios' generation-throughput entry to this "
            "trajectory file (e.g. BENCH_scenarios.json; default: don't)"
        ),
    )
    sample.set_defaults(func=_cmd_scenarios_sample)

    describe = scenarios_sub.add_parser(
        "describe", help="print the full spec a scenario name resolves to"
    )
    describe.add_argument(
        "names", nargs="+", metavar="NAME",
        help="scenario family names (e.g. scenario-11-3)",
    )
    describe.set_defaults(func=_cmd_scenarios_describe)

    plans = subparsers.add_parser("plans", help="list named plans and sizes")
    _add_settings_arguments(plans)
    plans.set_defaults(func=_cmd_plans)

    version = subparsers.add_parser("version", help="print the version banner")
    version.set_defaults(func=_cmd_version)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro``."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
