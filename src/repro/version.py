"""Version information for the ALLARM reproduction library."""

from __future__ import annotations

__version__ = "1.0.0"

#: Paper reference reproduced by this library.
PAPER_TITLE = "ALLARM: Optimizing Sparse Directories for Thread-Local Data"
PAPER_AUTHORS = ("Amitabha Roy", "Timothy M. Jones")
PAPER_VENUE = "DATE 2014"


def version_string() -> str:
    """Return a human-readable version banner."""
    return f"repro {__version__} — reproduction of '{PAPER_TITLE}' ({PAPER_VENUE})"
