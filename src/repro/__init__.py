"""repro — a reproduction of *ALLARM: Optimizing Sparse Directories for
Thread-Local Data* (Roy & Jones, DATE 2014).

The package provides a trace-driven, transaction-level simulator of a
16-node NUMA multicore with sparse-directory (probe-filter) cache
coherence, synthetic SPLASH2/Parsec-like workloads, McPAT-style energy
and area models, and an experiment harness that regenerates every figure
and table of the paper's evaluation.

Quickstart
----------
>>> from repro import paper_config, build_workload, simulate
>>> spec = build_workload("barnes", total_accesses=20_000)
>>> baseline = simulate(paper_config("baseline"), spec.generate(), "barnes")
>>> allarm = simulate(paper_config("allarm"),
...                   build_workload("barnes", total_accesses=20_000).generate(),
...                   "barnes")
>>> allarm.snapshot.pf_evictions <= baseline.snapshot.pf_evictions
True
"""

from repro.analysis.executor import SweepExecutor, execute_run_spec
from repro.analysis.plan import ExperimentSettings, RunSpec, SweepPlan, build_plan
from repro.core.policy import AllarmPolicy, BaselinePolicy, PhysicalRange
from repro.energy.mcpat import McPatModel
from repro.errors import (
    AddressError,
    AllocationError,
    ConfigurationError,
    NetworkError,
    ProtocolError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.stats.compare import RunComparison, geometric_mean
from repro.stats.goldens import check_corpus, golden_specs, record_corpus
from repro.stats.snapshot import MachineSnapshot, collect
from repro.system.config import (
    SystemConfig,
    experiment_config,
    paper_config,
    scaled_config,
)
from repro.system.machine import Machine
from repro.system.simulator import SimulationResult, Simulator, simulate
from repro.coherence.invariants import check_machine_invariants
from repro.trace.io import count_records, read_trace, sniff_format, write_trace
from repro.trace.record import AccessRecord, AccessType
from repro.version import __version__, version_string
from repro.workloads.registry import (
    MICROBENCH_FAMILIES,
    PAPER_BENCHMARKS,
    all_benchmark_names,
    benchmark_names,
    build_spec,
    build_workload,
)

__all__ = [
    "__version__",
    "version_string",
    # configuration and system
    "SystemConfig",
    "paper_config",
    "scaled_config",
    "experiment_config",
    "Machine",
    "Simulator",
    "SimulationResult",
    "simulate",
    # sweep engine
    "ExperimentSettings",
    "RunSpec",
    "SweepPlan",
    "SweepExecutor",
    "build_plan",
    "execute_run_spec",
    # the contribution
    "BaselinePolicy",
    "AllarmPolicy",
    "PhysicalRange",
    # workloads and traces
    "PAPER_BENCHMARKS",
    "MICROBENCH_FAMILIES",
    "all_benchmark_names",
    "benchmark_names",
    "build_spec",
    "build_workload",
    "AccessRecord",
    "AccessType",
    "read_trace",
    "write_trace",
    "count_records",
    "sniff_format",
    # coherence validation
    "check_machine_invariants",
    # golden-snapshot conformance corpus
    "golden_specs",
    "record_corpus",
    "check_corpus",
    # statistics and energy
    "MachineSnapshot",
    "collect",
    "RunComparison",
    "geometric_mean",
    "McPatModel",
    # errors
    "ReproError",
    "ConfigurationError",
    "AddressError",
    "AllocationError",
    "ProtocolError",
    "NetworkError",
    "WorkloadError",
    "SimulationError",
]
