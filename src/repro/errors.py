"""Exception hierarchy for the ALLARM reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch a single base class.  Specific subclasses exist for the
major subsystems (configuration, memory allocation, coherence protocol,
network and workload generation) to make failures easy to attribute.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A system, cache, directory or network configuration is invalid.

    Raised during construction (for example a cache whose size is not a
    multiple of ``line_size * associativity``) rather than at use time, so
    that misconfiguration is reported as early as possible.
    """


class AddressError(ReproError):
    """An address is out of range or incorrectly aligned."""


class AllocationError(ReproError):
    """The NUMA allocator could not satisfy a request.

    This occurs only when *every* node's frame pool is exhausted; spilling
    to a remote node is handled transparently and does not raise.
    """


class ProtocolError(ReproError):
    """The coherence protocol reached an inconsistent state.

    These indicate bugs in the protocol engine (or corrupted external
    state), not user errors: for instance a directory entry naming an
    owner whose cache does not hold the line in an owned state.
    """


class NetworkError(ReproError):
    """A message was routed to a non-existent node or link."""


class WorkloadError(ReproError):
    """A workload specification is invalid or a trace is malformed."""


class SimulationError(ReproError):
    """The simulator was driven incorrectly (e.g. run twice)."""


class InjectedFaultError(ReproError):
    """A fault deliberately raised by the :mod:`repro.faults` harness.

    Chaos tests inject these to stand in for real worker failures (OOM
    kills, segfaults, flaky storage).  They carry the fault site and key
    so a retry trace reads like a real incident report.
    """


class ServeError(ReproError):
    """A sweep-service request or response is invalid.

    Raised by the :mod:`repro.serve` layer for malformed wire payloads
    (bad JSON, unknown fields, a spec naming a server-side trace path),
    protocol violations, and client-observed HTTP failures.  Carries an
    optional ``status`` with the HTTP status code the condition maps to.
    """

    def __init__(self, message, status=400):
        super().__init__(message)
        self.status = status


class ExecutionError(ReproError):
    """One or more runs of a sweep or sharded replay failed permanently.

    Raised after the retry policy is exhausted.  ``failures`` lists the
    per-run :class:`~repro.analysis.executor.RunFailure` records and
    ``outcome`` (when available) holds the partial
    :class:`~repro.analysis.executor.SweepOutcome` with every result
    that *did* complete, so callers can salvage finished work even from
    a failed sweep.
    """

    def __init__(self, message, failures=(), outcome=None):
        super().__init__(message)
        self.failures = list(failures)
        self.outcome = outcome
