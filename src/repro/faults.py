"""Deterministic fault injection for chaos-testing the execution layer.

The sweep executor, sharded replay and checkpoint writers all claim to
survive worker crashes, hangs and torn writes.  This module is the
harness that proves it: production code calls :func:`fire` at named
*sites* (and routes artifact bytes through :func:`filter_bytes`), and a
test — or the ``REPRO_FAULTS`` environment variable — installs a
:class:`FaultPlan` describing exactly which site/key/attempt
combinations misbehave and how.  With no plan installed every hook is a
no-op costing one attribute load, so the production paths carry no
measurable overhead.

Everything is deterministic: rules match on site, key substring and the
ambient *attempt* number (set by the retry machinery), artifact
corruption is seeded, and per-process fire caps replace wall-clock
randomness.  The same plan against the same workload always produces
the same failure history, which is what lets the chaos suite assert
bit-identical final snapshots instead of "it probably recovered".

Fault sites wired into the library:

========== =============================================================
site        fired
========== =============================================================
sweep.run   in a pool worker, before executing one ``RunSpec``
            (key: ``#<index>:<workload>:<policy>:pf<size>``)
shard.span  in a pool worker, before replaying one epoch span
            (key: ``#<start>-<end>``)
sim.epoch   in :meth:`Simulator.run` before writing an epoch checkpoint
            (key: ``#<epoch>``)
io.write    inside ``ioutil.atomic_write_*`` — a *filter* site: torn /
            corrupt rules damage the bytes (key: destination file name)
pool.collect in the sweep parent, after collecting each finished result
            (key: task index) — drives the KeyboardInterrupt path;
            fired on both the pooled and the inline execution path
serve.request in the sweep server, after parsing each request body
            (key: ``<method> <path>``) — drives request-level failures
            without killing the server process
========== =============================================================

``REPRO_FAULTS`` syntax — rules separated by ``;``, fields by
whitespace; the first two fields are ``<site> <kind>``, the rest are
``name=value`` options::

    REPRO_FAULTS="sweep.run crash key=#2: attempts=2; io.write torn key=.json fires=1"

Kinds: ``crash`` (raise :class:`InjectedFaultError`), ``exit``
(``os._exit(86)`` — simulates an OOM kill / segfault, breaking the
pool), ``hang`` (sleep ``delay`` seconds, default 3600 — relies on the
caller's timeout), ``slow`` (sleep ``delay`` seconds, default 0.05),
``interrupt`` (raise ``KeyboardInterrupt``), ``torn`` (truncate the
artifact to its first half), ``corrupt`` (seeded XOR over the artifact
bytes).  Options: ``key=<substr>`` (match keys containing this, default
any), ``attempts=<n>`` (fire only while the ambient attempt is <= n,
default 1 — "fail the first n tries"), ``fires=<n>`` (fire at most n
times in this process, default unlimited), ``delay=<seconds>``,
``seed=<int>`` (corruption seed, default 0).
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import ConfigurationError, InjectedFaultError

#: Environment variable naming the ambient fault plan.
FAULTS_ENV = "REPRO_FAULTS"

#: Process exit status used by ``exit`` faults, chosen to be
#: recognisable in worker post-mortems (and unlike any signal code).
EXIT_STATUS = 86

#: Fault kinds that abort or delay execution at a :func:`fire` site.
_FIRE_KINDS = ("crash", "exit", "hang", "slow", "interrupt")

#: Fault kinds that damage artifact bytes at a :func:`filter_bytes` site.
_FILTER_KINDS = ("torn", "corrupt")

_VALID_KINDS = _FIRE_KINDS + _FILTER_KINDS

#: Default sleep lengths (seconds) for the delay kinds.
_DEFAULT_DELAYS = {"hang": 3600.0, "slow": 0.05}


@dataclass(frozen=True)
class FaultRule:
    """One deterministic failure: where, what, and for how many attempts."""

    site: str
    kind: str
    key: Optional[str] = None
    attempts: int = 1
    fires: Optional[int] = None
    delay_s: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r} "
                f"(expected one of {', '.join(_VALID_KINDS)})"
            )
        if not self.site:
            raise ConfigurationError("fault rule needs a non-empty site")
        if self.attempts < 1:
            raise ConfigurationError("fault rule attempts must be >= 1")
        if self.fires is not None and self.fires < 1:
            raise ConfigurationError("fault rule fires must be >= 1")
        if self.delay_s is not None and self.delay_s < 0:
            raise ConfigurationError("fault rule delay must be >= 0")

    def matches(self, site: str, key: str, attempt: int) -> bool:
        """True when this rule applies to *site*/*key* on *attempt*."""
        if site != self.site:
            return False
        if self.key is not None and self.key not in key:
            return False
        return attempt <= self.attempts

    def describe(self) -> str:
        """Render the rule back into ``REPRO_FAULTS`` syntax."""
        parts = [self.site, self.kind]
        if self.key is not None:
            parts.append(f"key={self.key}")
        if self.attempts != 1:
            parts.append(f"attempts={self.attempts}")
        if self.fires is not None:
            parts.append(f"fires={self.fires}")
        if self.delay_s is not None:
            parts.append(f"delay={self.delay_s:g}")
        if self.seed:
            parts.append(f"seed={self.seed}")
        return " ".join(parts)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable set of fault rules.

    Plans travel to pool workers as part of the task payload (spawn-safe:
    nothing relies on fork inheriting module state), so they must pickle
    cleanly and cheaply.
    """

    rules: Tuple[FaultRule, ...] = ()

    def describe(self) -> str:
        """Render the whole plan in ``REPRO_FAULTS`` syntax."""
        return "; ".join(rule.describe() for rule in self.rules)

    def __bool__(self) -> bool:
        return bool(self.rules)


def parse_faults(text: str) -> FaultPlan:
    """Parse ``REPRO_FAULTS`` syntax into a :class:`FaultPlan`.

    Raises :class:`ConfigurationError` on malformed input — a chaos run
    with a typoed plan must fail loudly, not run fault-free and "pass".
    """
    rules: List[FaultRule] = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        fields = clause.split()
        if len(fields) < 2:
            raise ConfigurationError(
                f"fault clause {clause!r} needs at least '<site> <kind>'"
            )
        site, kind = fields[0], fields[1]
        options: Dict[str, Union[str, int, float]] = {}
        for option in fields[2:]:
            name, sep, value = option.partition("=")
            if not sep or not name or not value:
                raise ConfigurationError(
                    f"fault option {option!r} is not name=value"
                )
            options[name] = value
        try:
            rule = FaultRule(
                site=site,
                kind=kind,
                key=str(options["key"]) if "key" in options else None,
                attempts=int(options.get("attempts", 1)),
                fires=int(options["fires"]) if "fires" in options else None,
                delay_s=float(options["delay"]) if "delay" in options else None,
                seed=int(options.get("seed", 0)),
            )
        except ValueError as exc:
            raise ConfigurationError(
                f"fault clause {clause!r} has a malformed option: {exc}"
            ) from None
        unknown = set(options) - {"key", "attempts", "fires", "delay", "seed"}
        if unknown:
            raise ConfigurationError(
                f"fault clause {clause!r} has unknown options: "
                f"{', '.join(sorted(unknown))}"
            )
        rules.append(rule)
    return FaultPlan(tuple(rules))


# ---------------------------------------------------------------------------
# Per-process ambient state.
#
# ``_plan`` is the installed plan (None = consult the environment once and
# memoize).  ``_attempt`` is the ambient retry attempt for rule matching,
# set by the retry machinery around each task invocation.  ``_fired``
# counts fires per rule for the ``fires=`` cap.  All of it is
# process-local by design: pool workers receive their plan explicitly via
# ``install`` and start their own counters.
# ---------------------------------------------------------------------------

_UNSET = object()

_plan: object = _UNSET
_attempt: int = 1
_fired: Dict[int, int] = {}


def install(plan: Optional[FaultPlan]) -> None:
    """Install *plan* for this process, resetting fire counters.

    ``install(None)`` re-arms environment lookup (the next :func:`active`
    call re-reads ``REPRO_FAULTS``).
    """
    global _plan
    _plan = _UNSET if plan is None else plan
    _fired.clear()


def clear() -> None:
    """Remove any installed plan and forget fire counters and attempt."""
    global _plan, _attempt
    _plan = _UNSET
    _attempt = 1
    _fired.clear()


def active() -> FaultPlan:
    """The plan in effect: explicitly installed, else parsed from the env."""
    global _plan
    if _plan is _UNSET:
        _plan = parse_faults(os.environ.get(FAULTS_ENV, ""))
    return _plan  # type: ignore[return-value]


def set_attempt(attempt: int) -> None:
    """Set the ambient attempt number used for rule matching."""
    global _attempt
    _attempt = max(1, int(attempt))


def current_attempt() -> int:
    """The ambient attempt number (1 outside any retry loop)."""
    return _attempt


def fire_counts() -> Dict[str, int]:
    """How many times each rule has fired in this process (for tests)."""
    plan = active()
    return {
        rule.describe(): _fired.get(index, 0)
        for index, rule in enumerate(plan.rules)
    }


@contextmanager
def injected(spec_or_plan: Union[str, FaultPlan]) -> Iterator[FaultPlan]:
    """Context manager installing a plan (or syntax string) temporarily."""
    global _plan
    plan = (
        parse_faults(spec_or_plan)
        if isinstance(spec_or_plan, str)
        else spec_or_plan
    )
    previous = _plan
    install(plan)
    try:
        yield plan
    finally:
        _plan = previous
        _fired.clear()


def _consume(site: str, key: str, kinds: Tuple[str, ...]) -> List[FaultRule]:
    """Matching rules of the given kinds, with fire counters advanced."""
    plan = active()
    if not plan.rules:
        return []
    matched: List[FaultRule] = []
    for index, rule in enumerate(plan.rules):
        if rule.kind not in kinds:
            continue
        if not rule.matches(site, key, _attempt):
            continue
        if rule.fires is not None and _fired.get(index, 0) >= rule.fires:
            continue
        _fired[index] = _fired.get(index, 0) + 1
        matched.append(rule)
    return matched


def fire(site: str, key: str = "") -> None:
    """Run any execution faults registered for *site*/*key*.

    Called from production code at the named sites.  With no matching
    rule this returns immediately.  ``slow`` rules sleep and fall
    through (execution continues); the aborting kinds act in rule order.
    """
    for rule in _consume(site, key, _FIRE_KINDS):
        if rule.kind == "slow":
            time.sleep(
                rule.delay_s if rule.delay_s is not None
                else _DEFAULT_DELAYS["slow"]
            )
            continue
        if rule.kind == "hang":
            time.sleep(
                rule.delay_s if rule.delay_s is not None
                else _DEFAULT_DELAYS["hang"]
            )
            continue
        if rule.kind == "exit":
            os._exit(EXIT_STATUS)
        if rule.kind == "interrupt":
            raise KeyboardInterrupt(
                f"injected interrupt at {site} key={key!r}"
            )
        raise InjectedFaultError(
            f"injected {rule.kind} at {site} key={key!r} "
            f"attempt={_attempt}"
        )


def filter_bytes(site: str, key: str, data: bytes) -> bytes:
    """Apply any artifact faults registered for *site*/*key* to *data*.

    ``torn`` truncates to the first half (an interrupted write that
    still got renamed into place); ``corrupt`` XORs a seeded random mask
    over up to 64 bytes (silent media damage).  Both are deterministic
    for a given rule and input.
    """
    for rule in _consume(site, key, _FILTER_KINDS):
        if rule.kind == "torn":
            data = data[: len(data) // 2]
        else:
            rng = random.Random(rule.seed)
            buffer = bytearray(data)
            for _ in range(min(64, len(buffer))):
                position = rng.randrange(len(buffer))
                buffer[position] ^= rng.randrange(1, 256)
            data = bytes(buffer)
    return data


def task_key(index: int, label: str = "") -> str:
    """Canonical fault key for pool task *index* (``#<index>:<label>``)."""
    return f"#{index}:{label}" if label else f"#{index}"
