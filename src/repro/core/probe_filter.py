"""The sparse directory (probe filter).

Each node's directory controller owns a probe filter: a set-associative
structure whose entries track which caches hold lines homed at this node.
Table I sizes it to cover 512 kB of cached data — 2x the capacity of one
private L2, matching deployed AMD Hammer systems.

An entry records the owner (the cache responsible for supplying data) and
the set of sharers.  When a set is full, allocating a new entry evicts a
victim; the eviction forces an invalidation of the victim line in every
cache holding it, which is precisely the overhead ALLARM removes for
thread-private lines (Figures 3b, 4b, 4e of the paper count these
evictions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from repro.cache.replacement import ReplacementPolicy, ReplacementPolicyFactory
from repro.errors import ConfigurationError, ProtocolError
from repro.memory.address import is_power_of_two


@dataclass
class ProbeFilterEntry:
    """Directory state for a single tracked cache line."""

    line_address: int
    owner: Optional[int]
    sharers: Set[int] = field(default_factory=set)
    way: int = 0

    @property
    def holders(self) -> Set[int]:
        """Every cache that may hold the line (owner plus sharers)."""
        result = set(self.sharers)
        if self.owner is not None:
            result.add(self.owner)
        return result

    @property
    def holder_count(self) -> int:
        """Number of caches holding the line."""
        return len(self.holders)


@dataclass
class ProbeFilterStats:
    """Counters for one probe filter (per-directory)."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    allocations: int = 0
    evictions: int = 0
    deallocations: int = 0
    eviction_invalidations: int = 0
    reads: int = 0
    writes: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that found an entry."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> Dict[str, float]:
        """Return the counters as a plain dictionary (for reports)."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "allocations": self.allocations,
            "evictions": self.evictions,
            "deallocations": self.deallocations,
            "eviction_invalidations": self.eviction_invalidations,
            "reads": self.reads,
            "writes": self.writes,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _FilterSet:
    entries: Dict[int, ProbeFilterEntry] = field(default_factory=dict)
    policy: Optional[ReplacementPolicy] = None


class ProbeFilter:
    """Set-associative sparse directory for one home node.

    Parameters
    ----------
    node_id:
        The node this probe filter belongs to.
    coverage_bytes:
        Amount of cached data the filter can track (512 kB in Table I);
        the entry count is ``coverage_bytes / line_size``.
    associativity:
        Ways per set (deployed probe filters use 4; we default to 4).
    line_size:
        Cache line size in bytes.
    replacement:
        Replacement policy name (``"lru"`` by default).
    """

    def __init__(
        self,
        node_id: int,
        coverage_bytes: int = 512 * 1024,
        associativity: int = 4,
        line_size: int = 64,
        replacement: str = "lru",
        seed: int = 0,
    ) -> None:
        if coverage_bytes <= 0:
            raise ConfigurationError("probe filter coverage must be positive")
        if not is_power_of_two(line_size):
            raise ConfigurationError("probe filter line size must be a power of two")
        if coverage_bytes % (associativity * line_size) != 0:
            raise ConfigurationError(
                "probe filter coverage must be a multiple of associativity * line_size"
            )
        entry_count = coverage_bytes // line_size
        set_count = entry_count // associativity
        if not is_power_of_two(set_count):
            raise ConfigurationError(
                f"probe filter set count {set_count} must be a power of two"
            )
        self.node_id = node_id
        self.coverage_bytes = coverage_bytes
        self.associativity = associativity
        self.line_size = line_size
        self.set_count = set_count
        self.entry_count = entry_count
        # Memoized index decomposition (same layout contract as Cache).
        self.line_shift = line_size.bit_length() - 1
        self.set_mask = set_count - 1
        self.stats = ProbeFilterStats()
        factory = ReplacementPolicyFactory(replacement, seed=seed + node_id)
        self._sets: List[_FilterSet] = [
            _FilterSet(policy=factory.create(associativity)) for _ in range(set_count)
        ]

    # ------------------------------------------------------------------
    def set_index(self, line_address: int) -> int:
        """Return the set index for a line-aligned address."""
        return (line_address >> self.line_shift) & self.set_mask

    def lookup(self, line_address: int) -> Optional[ProbeFilterEntry]:
        """Look up a line; counts a read access and hit/miss."""
        self.stats.lookups += 1
        self.stats.reads += 1
        fset = self._sets[self.set_index(line_address)]
        for entry in fset.entries.values():
            if entry.line_address == line_address:
                self.stats.hits += 1
                fset.policy.touch(entry.way)
                return entry
        self.stats.misses += 1
        return None

    def peek(self, line_address: int) -> Optional[ProbeFilterEntry]:
        """Look up without disturbing statistics or recency (tests/debug)."""
        fset = self._sets[self.set_index(line_address)]
        for entry in fset.entries.values():
            if entry.line_address == line_address:
                return entry
        return None

    # ------------------------------------------------------------------
    def allocate(
        self, line_address: int, owner: Optional[int], sharers: Optional[Set[int]] = None
    ) -> "AllocationOutcome":
        """Allocate an entry for *line_address*, evicting a victim if needed.

        Returns an :class:`AllocationOutcome` carrying the new entry and
        the evicted victim (if any).  The caller — the directory
        controller — is responsible for turning the victim into
        invalidation messages and cache-line invalidations.
        """
        if self.peek(line_address) is not None:
            raise ProtocolError(
                f"probe filter {self.node_id}: duplicate allocation for "
                f"{line_address:#x}"
            )
        fset = self._sets[self.set_index(line_address)]
        victim: Optional[ProbeFilterEntry] = None
        free_ways = [w for w in range(self.associativity) if w not in fset.entries]
        if free_ways:
            way = free_ways[0]
        else:
            way = fset.policy.victim(sorted(fset.entries.keys()))
            victim = fset.entries.pop(way)
            fset.policy.reset(way)
            self.stats.evictions += 1
            self.stats.eviction_invalidations += victim.holder_count
            # An eviction reads out the victim's tag+state and then writes
            # the replacement: count both array accesses for energy.
            self.stats.reads += 1

        entry = ProbeFilterEntry(
            line_address=line_address,
            owner=owner,
            sharers=set(sharers or ()),
            way=way,
        )
        fset.entries[way] = entry
        fset.policy.touch(way)
        self.stats.allocations += 1
        self.stats.writes += 1
        return AllocationOutcome(entry=entry, victim=victim)

    def deallocate(self, line_address: int) -> ProbeFilterEntry:
        """Remove the entry for a line (e.g. after the last holder evicts it)."""
        fset = self._sets[self.set_index(line_address)]
        for way, entry in list(fset.entries.items()):
            if entry.line_address == line_address:
                del fset.entries[way]
                fset.policy.reset(way)
                self.stats.deallocations += 1
                self.stats.writes += 1
                return entry
        raise ProtocolError(
            f"probe filter {self.node_id}: deallocation of untracked line "
            f"{line_address:#x}"
        )

    def update(self, entry: ProbeFilterEntry) -> None:
        """Record a state update to an existing entry (energy accounting)."""
        self.stats.writes += 1

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Number of entries currently allocated."""
        return sum(len(s.entries) for s in self._sets)

    def entries(self) -> Iterator[ProbeFilterEntry]:
        """Iterate over all allocated entries."""
        for fset in self._sets:
            yield from fset.entries.values()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProbeFilter(node={self.node_id}, coverage={self.coverage_bytes}B, "
            f"{self.associativity}-way)"
        )


@dataclass
class AllocationOutcome:
    """Result of :meth:`ProbeFilter.allocate`."""

    entry: ProbeFilterEntry
    victim: Optional[ProbeFilterEntry]

    @property
    def caused_eviction(self) -> bool:
        """True when the allocation displaced an existing entry."""
        return self.victim is not None
