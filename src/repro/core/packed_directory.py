"""Packed sparse directory: flat-array probe filter + fast miss servicing.

PR 3's packed engine inlined the L1/L2 *hit* path but fell back to the
reference object graph for every coherence transaction, so miss-heavy
workloads (false sharing, migratory locks, hotspots) ran at reference
speed.  This module packs the miss path too:

* :class:`PackedProbeFilter` stores one home node's sparse directory in
  flat arrays indexed by ``slot = set_index * associativity + way``:

  ===============  ==============  ============================================
  Array            Type            Contents
  ===============  ==============  ============================================
  ``tags``         ``array('q')``  tracked line address per way (``-1`` free)
  ``owners``       ``array('q')``  owner node id per way (``-1`` = no owner)
  ``sharer_bits``  ``list[int]``   sharer bitmask per way (bit *n* = node *n*)
  ``stamps``       ``array('q')``  monotonic LRU stamps (``0`` = never/reset)
  ===============  ==============  ============================================

  plus per-set tree-PLRU bit words / lazily seeded RNGs for the non-LRU
  replacement policies, exactly mirroring the reference
  :class:`~repro.core.probe_filter.ProbeFilter` (same stats, same victim
  ways, same free-way preference, same RNG seeding ``seed + node_id``
  then per-set ``+ set_index + 1``).  The reference-compatible API
  (``lookup``/``peek``/``allocate``/``deallocate``/``update``/``entries``)
  returns :class:`~repro.core.probe_filter.ProbeFilterEntry` *views*;
  ``update`` writes a mutated view back into the arrays, which is how the
  unchanged reference :class:`~repro.core.directory.DirectoryController`
  drives a packed filter on the structural slow path.

* :class:`PackedDirectoryFastPath` services every steady-state miss
  flavour — probe-filter hits (reads and writes, including invalidation
  fan-out), ALLARM no-allocate local misses, allocating misses into a
  free way **and** allocating misses that evict a probe-filter victim
  (victim selection, holder-word walk, per-holder invalidation/ack
  accounting, dirty writebacks) — entirely in the packed
  representation, with per-route latency/traffic constants replacing
  per-message ``Message``/``Transaction`` object churn.  L2 eviction
  *notifications* (both ``owned`` and ``dirty`` modes) are likewise
  packed via :meth:`PackedDirectoryFastPath.handle_eviction`.  The
  reference machinery remains reachable only through the
  ``REPRO_PACKED_DEFER`` debug knob (see
  :class:`~repro.system.fastcore.PackedMachine`), which forces chosen
  structural events back onto the shared slow path for differential
  testing.

**Bit-identity is the contract**: every counter the snapshot layer reads
(:class:`~repro.core.directory.DirectoryStats`, probe-filter stats,
``NetworkStats`` including per-type message/byte counts, DRAM and
memory-controller counters) and every latency float must be exactly what
the reference ``DirectoryController.service_request`` would have
produced, down to float-addition order.  Per-router and per-link
counters are *not* part of the snapshot contract and are maintained only
by the reference message loop; ``docs/performance.md`` documents this.

Requester-side MSHR slots are the shared :class:`~repro.cache.mshr.MshrFile`
(one allocate/release per miss, merge on a pre-registered in-flight
line); both engines drive it identically from their ``_service_miss``.
"""

from __future__ import annotations

import random
from array import array
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.cache.packed import (
    CODE_AFTER_REMOTE_READ,
    CODE_IS_DIRTY,
    CODE_IS_OWNER,
    STATE_EXCLUSIVE,
    STATE_INVALID,
    STATE_MODIFIED,
    STATE_OWNED,
    STATE_SHARED,
    plru_touch,
    plru_victim,
)
from repro.coherence.messages import MessageType
from repro.core.probe_filter import (
    AllocationOutcome,
    ProbeFilterEntry,
    ProbeFilterStats,
)
from repro.errors import ConfigurationError, ProtocolError
from repro.memory.address import is_power_of_two

#: Replacement policy kinds (mirrors ``repro.cache.packed``).
_PF_LRU = 0
_PF_PLRU = 1
_PF_RANDOM = 2
_PF_KINDS = {"lru": _PF_LRU, "plru": _PF_PLRU, "random": _PF_RANDOM}

#: Message-type value strings, hoisted so the fast path never touches the
#: enum (the names key ``NetworkStats.messages_by_type``).
_GETS = MessageType.GET_SHARED.value
_GETX = MessageType.GET_EXCLUSIVE.value
_FWD_GETS = MessageType.FORWARD_GET_SHARED.value
_FWD_GETX = MessageType.FORWARD_GET_EXCLUSIVE.value
_INV = MessageType.INVALIDATE.value
_ACK = MessageType.ACK.value
_DATA_MEM = MessageType.DATA_FROM_MEMORY.value
_DATA_OWNER = MessageType.DATA_FROM_OWNER.value
_WB_DATA = MessageType.WRITEBACK_DATA.value
_WB_ACK = MessageType.WRITEBACK_ACK.value
_PUT_S = MessageType.PUT_SHARED.value
_PUT_E = MessageType.PUT_EXCLUSIVE.value
_LOCAL_PROBE = MessageType.LOCAL_STATE_PROBE.value
_LOCAL_RESP = MessageType.LOCAL_STATE_RESPONSE.value


class PackedProbeFilter:
    """Flat-array sparse directory, bit-identical to :class:`ProbeFilter`.

    Construction parameters and validation match the reference exactly.
    Entries returned by ``lookup``/``peek``/``allocate``/``entries`` are
    freshly built :class:`ProbeFilterEntry` views; mutate a view and pass
    it to :meth:`update` to persist the change (the reference directory
    controller already follows that discipline).
    """

    __slots__ = (
        "node_id",
        "coverage_bytes",
        "associativity",
        "line_size",
        "set_count",
        "entry_count",
        "line_shift",
        "set_mask",
        "kind",
        "tags",
        "owners",
        "sharer_bits",
        "stamps",
        "stamp",
        "plru_bits",
        "_rng_seed",
        "_rngs",
        "lookups",
        "hits",
        "misses",
        "allocations",
        "evictions",
        "deallocations",
        "eviction_invalidations",
        "reads",
        "writes",
    )

    def __init__(
        self,
        node_id: int,
        coverage_bytes: int = 512 * 1024,
        associativity: int = 4,
        line_size: int = 64,
        replacement: str = "lru",
        seed: int = 0,
    ) -> None:
        if coverage_bytes <= 0:
            raise ConfigurationError("probe filter coverage must be positive")
        if not is_power_of_two(line_size):
            raise ConfigurationError("probe filter line size must be a power of two")
        if coverage_bytes % (associativity * line_size) != 0:
            raise ConfigurationError(
                "probe filter coverage must be a multiple of associativity * line_size"
            )
        entry_count = coverage_bytes // line_size
        set_count = entry_count // associativity
        if not is_power_of_two(set_count):
            raise ConfigurationError(
                f"probe filter set count {set_count} must be a power of two"
            )
        try:
            kind = _PF_KINDS[replacement]
        except KeyError:
            raise ConfigurationError(
                f"unknown replacement policy {replacement!r}; expected one of "
                f"('lru', 'plru', 'random')"
            ) from None
        if kind == _PF_PLRU and associativity & (associativity - 1) != 0:
            raise ConfigurationError("tree PLRU needs power-of-two associativity")

        self.node_id = node_id
        self.coverage_bytes = coverage_bytes
        self.associativity = associativity
        self.line_size = line_size
        self.set_count = set_count
        self.entry_count = entry_count
        self.line_shift = line_size.bit_length() - 1
        self.set_mask = set_count - 1
        self.kind = kind

        self.tags = array("q", [-1]) * entry_count
        self.owners = array("q", [-1]) * entry_count
        self.sharer_bits: List[int] = [0] * entry_count
        self.stamps = array("q", [0]) * entry_count
        self.stamp = 0
        self.plru_bits: List[int] = [0] * set_count if kind == _PF_PLRU else []
        # Reference parity: ReplacementPolicyFactory(replacement,
        # seed=seed + node_id) pre-increments its counter, so set i's RNG
        # is seeded ``seed + node_id + i + 1``.  Created lazily — RNG
        # state depends only on the number of victim choices made.
        self._rng_seed = seed + node_id
        self._rngs: Dict[int, random.Random] = {}

        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.allocations = 0
        self.evictions = 0
        self.deallocations = 0
        self.eviction_invalidations = 0
        self.reads = 0
        self.writes = 0

    # ------------------------------------------------------------------
    # Stats / geometry
    # ------------------------------------------------------------------
    @property
    def stats(self) -> ProbeFilterStats:
        """Read-only snapshot of the counters as ``ProbeFilterStats``."""
        return ProbeFilterStats(
            lookups=self.lookups,
            hits=self.hits,
            misses=self.misses,
            allocations=self.allocations,
            evictions=self.evictions,
            deallocations=self.deallocations,
            eviction_invalidations=self.eviction_invalidations,
            reads=self.reads,
            writes=self.writes,
        )

    def set_index(self, line_address: int) -> int:
        """Return the set index for a line-aligned address."""
        return (line_address >> self.line_shift) & self.set_mask

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Serializable snapshot of every mutable field of this filter.

        Covers the flat arrays (tags, owners, sharer bitmasks, LRU
        stamps), the global stamp counter, per-set PLRU words, the states
        of all lazily created per-set RNGs (only the ones actually
        consulted, preserving lazy-creation semantics), and the nine
        stat counters.
        """
        return {
            "tags": self.tags.tobytes(),
            "owners": self.owners.tobytes(),
            "sharer_bits": list(self.sharer_bits),
            "stamps": self.stamps.tobytes(),
            "stamp": self.stamp,
            "plru_bits": list(self.plru_bits),
            "rngs": {idx: rng.getstate() for idx, rng in self._rngs.items()},
            "counters": (
                self.lookups,
                self.hits,
                self.misses,
                self.allocations,
                self.evictions,
                self.deallocations,
                self.eviction_invalidations,
                self.reads,
                self.writes,
            ),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot in place.

        Arrays are updated with equal-length slice assignment (never
        reallocated) so any outside references to the backing buffers
        stay valid.
        """
        tags = array("q")
        tags.frombytes(state["tags"])
        owners = array("q")
        owners.frombytes(state["owners"])
        stamps = array("q")
        stamps.frombytes(state["stamps"])
        if len(tags) != len(self.tags):
            raise ConfigurationError(
                f"probe filter {self.node_id}: checkpoint does not match "
                f"this geometry"
            )
        self.tags[:] = tags
        self.owners[:] = owners
        self.sharer_bits[:] = state["sharer_bits"]
        self.stamps[:] = stamps
        self.stamp = state["stamp"]
        self.plru_bits[:] = state["plru_bits"]
        self._rngs.clear()
        for idx, rng_state in state["rngs"].items():
            rng = random.Random()
            rng.setstate(rng_state)
            self._rngs[idx] = rng
        (
            self.lookups,
            self.hits,
            self.misses,
            self.allocations,
            self.evictions,
            self.deallocations,
            self.eviction_invalidations,
            self.reads,
            self.writes,
        ) = state["counters"]

    # ------------------------------------------------------------------
    # Packed primitives (used by the fast path)
    # ------------------------------------------------------------------
    def find_slot(self, line_address: int) -> int:
        """Return the flat slot tracking *line_address*, or ``-1``."""
        base = (
            (line_address >> self.line_shift) & self.set_mask
        ) * self.associativity
        try:
            return self.tags.index(line_address, base, base + self.associativity)
        except ValueError:
            return -1

    def has_free_way(self, line_address: int) -> bool:
        """True when the line's set has an unallocated way."""
        base = (
            (line_address >> self.line_shift) & self.set_mask
        ) * self.associativity
        try:
            self.tags.index(-1, base, base + self.associativity)
            return True
        except ValueError:
            return False

    def touch(self, slot: int) -> None:
        """Record recency for *slot* (allocate or lookup hit)."""
        kind = self.kind
        if kind == _PF_LRU:
            stamp = self.stamp + 1
            self.stamp = stamp
            self.stamps[slot] = stamp
        elif kind == _PF_PLRU:
            assoc = self.associativity
            set_index, way = divmod(slot, assoc)
            self.plru_bits[set_index] = plru_touch(
                self.plru_bits[set_index], way, assoc
            )

    def _reset(self, slot: int) -> None:
        if self.kind == _PF_LRU:
            self.stamps[slot] = 0

    def victim_way(self, set_index: int) -> int:
        """Choose the victim way of a full set (reference tie-breaks)."""
        kind = self.kind
        assoc = self.associativity
        if kind == _PF_LRU:
            stamps = self.stamps
            base = set_index * assoc
            best_way = 0
            best = stamps[base]
            for way in range(assoc):
                stamp = stamps[base + way]
                if stamp == 0:
                    return way
                if stamp < best:
                    best = stamp
                    best_way = way
            return best_way
        if kind == _PF_PLRU:
            return plru_victim(self.plru_bits[set_index], assoc)
        rng = self._rngs.get(set_index)
        if rng is None:
            rng = self._rngs[set_index] = random.Random(
                self._rng_seed + set_index + 1
            )
        return rng.choice(range(assoc))

    def allocate_fast(self, line_address: int, owner: int, sharer_mask: int) -> None:
        """Install an entry into a set known to have a free way.

        Fast-path form of :meth:`allocate`: the caller has already probed
        for residency (absent) and a free way (present), so no victim can
        arise and no views are built.  *owner* is ``-1`` for no owner.
        """
        base = (
            (line_address >> self.line_shift) & self.set_mask
        ) * self.associativity
        slot = self.tags.index(-1, base, base + self.associativity)
        self.tags[slot] = line_address
        self.owners[slot] = owner
        self.sharer_bits[slot] = sharer_mask
        self.touch(slot)
        self.allocations += 1
        self.writes += 1

    def allocate_evict(
        self, line_address: int, owner: int, sharer_mask: int
    ) -> Tuple[int, int]:
        """Install an entry into a full set, evicting the policy's victim.

        Fast-path sibling of :meth:`allocate_fast` for the no-free-way
        case: the caller has already probed for residency (absent) and a
        free way (none), so a victim always exists.  Returns
        ``(victim_line_address, victim_holder_mask)`` — the holder mask
        merges the victim's owner bit into its sharer word — so the
        caller can run the invalidation fan-out without a view being
        built.  Counter deltas (one eviction, ``holder_count`` eviction
        invalidations, the extra victim read-out, one allocation, one
        write) match :meth:`allocate`'s victim branch exactly.
        """
        assoc = self.associativity
        set_index = (line_address >> self.line_shift) & self.set_mask
        slot = set_index * assoc + self.victim_way(set_index)
        victim_line = self.tags[slot]
        victim_owner = self.owners[slot]
        holder_mask = self.sharer_bits[slot]
        if victim_owner >= 0:
            holder_mask |= 1 << victim_owner
        self._reset(slot)
        self.evictions += 1
        self.eviction_invalidations += bin(holder_mask).count("1")
        # An eviction reads out the victim's tag+state and then writes
        # the replacement: count both array accesses for energy.
        self.reads += 1
        self.tags[slot] = line_address
        self.owners[slot] = owner
        self.sharer_bits[slot] = sharer_mask
        self.touch(slot)
        self.allocations += 1
        self.writes += 1
        return victim_line, holder_mask

    def deallocate_fast(self, slot: int) -> None:
        """Free *slot* (the packed form of :meth:`deallocate`).

        The caller has already located the slot and read out whatever it
        needed from the entry; counter deltas (one deallocation, one
        write) match the reference exactly.
        """
        self.tags[slot] = -1
        self.owners[slot] = -1
        self.sharer_bits[slot] = 0
        self._reset(slot)
        self.deallocations += 1
        self.writes += 1

    # ------------------------------------------------------------------
    # Reference-compatible API (drives the structural slow path)
    # ------------------------------------------------------------------
    def _view(self, slot: int) -> ProbeFilterEntry:
        owner = self.owners[slot]
        mask = self.sharer_bits[slot]
        sharers: Set[int] = set()
        while mask:
            low = mask & -mask
            sharers.add(low.bit_length() - 1)
            mask ^= low
        return ProbeFilterEntry(
            line_address=self.tags[slot],
            owner=owner if owner >= 0 else None,
            sharers=sharers,
            way=slot % self.associativity,
        )

    def lookup(self, line_address: int) -> Optional[ProbeFilterEntry]:
        """Look up a line; counts a read access and hit/miss."""
        self.lookups += 1
        self.reads += 1
        slot = self.find_slot(line_address)
        if slot >= 0:
            self.hits += 1
            self.touch(slot)
            return self._view(slot)
        self.misses += 1
        return None

    def peek(self, line_address: int) -> Optional[ProbeFilterEntry]:
        """Look up without disturbing statistics or recency (tests/debug)."""
        slot = self.find_slot(line_address)
        return self._view(slot) if slot >= 0 else None

    def allocate(
        self,
        line_address: int,
        owner: Optional[int],
        sharers: Optional[Set[int]] = None,
    ) -> AllocationOutcome:
        """Allocate an entry, evicting a victim if the set is full."""
        if self.find_slot(line_address) >= 0:
            raise ProtocolError(
                f"probe filter {self.node_id}: duplicate allocation for "
                f"{line_address:#x}"
            )
        assoc = self.associativity
        base = ((line_address >> self.line_shift) & self.set_mask) * assoc
        tags = self.tags
        victim: Optional[ProbeFilterEntry] = None
        try:
            slot = tags.index(-1, base, base + assoc)
        except ValueError:
            way = self.victim_way(base // assoc)
            slot = base + way
            victim = self._view(slot)
            self._reset(slot)
            self.evictions += 1
            self.eviction_invalidations += victim.holder_count
            # An eviction reads out the victim's tag+state and then writes
            # the replacement: count both array accesses for energy.
            self.reads += 1
        tags[slot] = line_address
        self.owners[slot] = -1 if owner is None else owner
        mask = 0
        for sharer in sharers or ():
            mask |= 1 << sharer
        self.sharer_bits[slot] = mask
        self.touch(slot)
        self.allocations += 1
        self.writes += 1
        return AllocationOutcome(entry=self._view(slot), victim=victim)

    def deallocate(self, line_address: int) -> ProbeFilterEntry:
        """Remove the entry for a line (e.g. after the last holder evicts)."""
        slot = self.find_slot(line_address)
        if slot < 0:
            raise ProtocolError(
                f"probe filter {self.node_id}: deallocation of untracked line "
                f"{line_address:#x}"
            )
        entry = self._view(slot)
        self.tags[slot] = -1
        self.owners[slot] = -1
        self.sharer_bits[slot] = 0
        self._reset(slot)
        self.deallocations += 1
        self.writes += 1
        return entry

    def update(self, entry: ProbeFilterEntry) -> None:
        """Write a mutated entry view back into the arrays.

        The reference filter hands out live entries so its ``update`` is
        stats-only; the packed filter hands out views, so this is where
        owner/sharer changes made by the directory controller land.
        """
        slot = self.set_index(entry.line_address) * self.associativity + entry.way
        if (
            slot >= self.entry_count
            or entry.way >= self.associativity
            or self.tags[slot] != entry.line_address
        ):
            raise ProtocolError(
                f"probe filter {self.node_id}: update of stale entry view for "
                f"{entry.line_address:#x}"
            )
        self.owners[slot] = -1 if entry.owner is None else entry.owner
        mask = 0
        for sharer in entry.sharers:
            mask |= 1 << sharer
        self.sharer_bits[slot] = mask
        self.writes += 1

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Number of entries currently allocated."""
        return self.entry_count - self.tags.count(-1)

    def entries(self) -> Iterator[ProbeFilterEntry]:
        """Iterate views of all allocated entries (set-major, way order)."""
        tags = self.tags
        for slot in range(self.entry_count):
            if tags[slot] >= 0:
                yield self._view(slot)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedProbeFilter(node={self.node_id}, "
            f"coverage={self.coverage_bytes}B, {self.associativity}-way)"
        )


class PackedDirectoryFastPath:
    """Fast miss servicing for one home node over packed directory state.

    One instance per node; all instances share one lazily filled
    ``routes`` table mapping ``(src, dst)`` to the delivery constants the
    reference network would have produced for a control and a data
    message on that route (latency computed with the *same* per-hop
    float-addition order as ``Network.deliver``, so reusing the cached
    float is bit-identical to recomputing it).

    :meth:`service` returns ``(transaction_latency_ns, fill_state_code)``
    and handles every miss flavour itself, including allocations into a
    full probe-filter set (victim eviction with its invalidation
    fan-out); :meth:`handle_eviction` is the packed form of
    ``DirectoryController.handle_cache_eviction`` for L2 eviction
    notifications.  Neither ever defers.
    """

    __slots__ = (
        "node_id",
        "pf",
        "policy",
        "dstats",
        "hierarchies",
        "routes",
        "net_stats",
        "msgs_by_type",
        "bytes_by_type",
        "routing",
        "routers",
        "links",
        "ctl_bytes",
        "data_bytes",
        "ctl_flits",
        "data_flits",
        "dir_ns",
        "cache_ns",
        "probe_ns",
        "mc_stats",
        "sched_ns",
        "dram",
        "dram_stats",
    )

    def __init__(self, machine, node, routes: Dict[Tuple[int, int], tuple]) -> None:
        directory = node.directory
        self.node_id = node.node_id
        self.pf: PackedProbeFilter = node.probe_filter
        self.policy = directory.policy
        self.dstats = directory.stats
        self.hierarchies = [n.caches for n in machine.nodes]
        self.routes = routes
        network = machine.network
        self.net_stats = network.stats
        self.msgs_by_type = network.stats.messages_by_type
        self.bytes_by_type = network.stats.bytes_by_type
        self.routing = network.routing
        self.routers = network.routers
        self.links = network.links
        sizing = machine.message_factory.sizing
        self.ctl_bytes = sizing.control_bytes
        self.data_bytes = sizing.data_bytes
        self.ctl_flits = sizing.flits_of(MessageType.ACK)
        self.data_flits = sizing.flits_of(MessageType.DATA_FROM_MEMORY)
        timings = directory.timings
        self.dir_ns = timings.directory_access_ns
        self.cache_ns = timings.cache_access_ns
        self.probe_ns = timings.local_probe_ns
        self.mc_stats = node.memory_controller.stats
        self.sched_ns = node.memory_controller.scheduling_overhead_ns
        self.dram = node.dram
        self.dram_stats = node.dram.stats

    # ------------------------------------------------------------------
    # Packed equivalents of the reference component calls
    # ------------------------------------------------------------------
    def _route(self, src: int, dst: int) -> tuple:
        """Delivery constants for a route; computed once, reused forever.

        ``(ctl_latency, data_latency, ctl_flit_hops, data_flit_hops,
        ctl_byte_hops, data_byte_hops)`` — the latencies sum per-hop
        router pipeline and link traversal in exactly the order
        ``Network.deliver`` does.
        """
        key = (src, dst)
        info = self.routes.get(key)
        if info is None:
            path = self.routing.route(src, dst)
            hops = len(path) - 1
            ctl = 0.0
            data = 0.0
            for i in range(hops):
                router = self.routers[path[i]]
                link = self.links[(path[i], path[i + 1])]
                ctl += router.pipeline_latency_ns
                ctl += link.latency_ns + link.serialization_ns(self.ctl_bytes)
                data += router.pipeline_latency_ns
                data += link.latency_ns + link.serialization_ns(self.data_bytes)
            info = (
                ctl,
                data,
                self.ctl_flits * hops,
                self.data_flits * hops,
                self.ctl_bytes * hops,
                self.data_bytes * hops,
            )
            self.routes[key] = info
        return info

    def _send_ctl(self, name: str, src: int, dst: int) -> float:
        """Account one control message; return its delivery latency."""
        msgs = self.msgs_by_type
        msgs[name] = msgs.get(name, 0) + 1
        stats = self.net_stats
        if src == dst:
            stats.local_messages += 1
            return 0.0
        info = self._route(src, dst)
        stats.messages_sent += 1
        stats.bytes_injected += self.ctl_bytes
        stats.flit_hops += info[2]
        stats.byte_hops += info[4]
        bbt = self.bytes_by_type
        bbt[name] = bbt.get(name, 0) + self.ctl_bytes
        return info[0]

    def _send_data(self, name: str, src: int, dst: int) -> float:
        """Account one data message; return its delivery latency."""
        msgs = self.msgs_by_type
        msgs[name] = msgs.get(name, 0) + 1
        stats = self.net_stats
        if src == dst:
            stats.local_messages += 1
            return 0.0
        info = self._route(src, dst)
        stats.messages_sent += 1
        stats.bytes_injected += self.data_bytes
        stats.flit_hops += info[3]
        stats.byte_hops += info[5]
        bbt = self.bytes_by_type
        bbt[name] = bbt.get(name, 0) + self.data_bytes
        return info[1]

    def mem_read(self, line_address: int) -> float:
        """Inline ``MemoryController.read_line`` (same stats, same floats)."""
        self.mc_stats.line_reads += 1
        dram = self.dram
        stats = self.dram_stats
        row = line_address // dram.row_bytes
        if row == dram._open_row:
            stats.row_hits += 1
            latency = dram.row_hit_latency_ns
        else:
            stats.row_misses += 1
            dram._open_row = row
            latency = dram.access_latency_ns
        stats.reads += 1
        stats.bytes_read += dram.line_size
        return self.sched_ns + latency

    def mem_writeback(self, line_address: int) -> float:
        """Inline ``MemoryController.writeback_line``."""
        self.mc_stats.line_writebacks += 1
        dram = self.dram
        stats = self.dram_stats
        row = line_address // dram.row_bytes
        if row == dram._open_row:
            stats.row_hits += 1
            latency = dram.row_hit_latency_ns
        else:
            stats.row_misses += 1
            dram._open_row = row
            latency = dram.access_latency_ns
        stats.writes += 1
        stats.bytes_written += dram.line_size
        return self.sched_ns + latency

    # ------------------------------------------------------------------
    # Structural events (mirror the reference eviction machinery)
    # ------------------------------------------------------------------
    def _evict_victim(self, line_address: int, holder_mask: int) -> None:
        """Invalidate an evicted probe-filter victim everywhere it is cached.

        Packed form of ``DirectoryController._evict_victim``: each holder
        (ascending node order — the low-bit walk equals
        ``sorted(victim.holders)``) receives an invalidation and responds
        with an ack; dirty copies are written back to memory.  Background
        traffic: the message latencies never reach any critical path,
        but every counter (eviction messages, invalidations, writebacks,
        network and DRAM stats) lands exactly as the reference message
        loop would have left it.
        """
        home = self.node_id
        dstats = self.dstats
        hierarchies = self.hierarchies
        mask = holder_mask
        while mask:
            low = mask & -mask
            holder = low.bit_length() - 1
            mask ^= low
            self._send_ctl(_INV, home, holder)
            self._send_ctl(_ACK, holder, home)
            dstats.eviction_messages += 2
            dstats.invalidations_sent += 1
            prior = hierarchies[holder].handle_invalidate(line_address)
            if prior is not None and prior.is_dirty:
                self._send_data(_WB_DATA, holder, home)
                dstats.eviction_messages += 1
                dstats.eviction_writebacks += 1
                self.mem_writeback(line_address)

    def handle_eviction(
        self, evicting_node: int, line_address: int, state_code: int
    ) -> None:
        """Handle an L2 eviction notice for a line homed at this directory.

        Packed form of ``DirectoryController.handle_cache_eviction``,
        covering both notification modes: dirty lines send writeback
        data, clean owned lines a PutE, plain sharers a PutS; the home
        acks, dirty data reaches DRAM, and the probe-filter entry is
        trimmed in place (deallocated once the last holder leaves).
        Untracked lines (ALLARM local data) write back locally with no
        coherence traffic.
        """
        self.dstats.cache_eviction_notices += 1
        pf = self.pf
        slot = pf.find_slot(line_address)  # peek: stats/recency untouched
        dirty = CODE_IS_DIRTY[state_code]
        if slot < 0:
            # An untracked line: only the home node's local core can hold
            # one, so the writeback (if any) is entirely local.
            if dirty:
                self.mem_writeback(line_address)
                self.dstats.untracked_local_writebacks += 1
            return

        home = self.node_id
        if dirty:
            self._send_data(_WB_DATA, evicting_node, home)
        elif CODE_IS_OWNER[state_code]:
            self._send_ctl(_PUT_E, evicting_node, home)
        else:
            self._send_ctl(_PUT_S, evicting_node, home)
        self._send_ctl(_WB_ACK, home, evicting_node)
        if dirty:
            self.mem_writeback(line_address)

        owner = pf.owners[slot]
        if owner == evicting_node:
            pf.owners[slot] = owner = -1
        sharer_mask = pf.sharer_bits[slot] & ~(1 << evicting_node)
        pf.sharer_bits[slot] = sharer_mask
        holders = sharer_mask | (1 << owner) if owner >= 0 else sharer_mask
        if holders:
            pf.writes += 1  # probe_filter.update(entry)
        else:
            pf.deallocate_fast(slot)

    # ------------------------------------------------------------------
    # Request servicing (mirrors DirectoryController.service_request)
    # ------------------------------------------------------------------
    def service(
        self, requester: int, line_address: int, is_write: bool, slot: int
    ) -> Tuple[float, int]:
        """Service one L2 miss/upgrade; return ``(latency_ns, fill_code)``.

        *slot* is the probe-filter slot the caller already probed
        (``-1`` = miss).  A miss that allocates into a full set evicts
        the replacement policy's victim in place, with the same
        invalidation fan-out, writebacks and counters the reference
        ``_evict_victim`` produces; this method never defers.
        """
        home = self.node_id
        dstats = self.dstats
        if requester == home:
            dstats.local_requests += 1
        else:
            dstats.remote_requests += 1
        if is_write:
            dstats.write_requests += 1
            latency = self._send_ctl(_GETX, requester, home)
        else:
            dstats.read_requests += 1
            latency = self._send_ctl(_GETS, requester, home)
        latency += self.dir_ns

        pf = self.pf
        pf.lookups += 1
        pf.reads += 1
        if slot >= 0:
            pf.hits += 1
            pf.touch(slot)
            if is_write:
                sub, fill = self._hit_write(slot, requester, line_address)
            else:
                sub, fill = self._hit_read(slot, requester, line_address)
        else:
            pf.misses += 1
            sub, fill = self._miss(requester, line_address, is_write)
        return latency + sub, fill

    def _hit_read(
        self, slot: int, requester: int, line_address: int
    ) -> Tuple[float, int]:
        pf = self.pf
        hierarchies = self.hierarchies
        home = self.node_id
        owner = pf.owners[slot]
        supplier = -1
        if (
            owner >= 0
            and owner != requester
            and hierarchies[owner].l2.find(line_address) >= 0
        ):
            supplier = owner
        else:
            # Hammer supplies clean data cache-to-cache as well: scan the
            # sharers in ascending node order (== sorted(entry.sharers)).
            mask = pf.sharer_bits[slot]
            while mask:
                low = mask & -mask
                sharer = low.bit_length() - 1
                if (
                    sharer != requester
                    and hierarchies[sharer].l2.find(line_address) >= 0
                ):
                    supplier = sharer
                    break
                mask ^= low
        sub = 0.0
        if supplier >= 0:
            sub += self._send_ctl(_FWD_GETS, home, supplier)
            sub += self.cache_ns
            hierarchies[supplier].handle_downgrade(line_address)
            sub += self._send_data(_DATA_OWNER, supplier, requester)
            pf.sharer_bits[slot] |= 1 << requester
            had_other_sharers = True
        else:
            sub += self.mem_read(line_address)
            sub += self._send_data(_DATA_MEM, home, requester)
            pf.sharer_bits[slot] |= 1 << requester
            if owner >= 0 and hierarchies[owner].l2.find(line_address) < 0:
                # Stale owner (silently dropped clean line); clear it.
                pf.owners[slot] = -1
            had_other_sharers = False
        pf.writes += 1  # probe_filter.update(entry)
        if not had_other_sharers:
            # _requester_fill_state peeks the updated entry: SHARED when
            # the line now has more than one recorded holder.
            owner_now = pf.owners[slot]
            holders = pf.sharer_bits[slot]
            if owner_now >= 0:
                holders |= 1 << owner_now
            had_other_sharers = holders & (holders - 1) != 0
        return sub, STATE_SHARED if had_other_sharers else STATE_EXCLUSIVE

    def _hit_write(
        self, slot: int, requester: int, line_address: int
    ) -> Tuple[float, int]:
        pf = self.pf
        hierarchies = self.hierarchies
        home = self.node_id
        dstats = self.dstats
        owner = pf.owners[slot]
        requester_bit = 1 << requester
        original_holders = pf.sharer_bits[slot]
        if owner >= 0:
            original_holders |= 1 << owner
        holders = original_holders & ~requester_bit

        invalidation_latency = 0.0
        data_latency = 0.0
        data_sent = False
        if (
            owner >= 0
            and owner != requester
            and hierarchies[owner].l2.find(line_address) >= 0
        ):
            # The owner both supplies data and invalidates its copy.
            fwd = self._send_ctl(_FWD_GETX, home, owner)
            fwd += self.cache_ns
            hierarchies[owner].handle_invalidate(line_address)
            fwd += self._send_data(_DATA_OWNER, owner, requester)
            data_latency = fwd
            data_sent = True
            holders &= ~(1 << owner)

        mask = holders
        while mask:
            low = mask & -mask
            holder = low.bit_length() - 1
            mask ^= low
            path = self._send_ctl(_INV, home, holder)
            path += self.cache_ns
            prior = hierarchies[holder].handle_invalidate(line_address)
            if prior is not None and prior.is_dirty:
                self._send_data(_WB_DATA, holder, home)
                self.mem_writeback(line_address)
            path += self._send_ctl(_ACK, holder, requester)
            if path > invalidation_latency:
                invalidation_latency = path
            dstats.invalidations_sent += 1

        if not data_sent and not original_holders & requester_bit:
            # Not an upgrade: memory supplies the data.
            data_latency = self.mem_read(line_address)
            data_latency += self._send_data(_DATA_MEM, home, requester)

        pf.owners[slot] = requester
        pf.sharer_bits[slot] = 0
        pf.writes += 1  # probe_filter.update(entry)
        # Invalidations and the data fetch proceed in parallel; the
        # request completes when the slower of the two finishes.
        if invalidation_latency > data_latency:
            return invalidation_latency, STATE_MODIFIED
        return data_latency, STATE_MODIFIED

    def _miss(
        self, requester: int, line_address: int, is_write: bool
    ) -> Tuple[float, int]:
        home = self.node_id
        policy = self.policy
        allocate = policy.should_allocate(requester, home, line_address)
        probe_local = policy.needs_local_probe(requester, home, line_address)
        dstats = self.dstats

        if not allocate:
            # ALLARM local-core miss: service straight from memory with no
            # directory state and no coherence traffic.
            if requester != home:
                raise ProtocolError(
                    "allocation policy skipped allocation for a remote requester"
                )
            sub = self.mem_read(line_address)
            sub += self._send_data(_DATA_MEM, home, requester)
            return sub, STATE_MODIFIED if is_write else STATE_EXCLUSIVE

        hierarchies = self.hierarchies
        local_code = STATE_INVALID
        probe_latency = 0.0
        if probe_local and requester != home:
            dstats.local_probes_sent += 1
            msgs = self.msgs_by_type
            stats = self.net_stats
            msgs[_LOCAL_PROBE] = msgs.get(_LOCAL_PROBE, 0) + 1
            stats.local_messages += 1
            msgs[_LOCAL_RESP] = msgs.get(_LOCAL_RESP, 0) + 1
            stats.local_messages += 1
            probe_latency = self.probe_ns
            home_l2 = hierarchies[home].l2
            local_slot = home_l2.find(line_address)
            if local_slot >= 0:
                local_code = home_l2.states[local_slot]
                dstats.local_probes_found_line += 1

        # Work out who will hold the line once the request completes, then
        # allocate the entry (evicting the policy's victim when the set
        # is full, exactly as the reference allocate/_evict_victim pair).
        if local_code == STATE_INVALID or requester == home:
            owner, sharer_mask = requester, 0
        elif is_write:
            # The local copy will be invalidated; the requester becomes
            # the sole owner.
            owner, sharer_mask = requester, 0
        elif CODE_AFTER_REMOTE_READ[local_code] == STATE_OWNED:
            # The local cache keeps the (still dirty) line and owns it.
            owner, sharer_mask = home, 1 << requester
        else:
            owner, sharer_mask = -1, (1 << home) | (1 << requester)
        pf = self.pf
        if pf.has_free_way(line_address):
            pf.allocate_fast(line_address, owner, sharer_mask)
        else:
            victim_line, victim_holders = pf.allocate_evict(
                line_address, owner, sharer_mask
            )
            self._evict_victim(victim_line, victim_holders)

        local_supplies = local_code != STATE_INVALID and requester != home
        if local_supplies:
            # The untracked local copy supplies (or is invalidated for)
            # the requester; no DRAM access on the critical path.
            if is_write:
                hierarchies[home].handle_invalidate(line_address)
            else:
                hierarchies[home].handle_downgrade(line_address)
            data_latency = self._send_data(_DATA_OWNER, home, requester)
        else:
            data_latency = self.mem_read(line_address)
            data_latency += self._send_data(_DATA_MEM, home, requester)

        if probe_latency > 0.0:
            if local_code == STATE_INVALID and data_latency >= probe_latency:
                dstats.local_probes_hidden += 1
                sub = (
                    data_latency
                    if data_latency > probe_latency
                    else probe_latency
                )
            else:
                sub = probe_latency + data_latency
        else:
            sub = data_latency
        if is_write:
            return sub, STATE_MODIFIED
        return sub, STATE_SHARED if local_supplies else STATE_EXCLUSIVE
