"""Probe-filter allocation policies: the paper's contribution.

The directory controller consults an :class:`AllocationPolicy` whenever a
request misses in the probe filter, to decide whether servicing the
request should allocate an entry.

* :class:`BaselinePolicy` always allocates — the conventional sparse
  directory the paper compares against.
* :class:`AllarmPolicy` allocates **only on a remote miss** (ALLocAte on
  Remote Miss): requests from the home node's own core are serviced
  without creating directory state, because under first-touch NUMA
  allocation such requests are overwhelmingly to thread-private data.
  The policy can further be restricted to configured physical-address
  ranges, modelling the boot-time range registers (MTRR-like) described
  in Section II-C, and disabled per directory to avoid slowdowns on
  capacity-bound workloads such as fluidanimate (Section III-A.1).

The detection scheme is *stateless*: the decision uses only the
requester's node, the home node and the address — no tracking structures,
page-table bits or OS changes, which is the property the paper emphasises
over prior work (Cuesta et al., Kim et al., Das et al.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PhysicalRange:
    """A half-open physical address range ``[start, end)``."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError(
                f"invalid physical range [{self.start:#x}, {self.end:#x})"
            )

    def contains(self, address: int) -> bool:
        """True when *address* falls inside the range."""
        return self.start <= address < self.end


class AllocationPolicy:
    """Decides whether a probe-filter miss allocates a directory entry."""

    #: Short name used in reports and experiment labels.
    name = "base"

    def should_allocate(
        self, requester_node: int, home_node: int, line_address: int
    ) -> bool:
        """Return ``True`` when a probe-filter entry must be allocated."""
        raise NotImplementedError

    def needs_local_probe(
        self, requester_node: int, home_node: int, line_address: int
    ) -> bool:
        """Return ``True`` when the home node's local cache must be probed.

        Only ALLARM needs this: a remote miss with no probe-filter entry
        cannot trust the directory to know whether the local core caches
        the line, because local fills never allocated an entry.
        """
        return False

    def describe(self) -> str:
        """One-line human-readable description for reports."""
        return self.name


class BaselinePolicy(AllocationPolicy):
    """Conventional sparse directory: every tracked miss allocates."""

    name = "baseline"

    def should_allocate(
        self, requester_node: int, home_node: int, line_address: int
    ) -> bool:
        return True

    def describe(self) -> str:
        return "baseline (allocate on every miss)"


class AllarmPolicy(AllocationPolicy):
    """ALLocAte on Remote Miss.

    Parameters
    ----------
    active_ranges:
        Physical ranges on which ALLARM is active.  ``None`` (the default)
        means ALLARM applies to the whole physical address space.
        Addresses outside every active range fall back to baseline
        behaviour, modelling the per-range enablement of Section II-C.
    enabled:
        Per-directory enable switch (Section III-A.1 suggests disabling
        ALLARM for capacity-bound workloads).
    """

    name = "allarm"

    def __init__(
        self,
        active_ranges: Optional[Sequence[PhysicalRange]] = None,
        enabled: bool = True,
    ) -> None:
        self.active_ranges: Optional[Tuple[PhysicalRange, ...]] = (
            tuple(active_ranges) if active_ranges is not None else None
        )
        self.enabled = enabled

    # ------------------------------------------------------------------
    def is_active_for(self, line_address: int) -> bool:
        """True when ALLARM governs this address."""
        if not self.enabled:
            return False
        if self.active_ranges is None:
            return True
        return any(r.contains(line_address) for r in self.active_ranges)

    def should_allocate(
        self, requester_node: int, home_node: int, line_address: int
    ) -> bool:
        if not self.is_active_for(line_address):
            return True
        return requester_node != home_node

    def needs_local_probe(
        self, requester_node: int, home_node: int, line_address: int
    ) -> bool:
        if not self.is_active_for(line_address):
            return False
        return requester_node != home_node

    def describe(self) -> str:
        if not self.enabled:
            return "allarm (disabled; behaves as baseline)"
        if self.active_ranges is None:
            return "allarm (allocate on remote miss, all addresses)"
        return f"allarm (active on {len(self.active_ranges)} physical range(s))"


def make_policy(
    name: str,
    active_ranges: Optional[Sequence[PhysicalRange]] = None,
    enabled: bool = True,
) -> AllocationPolicy:
    """Build an allocation policy by name (``"baseline"`` or ``"allarm"``)."""
    if name == "baseline":
        return BaselinePolicy()
    if name == "allarm":
        return AllarmPolicy(active_ranges=active_ranges, enabled=enabled)
    raise ConfigurationError(
        f"unknown allocation policy {name!r}; expected 'baseline' or 'allarm'"
    )


def available_policies() -> List[str]:
    """Names accepted by :func:`make_policy`."""
    return ["baseline", "allarm"]
