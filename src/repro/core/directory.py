"""Directory controller: Hammer-style protocol engine with ALLARM support.

One :class:`DirectoryController` exists per node.  It owns that node's
probe filter and memory controller, and services coherence requests for
every line homed in the node's memory.  The controller implements:

* the baseline sparse-directory flow — look up the probe filter, allocate
  an entry on a miss (possibly evicting and invalidating a victim line in
  every cache that holds it), fetch data from the owning cache or DRAM,
  and invalidate sharers on writes; and
* the ALLARM extension — on a probe-filter miss, consult the allocation
  policy: local-core misses are serviced without allocating an entry,
  while remote misses additionally probe the home node's local cache
  (whose lines may be untracked) before completing, overlapping that
  probe with the DRAM access whenever possible (Section II-D).

Latency is accounted on the requesting core's critical path; background
activity (probe-filter eviction invalidations, writebacks) adds traffic
and energy but not request latency, mirroring how these flows behave in
the real protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set

from repro.cache.hierarchy import CacheHierarchy
from repro.coherence.messages import MessageFactory, MessageType
from repro.coherence.states import LineState, fill_state
from repro.coherence.transactions import DataSource, RequestKind, Transaction
from repro.core.policy import AllocationPolicy, BaselinePolicy
from repro.core.probe_filter import ProbeFilter, ProbeFilterEntry
from repro.errors import ProtocolError
from repro.memory.controller import MemoryController
from repro.noc.network import Network


@dataclass
class DirectoryStats:
    """Per-directory counters behind Figures 2, 3d and 3g."""

    local_requests: int = 0
    remote_requests: int = 0
    read_requests: int = 0
    write_requests: int = 0
    local_probes_sent: int = 0
    local_probes_hidden: int = 0
    local_probes_found_line: int = 0
    invalidations_sent: int = 0
    eviction_messages: int = 0
    eviction_writebacks: int = 0
    cache_eviction_notices: int = 0
    untracked_local_writebacks: int = 0

    @property
    def total_requests(self) -> int:
        """All requests serviced by this directory."""
        return self.local_requests + self.remote_requests

    @property
    def local_fraction(self) -> float:
        """Fraction of requests from the local core (Figure 2)."""
        if self.total_requests == 0:
            return 0.0
        return self.local_requests / self.total_requests

    @property
    def probe_hidden_fraction(self) -> float:
        """Fraction of ALLARM local probes off the critical path (Fig. 3g)."""
        if self.local_probes_sent == 0:
            return 0.0
        return self.local_probes_hidden / self.local_probes_sent

    def as_dict(self) -> Dict[str, float]:
        """Return the counters as a plain dictionary (for reports)."""
        return {
            "local_requests": self.local_requests,
            "remote_requests": self.remote_requests,
            "read_requests": self.read_requests,
            "write_requests": self.write_requests,
            "local_probes_sent": self.local_probes_sent,
            "local_probes_hidden": self.local_probes_hidden,
            "local_probes_found_line": self.local_probes_found_line,
            "invalidations_sent": self.invalidations_sent,
            "eviction_messages": self.eviction_messages,
            "eviction_writebacks": self.eviction_writebacks,
            "cache_eviction_notices": self.cache_eviction_notices,
            "local_fraction": self.local_fraction,
            "probe_hidden_fraction": self.probe_hidden_fraction,
        }


@dataclass
class ServiceOutcome:
    """What the requester must do after the directory services its miss."""

    transaction: Transaction
    fill_state: LineState


@dataclass
class DirectoryTimings:
    """Component latencies used on the request critical path."""

    directory_access_ns: float = 1.0
    cache_access_ns: float = 1.0
    on_die_link_ns: float = 2.0

    @property
    def local_probe_ns(self) -> float:
        """Round-trip latency of the ALLARM local-state probe.

        The probe travels on-die links to the local cache and back and
        performs one SRAM lookup — well under the off-die DRAM latency,
        which is what makes hiding it possible (Section II-D).
        """
        return 2 * self.on_die_link_ns + self.cache_access_ns


class DirectoryController:
    """Protocol engine for one home node."""

    def __init__(
        self,
        node_id: int,
        probe_filter: ProbeFilter,
        memory_controller: MemoryController,
        network: Network,
        cache_lookup: Callable[[int], CacheHierarchy],
        policy: Optional[AllocationPolicy] = None,
        message_factory: Optional[MessageFactory] = None,
        timings: Optional[DirectoryTimings] = None,
    ) -> None:
        self.node_id = node_id
        self.probe_filter = probe_filter
        self.memory_controller = memory_controller
        self.network = network
        self.cache_lookup = cache_lookup
        self.policy = policy or BaselinePolicy()
        self.messages = message_factory or MessageFactory()
        self.timings = timings or DirectoryTimings()
        self.stats = DirectoryStats()

    # ==================================================================
    # Request servicing
    # ==================================================================
    def service_request(
        self, requester: int, line_address: int, kind: RequestKind
    ) -> ServiceOutcome:
        """Service an L2 miss (or upgrade) from *requester* for *line_address*."""
        txn = Transaction(
            requester=requester,
            home=self.node_id,
            line_address=line_address,
            kind=kind,
        )
        self._count_request(requester, kind)

        # Request message from the requester to this directory.
        request_type = (
            MessageType.GET_EXCLUSIVE if kind.is_write else MessageType.GET_SHARED
        )
        latency = self._send(txn, request_type, requester, self.node_id)
        latency += self.timings.directory_access_ns

        entry = self.probe_filter.lookup(line_address)
        if entry is not None:
            txn.probe_filter_hit = True
            latency += self._service_hit(txn, entry, requester, line_address, kind)
            state = self._requester_fill_state(txn, kind)
        else:
            latency += self._service_miss(txn, requester, line_address, kind)
            state = self._requester_fill_state(txn, kind)

        txn.latency_ns = latency
        return ServiceOutcome(transaction=txn, fill_state=state)

    # ------------------------------------------------------------------
    # Probe-filter hit path (identical for baseline and ALLARM)
    # ------------------------------------------------------------------
    def _service_hit(
        self,
        txn: Transaction,
        entry: ProbeFilterEntry,
        requester: int,
        line_address: int,
        kind: RequestKind,
    ) -> float:
        if kind.is_write:
            return self._service_hit_write(txn, entry, requester, line_address)
        return self._service_hit_read(txn, entry, requester, line_address)

    def _service_hit_read(
        self,
        txn: Transaction,
        entry: ProbeFilterEntry,
        requester: int,
        line_address: int,
    ) -> float:
        owner = entry.owner
        supplier: Optional[int] = None
        if owner is not None and owner != requester and self._cache_holds(owner, line_address):
            supplier = owner
        else:
            # Hammer supplies clean data cache-to-cache as well: any live
            # sharer can respond, saving the DRAM access.
            for sharer in sorted(entry.sharers):
                if sharer != requester and self._cache_holds(sharer, line_address):
                    supplier = sharer
                    break
        latency = 0.0
        if supplier is not None:
            # Forward the request to the supplying cache, which sends data
            # directly to the requester (three-hop transaction).
            latency += self._send(
                txn, MessageType.FORWARD_GET_SHARED, self.node_id, supplier
            )
            latency += self.timings.cache_access_ns
            self.cache_lookup(supplier).handle_downgrade(line_address)
            latency += self._send(
                txn, MessageType.DATA_FROM_OWNER, supplier, requester
            )
            txn.data_source = DataSource.OWNER_CACHE
            entry.sharers.add(requester)
        else:
            # No live owner: memory supplies the data.
            latency += self.memory_controller.read_line(line_address)
            latency += self._send(
                txn, MessageType.DATA_FROM_MEMORY, self.node_id, requester
            )
            txn.data_source = DataSource.MEMORY
            entry.sharers.add(requester)
            if owner is not None and not self._cache_holds(owner, line_address):
                # Stale owner (silently dropped clean line); clear it.
                entry.owner = None
        self.probe_filter.update(entry)
        return latency

    def _service_hit_write(
        self,
        txn: Transaction,
        entry: ProbeFilterEntry,
        requester: int,
        line_address: int,
    ) -> float:
        holders = entry.holders
        holders.discard(requester)
        invalidation_latency = 0.0
        data_latency = 0.0
        data_sent = False

        owner = entry.owner
        if owner is not None and owner != requester and self._cache_holds(owner, line_address):
            # The owner both supplies data and invalidates its copy.
            fwd = self._send(
                txn, MessageType.FORWARD_GET_EXCLUSIVE, self.node_id, owner
            )
            fwd += self.timings.cache_access_ns
            self._invalidate_in_cache(txn, owner, line_address, writeback_to_memory=False)
            fwd += self._send(txn, MessageType.DATA_FROM_OWNER, owner, requester)
            data_latency = fwd
            data_sent = True
            txn.data_source = DataSource.OWNER_CACHE
            holders.discard(owner)

        for holder in sorted(holders):
            path = self._send(txn, MessageType.INVALIDATE, self.node_id, holder)
            path += self.timings.cache_access_ns
            self._invalidate_in_cache(txn, holder, line_address, writeback_to_memory=True)
            path += self._send(txn, MessageType.ACK, holder, requester)
            invalidation_latency = max(invalidation_latency, path)
            txn.invalidations_sent += 1
            self.stats.invalidations_sent += 1

        if not data_sent:
            if requester in entry.holders:
                # Upgrade: the requester already has the data.
                txn.data_source = DataSource.NONE
            else:
                data_latency = self.memory_controller.read_line(line_address)
                data_latency += self._send(
                    txn, MessageType.DATA_FROM_MEMORY, self.node_id, requester
                )
                txn.data_source = DataSource.MEMORY

        entry.owner = requester
        entry.sharers = set()
        self.probe_filter.update(entry)
        # Invalidations and the data fetch proceed in parallel; the request
        # completes when the slower of the two finishes.
        return max(invalidation_latency, data_latency)

    # ------------------------------------------------------------------
    # Probe-filter miss path (where baseline and ALLARM diverge)
    # ------------------------------------------------------------------
    def _service_miss(
        self,
        txn: Transaction,
        requester: int,
        line_address: int,
        kind: RequestKind,
    ) -> float:
        allocate = self.policy.should_allocate(requester, self.node_id, line_address)
        probe_local = self.policy.needs_local_probe(
            requester, self.node_id, line_address
        )

        if not allocate:
            # ALLARM local-core miss: service straight from memory with no
            # directory state and no coherence traffic.
            if requester != self.node_id:
                raise ProtocolError(
                    "allocation policy skipped allocation for a remote requester"
                )
            latency = self.memory_controller.read_line(line_address)
            latency += self._send(
                txn, MessageType.DATA_FROM_MEMORY, self.node_id, requester
            )
            txn.data_source = DataSource.MEMORY
            return latency

        local_state = LineState.INVALID
        probe_latency = 0.0
        if probe_local and requester != self.node_id:
            probe_latency = self._probe_local_cache(txn, line_address)
            local_state = self.cache_lookup(self.node_id).coherence_state(line_address)
            if local_state.is_valid:
                txn.local_probe_found_line = True
                self.stats.local_probes_found_line += 1

        # Work out who will hold the line once the request completes, then
        # allocate the entry (possibly evicting a victim).
        owner, sharers = self._post_miss_entry_state(
            txn, requester, line_address, kind, local_state
        )
        outcome = self.probe_filter.allocate(line_address, owner=owner, sharers=sharers)
        txn.allocated_entry = True
        if outcome.caused_eviction:
            txn.caused_eviction = True
            self._evict_victim(outcome.victim)

        data_latency = self._miss_data_latency(
            txn, requester, line_address, kind, local_state
        )

        if probe_latency > 0.0:
            hidden = (not local_state.is_valid) and data_latency >= probe_latency
            txn.local_probe_hidden = hidden
            if hidden:
                self.stats.local_probes_hidden += 1
                return max(data_latency, probe_latency)
            return probe_latency + data_latency
        return data_latency

    def _post_miss_entry_state(
        self,
        txn: Transaction,
        requester: int,
        line_address: int,
        kind: RequestKind,
        local_state: LineState,
    ):
        local_node = self.node_id
        if not local_state.is_valid or requester == local_node:
            return requester, set()
        if kind.is_write:
            # The local copy will be invalidated; the requester becomes the
            # sole owner.
            return requester, set()
        # Read that found the line in the (untracked) local cache: the local
        # cache keeps the line.  If it stays dirty it remains the owner;
        # otherwise both caches share the line.
        new_local = local_state.after_remote_read()
        if new_local.is_dirty:
            return local_node, {requester}
        return None, {local_node, requester}

    def _miss_data_latency(
        self,
        txn: Transaction,
        requester: int,
        line_address: int,
        kind: RequestKind,
        local_state: LineState,
    ) -> float:
        local_cache = self.cache_lookup(self.node_id)
        if local_state.is_valid and requester != self.node_id:
            # The untracked local copy supplies (or is invalidated for) the
            # requester; no DRAM access is needed on the critical path.
            if kind.is_write:
                self._invalidate_in_cache(
                    txn, self.node_id, line_address, writeback_to_memory=False
                )
            else:
                local_cache.handle_downgrade(line_address)
            latency = self._send(
                txn, MessageType.DATA_FROM_OWNER, self.node_id, requester
            )
            txn.data_source = DataSource.LOCAL_CACHE
            return latency

        latency = self.memory_controller.read_line(line_address)
        latency += self._send(
            txn, MessageType.DATA_FROM_MEMORY, self.node_id, requester
        )
        txn.data_source = DataSource.MEMORY
        return latency

    def _requester_fill_state(self, txn: Transaction, kind: RequestKind) -> LineState:
        had_other_sharers = txn.data_source in (
            DataSource.OWNER_CACHE,
            DataSource.LOCAL_CACHE,
        )
        if txn.probe_filter_hit and not kind.is_write:
            entry = self.probe_filter.peek(txn.line_address)
            if entry is not None and entry.holder_count > 1:
                had_other_sharers = True
        return fill_state(kind.is_write, had_other_sharers)

    # ------------------------------------------------------------------
    # Probe-filter eviction (the baseline overhead ALLARM attacks)
    # ------------------------------------------------------------------
    def _evict_victim(self, victim: ProbeFilterEntry) -> None:
        """Invalidate the victim line everywhere it is cached.

        Each holder receives an invalidation and responds with an ack;
        dirty copies are written back to memory.  These messages are the
        per-eviction traffic plotted in Figure 3d.
        """
        line = victim.line_address
        for holder in sorted(victim.holders):
            inv = self.messages.make(MessageType.INVALIDATE, self.node_id, holder, line)
            self.network.deliver(inv)
            ack = self.messages.make(MessageType.ACK, holder, self.node_id, line)
            self.network.deliver(ack)
            self.stats.eviction_messages += 2
            self.stats.invalidations_sent += 1
            prior = self.cache_lookup(holder).handle_invalidate(line)
            if prior is not None and prior.is_dirty:
                wb = self.messages.make(
                    MessageType.WRITEBACK_DATA, holder, self.node_id, line
                )
                self.network.deliver(wb)
                self.stats.eviction_messages += 1
                self.stats.eviction_writebacks += 1
                self.memory_controller.writeback_line(line)

    # ------------------------------------------------------------------
    # Cache-initiated eviction notices
    # ------------------------------------------------------------------
    def handle_cache_eviction(
        self, evicting_node: int, line_address: int, state: LineState
    ) -> None:
        """Handle an L2 eviction of a line homed at this directory.

        The paper's baseline notifies the directory when an owned block is
        evicted, keeping the probe filter precise.  Dirty lines are written
        back; untracked (ALLARM local) lines go straight to the local
        memory controller with no coherence traffic.
        """
        self.stats.cache_eviction_notices += 1
        entry = self.probe_filter.peek(line_address)
        if entry is None:
            # An untracked line: only the home node's local core can hold
            # one, so the writeback (if any) is entirely local.
            if state.is_dirty:
                self.memory_controller.writeback_line(line_address)
                self.stats.untracked_local_writebacks += 1
            return

        if state.is_dirty:
            notice_type = MessageType.WRITEBACK_DATA
        elif state.is_owner:
            notice_type = MessageType.PUT_EXCLUSIVE
        else:
            notice_type = MessageType.PUT_SHARED
        notice = self.messages.make(
            notice_type, evicting_node, self.node_id, line_address
        )
        self.network.deliver(notice)
        ack = self.messages.make(
            MessageType.WRITEBACK_ACK, self.node_id, evicting_node, line_address
        )
        self.network.deliver(ack)
        if state.is_dirty:
            self.memory_controller.writeback_line(line_address)

        if entry.owner == evicting_node:
            entry.owner = None
        entry.sharers.discard(evicting_node)
        if entry.holder_count == 0:
            self.probe_filter.deallocate(line_address)
        else:
            self.probe_filter.update(entry)

    # ==================================================================
    # Helpers
    # ==================================================================
    def _probe_local_cache(self, txn: Transaction, line_address: int) -> float:
        """Issue the ALLARM local-state probe; return its round-trip latency."""
        self.stats.local_probes_sent += 1
        txn.local_probe_sent = True
        probe = self.messages.make(
            MessageType.LOCAL_STATE_PROBE, self.node_id, self.node_id, line_address
        )
        self.network.deliver(probe)
        txn.add_message(probe)
        response = self.messages.make(
            MessageType.LOCAL_STATE_RESPONSE, self.node_id, self.node_id, line_address
        )
        self.network.deliver(response)
        txn.add_message(response)
        return self.timings.local_probe_ns

    def _invalidate_in_cache(
        self,
        txn: Transaction,
        node: int,
        line_address: int,
        writeback_to_memory: bool,
    ) -> None:
        prior = self.cache_lookup(node).handle_invalidate(line_address)
        if prior is not None and prior.is_dirty and writeback_to_memory:
            wb = self.messages.make(
                MessageType.WRITEBACK_DATA, node, self.node_id, line_address
            )
            self.network.deliver(wb)
            txn.add_message(wb)
            self.memory_controller.writeback_line(line_address)

    def _cache_holds(self, node: int, line_address: int) -> bool:
        return self.cache_lookup(node).holds_line(line_address)

    def _send(
        self, txn: Transaction, msg_type: MessageType, src: int, dst: int
    ) -> float:
        message = self.messages.make(msg_type, src, dst, txn.line_address)
        result = self.network.deliver(message)
        txn.add_message(message)
        return result.latency_ns

    def _count_request(self, requester: int, kind: RequestKind) -> None:
        if requester == self.node_id:
            self.stats.local_requests += 1
        else:
            self.stats.remote_requests += 1
        if kind.is_write:
            self.stats.write_requests += 1
        else:
            self.stats.read_requests += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DirectoryController(node={self.node_id}, policy={self.policy.name})"
        )
