"""The paper's contribution: probe filter, allocation policies, directory."""

from repro.core.directory import (
    DirectoryController,
    DirectoryStats,
    DirectoryTimings,
    ServiceOutcome,
)
from repro.core.policy import (
    AllarmPolicy,
    AllocationPolicy,
    BaselinePolicy,
    PhysicalRange,
    available_policies,
    make_policy,
)
from repro.core.probe_filter import (
    AllocationOutcome,
    ProbeFilter,
    ProbeFilterEntry,
    ProbeFilterStats,
)

__all__ = [
    "DirectoryController",
    "DirectoryStats",
    "DirectoryTimings",
    "ServiceOutcome",
    "AllocationPolicy",
    "BaselinePolicy",
    "AllarmPolicy",
    "PhysicalRange",
    "make_policy",
    "available_policies",
    "ProbeFilter",
    "ProbeFilterEntry",
    "ProbeFilterStats",
    "AllocationOutcome",
]
