"""Link model: latency and serialization for one mesh hop.

Table I gives 8 GB/s of link bandwidth, 10 ns link latency and 4-byte
flits.  A message of ``n`` flits occupying a link therefore needs the
propagation latency once plus one serialization interval per flit.  The
link also accumulates the byte and flit counts used for traffic and
utilisation statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class LinkStats:
    """Traffic counters for a single directed link."""

    messages: int = 0
    flits: int = 0
    bytes: int = 0
    busy_ns: float = 0.0


@dataclass
class Link:
    """One directed link between two adjacent routers.

    Parameters
    ----------
    src, dst:
        The routers this link connects.
    bandwidth_bytes_per_ns:
        Link bandwidth; 8 GB/s equals 8 bytes per nanosecond.
    latency_ns:
        Propagation latency of the link (wire + traversal).
    flit_bytes:
        Flit width used to compute serialization latency.
    """

    src: int
    dst: int
    bandwidth_bytes_per_ns: float = 8.0
    latency_ns: float = 10.0
    flit_bytes: int = 4
    stats: LinkStats = field(default_factory=LinkStats)

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_ns <= 0:
            raise ConfigurationError("link bandwidth must be positive")
        if self.latency_ns < 0:
            raise ConfigurationError("link latency cannot be negative")
        if self.flit_bytes <= 0:
            raise ConfigurationError("flit size must be positive")

    # ------------------------------------------------------------------
    def serialization_ns(self, size_bytes: int) -> float:
        """Time to push *size_bytes* through the link at full bandwidth."""
        if size_bytes < 0:
            raise ConfigurationError("message size cannot be negative")
        return size_bytes / self.bandwidth_bytes_per_ns

    def traversal_ns(self, size_bytes: int) -> float:
        """Total time for a message of *size_bytes* to cross this link."""
        return self.latency_ns + self.serialization_ns(size_bytes)

    def record(self, size_bytes: int, flits: int) -> float:
        """Account for one message crossing the link; return traversal time."""
        elapsed = self.traversal_ns(size_bytes)
        self.stats.messages += 1
        self.stats.flits += flits
        self.stats.bytes += size_bytes
        self.stats.busy_ns += self.serialization_ns(size_bytes)
        return elapsed

    def utilisation(self, elapsed_ns: float) -> float:
        """Fraction of *elapsed_ns* this link spent serializing flits."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.stats.busy_ns / elapsed_ns)
