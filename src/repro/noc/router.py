"""Router model: per-hop pipeline latency and flit accounting.

The transaction-level network charges each message a fixed router pipeline
delay per hop plus the link traversal time.  Routers also count the flits
they forward, which feeds the NoC dynamic-energy model (router energy is
charged per flit traversal, link energy per flit-hop).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class RouterStats:
    """Counters for a single router."""

    messages_forwarded: int = 0
    flits_forwarded: int = 0
    bytes_forwarded: int = 0
    messages_injected: int = 0
    messages_ejected: int = 0


@dataclass
class Router:
    """One mesh router attached to a node.

    Parameters
    ----------
    node_id:
        The node this router serves.
    pipeline_latency_ns:
        Time a flit spends in the router pipeline (route computation,
        VC/switch allocation, switch traversal).  Three cycles at 2 GHz is
        1.5 ns; we default to 1.5 ns.
    """

    node_id: int
    pipeline_latency_ns: float = 1.5
    stats: RouterStats = field(default_factory=RouterStats)

    def __post_init__(self) -> None:
        if self.pipeline_latency_ns < 0:
            raise ConfigurationError("router latency cannot be negative")

    def forward(self, size_bytes: int, flits: int) -> float:
        """Account for forwarding one message; return pipeline latency."""
        self.stats.messages_forwarded += 1
        self.stats.flits_forwarded += flits
        self.stats.bytes_forwarded += size_bytes
        return self.pipeline_latency_ns

    def inject(self) -> None:
        """Record a message entering the network at this router."""
        self.stats.messages_injected += 1

    def eject(self) -> None:
        """Record a message leaving the network at this router."""
        self.stats.messages_ejected += 1
