"""On-chip network: mesh topology, routing, links, routers, traffic."""

from repro.noc.link import Link, LinkStats
from repro.noc.network import DeliveryResult, Network, NetworkStats
from repro.noc.router import Router, RouterStats
from repro.noc.routing import RoutingAlgorithm, XYRouting, YXRouting, make_routing
from repro.noc.topology import Coordinate, MeshTopology

__all__ = [
    "MeshTopology",
    "Coordinate",
    "RoutingAlgorithm",
    "XYRouting",
    "YXRouting",
    "make_routing",
    "Link",
    "LinkStats",
    "Router",
    "RouterStats",
    "Network",
    "NetworkStats",
    "DeliveryResult",
]
