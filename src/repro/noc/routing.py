"""Deterministic routing algorithms for the mesh NoC.

Dimension-ordered XY routing is the default (and what deployed meshes of
this era used); YX routing is provided for ablation experiments.  Both are
deadlock-free on a mesh and produce minimal paths, so hop counts — the
quantity that matters for the paper's latency and traffic results — are
identical; only the intermediate routers differ.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List

from repro.errors import ConfigurationError
from repro.noc.topology import MeshTopology


class RoutingAlgorithm(ABC):
    """Computes the sequence of nodes a message visits."""

    def __init__(self, topology: MeshTopology) -> None:
        self.topology = topology

    @abstractmethod
    def route(self, src: int, dst: int) -> List[int]:
        """Return the node sequence from *src* to *dst*, inclusive."""

    def hop_count(self, src: int, dst: int) -> int:
        """Number of link traversals on the route from *src* to *dst*."""
        return len(self.route(src, dst)) - 1


class XYRouting(RoutingAlgorithm):
    """Dimension-ordered routing: correct X first, then Y."""

    def route(self, src: int, dst: int) -> List[int]:
        s = self.topology.coordinate(src)
        d = self.topology.coordinate(dst)
        path = [src]
        x, y = s.x, s.y
        while x != d.x:
            x += 1 if d.x > x else -1
            path.append(self.topology.node_at(x, y))
        while y != d.y:
            y += 1 if d.y > y else -1
            path.append(self.topology.node_at(x, y))
        return path


class YXRouting(RoutingAlgorithm):
    """Dimension-ordered routing: correct Y first, then X."""

    def route(self, src: int, dst: int) -> List[int]:
        s = self.topology.coordinate(src)
        d = self.topology.coordinate(dst)
        path = [src]
        x, y = s.x, s.y
        while y != d.y:
            y += 1 if d.y > y else -1
            path.append(self.topology.node_at(x, y))
        while x != d.x:
            x += 1 if d.x > x else -1
            path.append(self.topology.node_at(x, y))
        return path


_ROUTERS = {"xy": XYRouting, "yx": YXRouting}


def make_routing(name: str, topology: MeshTopology) -> RoutingAlgorithm:
    """Build a routing algorithm by name (``"xy"`` or ``"yx"``)."""
    try:
        cls = _ROUTERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown routing algorithm {name!r}; expected one of {sorted(_ROUTERS)}"
        )
    return cls(topology)


def available_routing() -> List[str]:
    """Return the names of the available routing algorithms."""
    return sorted(_ROUTERS)
