"""Mesh topology for the on-chip network.

The paper's system is a 4x4 mesh of nodes, each containing a core, its
caches, a directory (probe filter) and a memory controller (Figure 1 and
Table I).  This module provides the mesh geometry: node coordinates,
adjacency, and Manhattan distances used by the XY routing and the latency
model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.errors import ConfigurationError, NetworkError


@dataclass(frozen=True)
class Coordinate:
    """(x, y) position of a node in the mesh."""

    x: int
    y: int

    def manhattan_distance(self, other: "Coordinate") -> int:
        """Return the Manhattan (hop) distance to *other*."""
        return abs(self.x - other.x) + abs(self.y - other.y)


class MeshTopology:
    """A ``width`` x ``height`` 2D mesh with bidirectional links.

    Node ids are assigned in row-major order: node ``y * width + x`` sits
    at coordinate ``(x, y)``.
    """

    def __init__(self, width: int = 4, height: int = 4) -> None:
        if width <= 0 or height <= 0:
            raise ConfigurationError("mesh dimensions must be positive")
        self.width = width
        self.height = height
        self._coords: Dict[int, Coordinate] = {
            y * width + x: Coordinate(x, y)
            for y in range(height)
            for x in range(width)
        }

    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Number of nodes in the mesh."""
        return self.width * self.height

    def nodes(self) -> Iterator[int]:
        """Iterate over node ids in row-major order."""
        return iter(range(self.node_count))

    def coordinate(self, node: int) -> Coordinate:
        """Return the coordinate of *node*."""
        try:
            return self._coords[node]
        except KeyError:
            raise NetworkError(f"node {node} not in {self.width}x{self.height} mesh")

    def node_at(self, x: int, y: int) -> int:
        """Return the node id at coordinate (x, y)."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise NetworkError(f"coordinate ({x}, {y}) outside mesh")
        return y * self.width + x

    # ------------------------------------------------------------------
    def neighbours(self, node: int) -> List[int]:
        """Return the nodes directly linked to *node*."""
        coord = self.coordinate(node)
        result = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = coord.x + dx, coord.y + dy
            if 0 <= nx < self.width and 0 <= ny < self.height:
                result.append(self.node_at(nx, ny))
        return result

    def are_adjacent(self, a: int, b: int) -> bool:
        """True when nodes *a* and *b* share a mesh link."""
        return self.hop_distance(a, b) == 1

    def hop_distance(self, src: int, dst: int) -> int:
        """Minimum number of link traversals between two nodes."""
        return self.coordinate(src).manhattan_distance(self.coordinate(dst))

    def links(self) -> Iterator[Tuple[int, int]]:
        """Iterate over every directed link ``(src, dst)`` in the mesh."""
        for node in self.nodes():
            for neighbour in self.neighbours(node):
                yield (node, neighbour)

    def average_distance(self) -> float:
        """Average hop distance between distinct node pairs.

        Used by the analytical NoC energy model to convert message counts
        into expected flit-hops when a full route trace is not available.
        """
        total = 0
        pairs = 0
        for a in self.nodes():
            for b in self.nodes():
                if a != b:
                    total += self.hop_distance(a, b)
                    pairs += 1
        return total / pairs if pairs else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MeshTopology({self.width}x{self.height})"
