"""Transaction-level on-chip network model.

The network delivers coherence messages between nodes of the mesh, charges
them a latency (router pipeline + link traversal per hop) and accumulates
the traffic statistics the paper reports: bytes injected (Figures 3c, 4c,
4f), flit-hops (which drive NoC dynamic energy, Figure 3f) and message
counts by type (Figure 3d's messages-per-eviction).

Messages whose source and destination are the same node never enter the
mesh: they are delivered with zero latency contribution from the network
and zero traffic, matching the paper's claim that thread-local accesses
under ALLARM create no coherence network traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.coherence.messages import Message, MessageType
from repro.errors import NetworkError
from repro.noc.link import Link
from repro.noc.router import Router
from repro.noc.routing import RoutingAlgorithm, make_routing
from repro.noc.topology import MeshTopology


@dataclass
class NetworkStats:
    """Machine-wide network traffic counters."""

    messages_sent: int = 0
    local_messages: int = 0
    bytes_injected: int = 0
    flit_hops: int = 0
    byte_hops: int = 0
    messages_by_type: Dict[str, int] = field(default_factory=dict)
    bytes_by_type: Dict[str, int] = field(default_factory=dict)

    def record(self, message: Message, hops: int) -> None:
        """Accumulate one delivered message that travelled *hops* links."""
        name = message.msg_type.value
        self.messages_by_type[name] = self.messages_by_type.get(name, 0) + 1
        if message.is_local or hops == 0:
            self.local_messages += 1
            return
        self.messages_sent += 1
        self.bytes_injected += message.size_bytes
        self.flit_hops += message.flits * hops
        self.byte_hops += message.size_bytes * hops
        self.bytes_by_type[name] = (
            self.bytes_by_type.get(name, 0) + message.size_bytes
        )

    def as_dict(self) -> Dict[str, float]:
        """Flatten the aggregate counters into a plain dictionary."""
        return {
            "messages_sent": self.messages_sent,
            "local_messages": self.local_messages,
            "bytes_injected": self.bytes_injected,
            "flit_hops": self.flit_hops,
            "byte_hops": self.byte_hops,
        }


@dataclass
class DeliveryResult:
    """Latency and route of one delivered message."""

    latency_ns: float
    hops: int
    path: List[int]


class Network:
    """Mesh interconnect connecting every node's router.

    Parameters
    ----------
    topology:
        The mesh geometry (defaults to the paper's 4x4 mesh).
    routing:
        Routing algorithm name, ``"xy"`` by default.
    link_bandwidth_bytes_per_ns, link_latency_ns, flit_bytes:
        Link parameters from Table I (8 GB/s, 10 ns, 4 B flits).
    router_latency_ns:
        Per-hop router pipeline latency.
    """

    def __init__(
        self,
        topology: Optional[MeshTopology] = None,
        routing: str = "xy",
        link_bandwidth_bytes_per_ns: float = 8.0,
        link_latency_ns: float = 10.0,
        flit_bytes: int = 4,
        router_latency_ns: float = 1.5,
    ) -> None:
        self.topology = topology or MeshTopology(4, 4)
        self.routing: RoutingAlgorithm = make_routing(routing, self.topology)
        self.stats = NetworkStats()
        self.routers: Dict[int, Router] = {
            node: Router(node, router_latency_ns) for node in self.topology.nodes()
        }
        self.links: Dict[Tuple[int, int], Link] = {
            (src, dst): Link(
                src,
                dst,
                bandwidth_bytes_per_ns=link_bandwidth_bytes_per_ns,
                latency_ns=link_latency_ns,
                flit_bytes=flit_bytes,
            )
            for src, dst in self.topology.links()
        }
        # Routes are deterministic, so cache them per (src, dst) pair; the
        # simulator delivers millions of messages over the same few pairs.
        self._route_cache: Dict[Tuple[int, int], List[int]] = {}

    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Number of nodes attached to the network."""
        return self.topology.node_count

    def hop_distance(self, src: int, dst: int) -> int:
        """Minimal hop count between two nodes."""
        return self.topology.hop_distance(src, dst)

    # ------------------------------------------------------------------
    def deliver(self, message: Message) -> DeliveryResult:
        """Deliver *message*, returning its latency and route.

        Local (same-node) messages bypass the mesh entirely.
        """
        self._validate_endpoints(message)
        if message.src == message.dst:
            self.stats.record(message, hops=0)
            return DeliveryResult(latency_ns=0.0, hops=0, path=[message.src])

        key = (message.src, message.dst)
        path = self._route_cache.get(key)
        if path is None:
            path = self.routing.route(message.src, message.dst)
            self._route_cache[key] = path
        hops = len(path) - 1
        latency = 0.0
        self.routers[message.src].inject()
        for i in range(hops):
            src, dst = path[i], path[i + 1]
            link = self.links.get((src, dst))
            if link is None:
                raise NetworkError(f"no link between adjacent nodes {src} and {dst}")
            latency += self.routers[src].forward(message.size_bytes, message.flits)
            latency += link.record(message.size_bytes, message.flits)
        self.routers[message.dst].eject()
        self.stats.record(message, hops=hops)
        return DeliveryResult(latency_ns=latency, hops=hops, path=path)

    def latency_estimate(self, src: int, dst: int, size_bytes: int) -> float:
        """Estimate delivery latency without recording any traffic.

        Used by the directory controller for critical-path reasoning
        (e.g. deciding whether the ALLARM local probe was hidden).
        """
        if src == dst:
            return 0.0
        hops = self.hop_distance(src, dst)
        sample_link = next(iter(self.links.values()))
        per_hop = (
            self.routers[src].pipeline_latency_ns
            + sample_link.latency_ns
            + sample_link.serialization_ns(size_bytes)
        )
        return hops * per_hop

    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        """Total bytes injected into the mesh (the Figure 3c metric)."""
        return self.stats.bytes_injected

    def total_flit_hops(self) -> int:
        """Total flit-hops (drives the NoC dynamic-energy model)."""
        return self.stats.flit_hops

    def _validate_endpoints(self, message: Message) -> None:
        for endpoint in (message.src, message.dst):
            if endpoint < 0 or endpoint >= self.node_count:
                raise NetworkError(
                    f"message endpoint {endpoint} outside mesh of "
                    f"{self.node_count} nodes"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Network({self.topology!r}, routing={type(self.routing).__name__})"
