"""Address arithmetic: cache lines, pages and NUMA home-node mapping.

The simulated machine uses a flat physical address space partitioned into
equal, contiguous per-node regions (Table I of the paper: 2 GB of DRAM
divided into sixteen 128 MB blocks, each attached to one directory /
memory controller).  The *home node* of a physical address is therefore a
pure function of the address, implemented by :class:`AddressMap`.

Virtual addresses are translated to physical addresses by the NUMA
allocator (:mod:`repro.numa`); everything below the translation layer
(caches, directories, DRAM) operates on physical addresses only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressError, ConfigurationError


def is_power_of_two(value: int) -> bool:
    """Return ``True`` when *value* is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return ``log2(value)`` for an exact power of two, else raise."""
    if not is_power_of_two(value):
        raise ConfigurationError(f"{value} is not a power of two")
    return value.bit_length() - 1


@dataclass(frozen=True)
class AddressMap:
    """Decomposes physical addresses into lines, pages and home nodes.

    Parameters
    ----------
    line_size:
        Cache line size in bytes (64 in the paper).
    page_size:
        OS page size in bytes (4096).
    node_count:
        Number of nodes (directories / memory controllers).
    memory_bytes:
        Total physical memory; must divide evenly across nodes.
    """

    line_size: int = 64
    page_size: int = 4096
    node_count: int = 16
    memory_bytes: int = 2 * 1024 * 1024 * 1024

    def __post_init__(self) -> None:
        if not is_power_of_two(self.line_size):
            raise ConfigurationError("line_size must be a power of two")
        if not is_power_of_two(self.page_size):
            raise ConfigurationError("page_size must be a power of two")
        if self.page_size < self.line_size:
            raise ConfigurationError("page_size must be >= line_size")
        if self.node_count <= 0:
            raise ConfigurationError("node_count must be positive")
        if self.memory_bytes % self.node_count != 0:
            raise ConfigurationError(
                "memory_bytes must divide evenly across nodes"
            )
        if self.bytes_per_node % self.page_size != 0:
            raise ConfigurationError(
                "per-node memory must be a whole number of pages"
            )

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def bytes_per_node(self) -> int:
        """Physical memory attached to each node, in bytes."""
        return self.memory_bytes // self.node_count

    @property
    def pages_per_node(self) -> int:
        """Number of physical page frames owned by each node."""
        return self.bytes_per_node // self.page_size

    @property
    def lines_per_page(self) -> int:
        """Number of cache lines contained in one page."""
        return self.page_size // self.line_size

    @property
    def total_frames(self) -> int:
        """Total number of physical page frames in the machine."""
        return self.memory_bytes // self.page_size

    # ------------------------------------------------------------------
    # Line / page decomposition
    # ------------------------------------------------------------------
    def line_address(self, address: int) -> int:
        """Return the line-aligned address containing *address*."""
        self._check(address)
        return address & ~(self.line_size - 1)

    def line_number(self, address: int) -> int:
        """Return the global line index of *address*."""
        self._check(address)
        return address // self.line_size

    def line_offset(self, address: int) -> int:
        """Return the byte offset of *address* within its line."""
        self._check(address)
        return address & (self.line_size - 1)

    def page_address(self, address: int) -> int:
        """Return the page-aligned address containing *address*."""
        self._check(address)
        return address & ~(self.page_size - 1)

    def page_number(self, address: int) -> int:
        """Return the page frame number (physical) of *address*."""
        self._check(address)
        return address // self.page_size

    def page_offset(self, address: int) -> int:
        """Return the byte offset of *address* within its page."""
        self._check(address)
        return address & (self.page_size - 1)

    def frame_base(self, frame_number: int) -> int:
        """Return the base physical address of a page frame."""
        if frame_number < 0 or frame_number >= self.total_frames:
            raise AddressError(f"frame {frame_number} out of range")
        return frame_number * self.page_size

    # ------------------------------------------------------------------
    # Home-node mapping
    # ------------------------------------------------------------------
    def home_node(self, address: int) -> int:
        """Return the node whose memory controller owns *address*.

        Physical memory is striped in large contiguous blocks: node ``n``
        owns addresses ``[n * bytes_per_node, (n + 1) * bytes_per_node)``.
        """
        self._check(address)
        return address // self.bytes_per_node

    def home_node_of_frame(self, frame_number: int) -> int:
        """Return the home node of a physical page frame."""
        return self.home_node(self.frame_base(frame_number))

    def node_frame_range(self, node: int) -> range:
        """Return the range of frame numbers owned by *node*."""
        if node < 0 or node >= self.node_count:
            raise AddressError(f"node {node} out of range")
        frames = self.pages_per_node
        return range(node * frames, (node + 1) * frames)

    def node_address_range(self, node: int) -> range:
        """Return the physical address range (as ``range``) owned by *node*."""
        if node < 0 or node >= self.node_count:
            raise AddressError(f"node {node} out of range")
        base = node * self.bytes_per_node
        return range(base, base + self.bytes_per_node)

    # ------------------------------------------------------------------
    def _check(self, address: int) -> None:
        if address < 0 or address >= self.memory_bytes:
            raise AddressError(
                f"physical address {address:#x} outside memory of "
                f"{self.memory_bytes:#x} bytes"
            )


@dataclass(frozen=True)
class VirtualAddressSpace:
    """Virtual address-space geometry shared by all simulated processes.

    The virtual layout does not affect coherence behaviour; it exists so
    that workload generators can hand out non-overlapping virtual regions
    for private heaps, shared heaps and stacks, and so that the page table
    has a well-defined key space.
    """

    page_size: int = 4096
    size_bytes: int = 1 << 40

    def __post_init__(self) -> None:
        if not is_power_of_two(self.page_size):
            raise ConfigurationError("page_size must be a power of two")
        if self.size_bytes % self.page_size != 0:
            raise ConfigurationError("size must be a whole number of pages")

    def page_number(self, vaddr: int) -> int:
        """Return the virtual page number of *vaddr*."""
        if vaddr < 0 or vaddr >= self.size_bytes:
            raise AddressError(f"virtual address {vaddr:#x} out of range")
        return vaddr // self.page_size

    def page_offset(self, vaddr: int) -> int:
        """Return the byte offset of *vaddr* within its virtual page."""
        if vaddr < 0 or vaddr >= self.size_bytes:
            raise AddressError(f"virtual address {vaddr:#x} out of range")
        return vaddr & (self.page_size - 1)
