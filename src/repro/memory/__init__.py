"""Memory subsystem: address maps, DRAM and memory controllers."""

from repro.memory.address import AddressMap, VirtualAddressSpace
from repro.memory.controller import MemoryController, MemoryControllerStats
from repro.memory.dram import Dram, DramStats

__all__ = [
    "AddressMap",
    "VirtualAddressSpace",
    "Dram",
    "DramStats",
    "MemoryController",
    "MemoryControllerStats",
]
