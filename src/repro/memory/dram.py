"""DRAM device model.

Table I specifies a 60 ns access latency to memory; the off-die link is
the reason the ALLARM local probe (on-die SRAM, ~1 ns cache access plus a
few nanoseconds of on-die routing) can be hidden behind the DRAM access
for remote misses (Section II-D).  We model DRAM as a fixed-latency device
with simple bandwidth/row-buffer accounting so ablations can explore
sensitivity to memory latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigurationError


@dataclass
class DramStats:
    """Access counters for one DRAM channel."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    row_hits: int = 0
    row_misses: int = 0

    @property
    def accesses(self) -> int:
        """Total read and write accesses."""
        return self.reads + self.writes

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
        }


class Dram:
    """One node's DRAM channel.

    Parameters
    ----------
    node_id:
        Owning node.
    access_latency_ns:
        Closed-page access latency (60 ns in Table I).
    row_hit_latency_ns:
        Latency when the access falls in the currently open row; modelled
        as a fraction of the full latency.
    row_bytes:
        Open-row (page) size used for the row-buffer hit heuristic.
    line_size:
        Transfer granularity in bytes.
    """

    def __init__(
        self,
        node_id: int,
        access_latency_ns: float = 60.0,
        row_hit_latency_ns: float = 40.0,
        row_bytes: int = 8192,
        line_size: int = 64,
    ) -> None:
        if access_latency_ns <= 0 or row_hit_latency_ns <= 0:
            raise ConfigurationError("DRAM latencies must be positive")
        if row_hit_latency_ns > access_latency_ns:
            raise ConfigurationError("row hit latency cannot exceed miss latency")
        if row_bytes <= 0 or line_size <= 0:
            raise ConfigurationError("row and line sizes must be positive")
        self.node_id = node_id
        self.access_latency_ns = access_latency_ns
        self.row_hit_latency_ns = row_hit_latency_ns
        self.row_bytes = row_bytes
        self.line_size = line_size
        self.stats = DramStats()
        self._open_row: int = -1

    # ------------------------------------------------------------------
    def read(self, address: int) -> float:
        """Read one line; return the access latency in nanoseconds."""
        latency = self._access(address)
        self.stats.reads += 1
        self.stats.bytes_read += self.line_size
        return latency

    def write(self, address: int) -> float:
        """Write one line (writeback); return the access latency."""
        latency = self._access(address)
        self.stats.writes += 1
        self.stats.bytes_written += self.line_size
        return latency

    # ------------------------------------------------------------------
    def _access(self, address: int) -> float:
        row = address // self.row_bytes
        if row == self._open_row:
            self.stats.row_hits += 1
            return self.row_hit_latency_ns
        self.stats.row_misses += 1
        self._open_row = row
        return self.access_latency_ns
