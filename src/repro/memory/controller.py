"""Per-node memory controller.

The memory controller sits between the directory controller and the DRAM
channel of its node (Figure 1).  In this transaction-level model it simply
forwards line reads and writebacks to the DRAM device, adding a small
queuing/scheduling overhead, and aggregates bandwidth statistics used in
reports and ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError
from repro.memory.dram import Dram


@dataclass
class MemoryControllerStats:
    """Counters for one memory controller."""

    line_reads: int = 0
    line_writebacks: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {
            "line_reads": self.line_reads,
            "line_writebacks": self.line_writebacks,
        }


class MemoryController:
    """Schedules line fills and writebacks onto one node's DRAM channel."""

    def __init__(
        self,
        node_id: int,
        dram: Dram,
        scheduling_overhead_ns: float = 2.0,
    ) -> None:
        if scheduling_overhead_ns < 0:
            raise ConfigurationError("scheduling overhead cannot be negative")
        self.node_id = node_id
        self.dram = dram
        self.scheduling_overhead_ns = scheduling_overhead_ns
        self.stats = MemoryControllerStats()

    def read_line(self, address: int) -> float:
        """Fetch a line from DRAM; return total latency."""
        self.stats.line_reads += 1
        return self.scheduling_overhead_ns + self.dram.read(address)

    def writeback_line(self, address: int) -> float:
        """Write a dirty line back to DRAM; return total latency."""
        self.stats.line_writebacks += 1
        return self.scheduling_overhead_ns + self.dram.write(address)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryController(node={self.node_id})"
