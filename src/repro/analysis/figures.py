"""Figure and table generators: one function per evaluation artefact.

Each function reproduces the rows/series of one figure or table from the
paper's evaluation (Section III), using an :class:`ExperimentRunner` to
execute (and cache) the underlying simulations.  Every function returns a
plain data structure (lists of dataclasses) and has a matching
``format_*`` helper that renders the same content as text, which is what
the benchmark harness and the examples print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.experiments import (
    FIG3H_PF_SIZES,
    FIG4_PF_SIZES,
    ExperimentRunner,
    default_runner,
)
from repro.energy.mcpat import McPatModel
from repro.stats.compare import RunComparison, geometric_mean
from repro.system.config import experiment_config
from repro.workloads.registry import MULTIPROCESS_BENCHMARKS, PAPER_BENCHMARKS


# ----------------------------------------------------------------------
# Row types
# ----------------------------------------------------------------------
@dataclass
class Figure2Row:
    """Local/remote directory-request mix for one benchmark (Figure 2)."""

    benchmark: str
    local_fraction: float
    remote_fraction: float


@dataclass
class Figure3Row:
    """Per-benchmark ALLARM-vs-baseline ratios (Figures 3a–3g)."""

    benchmark: str
    speedup: float
    normalized_evictions: float
    normalized_traffic: float
    messages_per_eviction: float
    normalized_l2_misses: float
    normalized_noc_energy: float
    normalized_pf_energy: float
    probe_hidden_fraction: float


@dataclass
class Figure3hRow:
    """Speedup over the 512 kB baseline for each PF size (Figure 3h)."""

    benchmark: str
    pf_size: int
    speedup: float


@dataclass
class Figure4Row:
    """Multi-process metrics vs. PF size, one policy (Figure 4)."""

    benchmark: str
    policy: str
    pf_size: int
    speedup: float
    normalized_evictions: float
    normalized_traffic: float


@dataclass
class AreaRow:
    """Probe-filter area for one coverage (Section III-B table)."""

    pf_size: int
    area_mm2: float


# ----------------------------------------------------------------------
# Figure 2 — local vs. remote requests
# ----------------------------------------------------------------------
def figure2_local_remote(
    runner: Optional[ExperimentRunner] = None,
    benchmarks: Optional[List[str]] = None,
) -> List[Figure2Row]:
    """Ratio of local to remote requests at the directories (Figure 2)."""
    runner = runner or default_runner()
    rows = []
    for benchmark in benchmarks or PAPER_BENCHMARKS:
        snapshot = runner.run_benchmark(benchmark, "baseline")
        rows.append(
            Figure2Row(
                benchmark=benchmark,
                local_fraction=snapshot.local_fraction,
                remote_fraction=snapshot.remote_fraction,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Figures 3a–3g — 16-thread ALLARM vs. baseline
# ----------------------------------------------------------------------
def figure3_comparison(
    runner: Optional[ExperimentRunner] = None,
    benchmarks: Optional[List[str]] = None,
) -> List[Figure3Row]:
    """All per-benchmark ratios for Figures 3a–3g in one pass."""
    runner = runner or default_runner()
    mcpat = McPatModel()
    coverage = experiment_config(
        "baseline", scale=runner.settings.scale
    ).directory.probe_filter_coverage
    rows = []
    for benchmark in benchmarks or PAPER_BENCHMARKS:
        baseline, allarm = runner.run_pair(benchmark)
        comparison = RunComparison(baseline=baseline, experiment=allarm)
        energy = mcpat.normalized(baseline, allarm, coverage)
        rows.append(
            Figure3Row(
                benchmark=benchmark,
                speedup=comparison.speedup,
                normalized_evictions=comparison.normalized_evictions,
                normalized_traffic=comparison.normalized_traffic,
                messages_per_eviction=baseline.messages_per_eviction,
                normalized_l2_misses=comparison.normalized_l2_misses,
                normalized_noc_energy=energy.noc,
                normalized_pf_energy=energy.probe_filter,
                probe_hidden_fraction=allarm.probe_hidden_fraction,
            )
        )
    return rows


def figure3a_speedup(runner: Optional[ExperimentRunner] = None) -> Dict[str, float]:
    """Figure 3a: per-benchmark speedup plus the geometric mean."""
    rows = figure3_comparison(runner)
    result = {row.benchmark: row.speedup for row in rows}
    result["geomean"] = geometric_mean([row.speedup for row in rows])
    return result


def figure3b_evictions(runner: Optional[ExperimentRunner] = None) -> Dict[str, float]:
    """Figure 3b: normalised probe-filter evictions (ALLARM / baseline)."""
    rows = figure3_comparison(runner)
    result = {row.benchmark: row.normalized_evictions for row in rows}
    result["geomean"] = geometric_mean(
        [row.normalized_evictions for row in rows if row.normalized_evictions > 0]
    )
    return result


def figure3c_traffic(runner: Optional[ExperimentRunner] = None) -> Dict[str, float]:
    """Figure 3c: normalised network traffic in bytes."""
    rows = figure3_comparison(runner)
    result = {row.benchmark: row.normalized_traffic for row in rows}
    result["geomean"] = geometric_mean([row.normalized_traffic for row in rows])
    return result


def figure3d_messages_per_eviction(
    runner: Optional[ExperimentRunner] = None,
) -> Dict[str, float]:
    """Figure 3d: average coherence messages per probe-filter eviction."""
    rows = figure3_comparison(runner)
    return {row.benchmark: row.messages_per_eviction for row in rows}


def figure3e_l2_misses(runner: Optional[ExperimentRunner] = None) -> Dict[str, float]:
    """Figure 3e: normalised L2 misses."""
    rows = figure3_comparison(runner)
    return {row.benchmark: row.normalized_l2_misses for row in rows}


def figure3f_dynamic_energy(
    runner: Optional[ExperimentRunner] = None,
) -> Dict[str, Tuple[float, float]]:
    """Figure 3f: normalised dynamic energy as ``(noc, probe filter)``."""
    rows = figure3_comparison(runner)
    result = {
        row.benchmark: (row.normalized_noc_energy, row.normalized_pf_energy)
        for row in rows
    }
    result["geomean"] = (
        geometric_mean([row.normalized_noc_energy for row in rows]),
        geometric_mean([row.normalized_pf_energy for row in rows]),
    )
    return result


def figure3g_latency_hiding(
    runner: Optional[ExperimentRunner] = None,
) -> Dict[str, float]:
    """Figure 3g: fraction of remote misses whose local probe was hidden."""
    rows = figure3_comparison(runner)
    return {row.benchmark: row.probe_hidden_fraction for row in rows}


# ----------------------------------------------------------------------
# Figure 3h — probe-filter size sweep (16 threads)
# ----------------------------------------------------------------------
def figure3h_pf_size_sweep(
    runner: Optional[ExperimentRunner] = None,
    benchmarks: Optional[List[str]] = None,
    pf_sizes: Tuple[int, ...] = FIG3H_PF_SIZES,
) -> List[Figure3hRow]:
    """Figure 3h: ALLARM speedup vs. PF size, normalised to 512 kB baseline."""
    runner = runner or default_runner()
    rows = []
    for benchmark in benchmarks or PAPER_BENCHMARKS:
        reference = runner.run_benchmark(benchmark, "baseline", pf_sizes[0])
        for pf_size in pf_sizes:
            allarm = runner.run_benchmark(benchmark, "allarm", pf_size)
            rows.append(
                Figure3hRow(
                    benchmark=benchmark,
                    pf_size=pf_size,
                    speedup=RunComparison(reference, allarm).speedup,
                )
            )
    return rows


# ----------------------------------------------------------------------
# Figure 4 — multi-process probe-filter size sweep
# ----------------------------------------------------------------------
def figure4_multiprocess(
    runner: Optional[ExperimentRunner] = None,
    benchmarks: Optional[List[str]] = None,
    pf_sizes: Tuple[int, ...] = FIG4_PF_SIZES,
    policies: Tuple[str, ...] = ("baseline", "allarm"),
) -> List[Figure4Row]:
    """Figures 4a–4f: two-process runs swept over probe-filter sizes.

    Every metric is normalised to the *baseline* run with the largest
    probe filter, exactly as in the paper.
    """
    runner = runner or default_runner()
    rows = []
    for benchmark in benchmarks or MULTIPROCESS_BENCHMARKS:
        reference = runner.run_multiprocess(benchmark, "baseline", pf_sizes[0])
        for policy in policies:
            for pf_size in pf_sizes:
                snapshot = runner.run_multiprocess(benchmark, policy, pf_size)
                comparison = RunComparison(reference, snapshot)
                rows.append(
                    Figure4Row(
                        benchmark=benchmark,
                        policy=policy,
                        pf_size=pf_size,
                        speedup=comparison.speedup,
                        normalized_evictions=comparison.normalized_evictions,
                        normalized_traffic=comparison.normalized_traffic,
                    )
                )
    return rows


# ----------------------------------------------------------------------
# Area table (Section III-B)
# ----------------------------------------------------------------------
def area_table(pf_sizes: Tuple[int, ...] = FIG4_PF_SIZES) -> List[AreaRow]:
    """Probe-filter area vs. coverage (the table in Section III-B)."""
    model = McPatModel()
    return [AreaRow(pf_size=size, area_mm2=model.area.area_mm2(size)) for size in pf_sizes]


# ----------------------------------------------------------------------
# Text rendering helpers
# ----------------------------------------------------------------------
def format_figure2(rows: List[Figure2Row]) -> str:
    """Render Figure 2 as an aligned text table."""
    lines = [f"{'benchmark':<16} {'local':>7} {'remote':>7}"]
    for row in rows:
        lines.append(
            f"{row.benchmark:<16} {row.local_fraction:7.3f} {row.remote_fraction:7.3f}"
        )
    return "\n".join(lines)


def format_figure3(rows: List[Figure3Row]) -> str:
    """Render Figures 3a–3g as one combined text table."""
    header = (
        f"{'benchmark':<16} {'speedup':>8} {'evict':>7} {'traffic':>8} "
        f"{'msg/ev':>7} {'l2miss':>7} {'E.noc':>6} {'E.pf':>6} {'hidden':>7}"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row.benchmark:<16} {row.speedup:8.3f} {row.normalized_evictions:7.3f} "
            f"{row.normalized_traffic:8.3f} {row.messages_per_eviction:7.2f} "
            f"{row.normalized_l2_misses:7.3f} {row.normalized_noc_energy:6.3f} "
            f"{row.normalized_pf_energy:6.3f} {row.probe_hidden_fraction:7.3f}"
        )
    lines.append(
        f"{'geomean':<16} {geometric_mean([r.speedup for r in rows]):8.3f} "
        f"{geometric_mean([r.normalized_evictions for r in rows if r.normalized_evictions > 0]):7.3f} "
        f"{geometric_mean([r.normalized_traffic for r in rows]):8.3f}"
    )
    return "\n".join(lines)


def format_figure3h(rows: List[Figure3hRow]) -> str:
    """Render Figure 3h grouped by benchmark."""
    lines = [f"{'benchmark':<16} {'pf size':>9} {'speedup':>8}"]
    for row in rows:
        lines.append(
            f"{row.benchmark:<16} {row.pf_size // 1024:7d}kB {row.speedup:8.3f}"
        )
    return "\n".join(lines)


def format_figure4(rows: List[Figure4Row]) -> str:
    """Render Figures 4a–4f as one combined text table."""
    lines = [
        f"{'benchmark':<16} {'policy':<9} {'pf size':>9} {'speedup':>8} "
        f"{'evict':>8} {'traffic':>8}"
    ]
    for row in rows:
        lines.append(
            f"{row.benchmark:<16} {row.policy:<9} {row.pf_size // 1024:7d}kB "
            f"{row.speedup:8.3f} {row.normalized_evictions:8.3f} "
            f"{row.normalized_traffic:8.3f}"
        )
    return "\n".join(lines)


def format_area_table(rows: List[AreaRow]) -> str:
    """Render the probe-filter area table."""
    lines = [f"{'pf size':>9} {'area (mm^2)':>12}"]
    for row in rows:
        lines.append(f"{row.pf_size // 1024:7d}kB {row.area_mm2:12.2f}")
    return "\n".join(lines)
